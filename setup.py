"""Setup shim: project metadata lives in pyproject.toml.

Two jobs remain here:

* ``pip install -e .`` keeps working on environments without the ``wheel``
  package (offline machines cannot fetch it for PEP 517 editable builds);
* the **optional** native-kernel extension ``repro.core._native`` is built
  when a C toolchain exists. The extension is throughput only — every
  caller falls back to the pure-Python kernels when the import fails — so
  a failed or skipped build must never fail the install. Set
  ``REPRO_NO_NATIVE=1`` to skip the build outright (CI uses this to prove
  the fallback path).

Build in place for a source checkout::

    python setup.py build_ext --inplace
"""

import os
import sys

from setuptools import setup
from setuptools.command.build_ext import build_ext
from setuptools.extension import Extension


class OptionalBuildExt(build_ext):
    """A build_ext that downgrades every failure to a warning.

    Missing compiler, missing Python headers, broken toolchain — all are
    environments the pure kernels serve fine; the install proceeds and
    ``available_engines()`` simply omits ``"native"`` with a reason.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any build failure is optional
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._skip(exc)

    def _skip(self, exc):
        sys.stderr.write(
            "warning: skipping optional native-kernel extension build "
            f"({exc.__class__.__name__}: {exc}); the pure-Python kernels "
            "will be used\n"
        )


ext_modules = []
cmdclass = {}
if not os.environ.get("REPRO_NO_NATIVE"):
    ext_modules.append(
        Extension(
            "repro.core._native",
            sources=["src/repro/core/_native.c"],
            optional=True,
        )
    )
    cmdclass["build_ext"] = OptionalBuildExt

setup(ext_modules=ext_modules, cmdclass=cmdclass)
