"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works on environments without the ``wheel`` package
(offline machines cannot fetch it for PEP 517 editable builds).
"""

from setuptools import setup

setup()
