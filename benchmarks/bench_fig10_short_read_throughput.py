"""Figure 10: short-read alignment throughput vs BWA-MEM / Minimap2.

Table from the calibrated device models (paper anchors: 111x / 158x);
benchmark measures GenASM aligning one 150 bp Illumina-style read.
"""

from _common import emit_table

from repro.core.aligner import GenAsmAligner
from repro.eval.datasets import short_read_datasets
from repro.eval.experiments import experiment_fig10


def test_fig10_short_read_throughput(benchmark):
    headers, rows = experiment_fig10()
    emit_table(
        "fig10_short_read_throughput",
        headers,
        rows,
        title=(
            "Figure 10: short-read alignment throughput "
            "(paper anchors: 111x BWA-MEM, 158x Minimap2)"
        ),
    )

    dataset = short_read_datasets(reads_per_set=1)[1]  # Illumina-150bp
    read = dataset.reads[0]
    region = dataset.genome.region(read.true_start, read.true_length + 16)
    aligner = GenAsmAligner()

    alignment = benchmark(aligner.align, region, read.sequence)
    assert alignment.cigar.is_valid_for(region, read.sequence)
