"""Table 1: area and power breakdown of GenASM.

Regenerates the component table (GenASM-DC, GenASM-TB, DC-SRAM, TB-SRAMs,
per-vault and 32-vault totals) from the scaled area/power model, and
benchmarks the model evaluation itself (it backs every other experiment).
"""

from _common import emit_table

from repro.eval.experiments import experiment_table1
from repro.hardware.area_power import genasm_area_power


def test_table1_area_power(benchmark):
    headers, rows = experiment_table1()
    emit_table(
        "table1_area_power",
        headers,
        rows,
        title="Table 1: Area and power breakdown (paper: 0.334 mm^2 / 0.101 W per vault)",
    )
    breakdown = benchmark(genasm_area_power)
    assert abs(breakdown.accelerator_area_mm2 - 0.334) < 1e-3
    assert abs(breakdown.accelerator_power_w - 0.101) < 1e-3
