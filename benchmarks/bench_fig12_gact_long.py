"""Figure 12: GenASM vs GACT (Darwin) for long reads.

Table from the models (paper: GACT 55,556 -> 6,289 aln/s over 1-10 Kbp,
GenASM 3.9x faster on average, 2.7x less power). The benchmark measures our
functional GACT re-implementation tiling a long-ish read, the comparator
whose behaviour the model abstracts.
"""

from _common import emit_table

from repro.baselines.gact import gact_align
from repro.eval.experiments import experiment_fig12
from repro.sequences.read_simulator import simulate_pair


def test_fig12_gact_long_reads(benchmark):
    headers, rows = experiment_fig12()
    emit_table(
        "fig12_gact_long",
        headers,
        rows,
        title="Figure 12: GenASM vs GACT, long reads (paper average: 3.9x)",
    )

    reference, query, _ = simulate_pair(1_200, 0.90, seed=50)
    result = benchmark(
        gact_align, reference + "ACGT" * 30, query, tile_size=64, overlap=24
    )
    assert result.cigar.query_length == len(query)
