"""Streaming whole-genome mapping benchmark over the job fabric.

Measures the acceptance path of the streaming job fabric end to end: a
chromosome-scale reference is packed into a mmap-backed
:class:`~repro.sequences.genome.ShardedGenome` (so each cluster replica's
mapper rebuilds from a ~600-byte spec instead of re-pickling the genome),
a 2-replica :class:`~repro.serving.cluster.AlignmentCluster` is mounted
behind the HTTP front on a real loopback TCP port, and a ``map`` job
streams FASTQ in chunked POSTs while SAM is pulled back with resumable
``offset=`` reads.

Three properties are measured and CI-gated (the ``wgs`` family in
``check_regression.py``):

* **Byte identity** — the SAM assembled from the job's offset reads is
  hash-compared against the in-process pipeline mapping the same reads
  (``summary.sam_byte_identical``). The client *disconnects mid-job* and
  resumes from its last byte offset, so the bit also proves resumability
  (``summary.resumed_mid_job``).
* **Throughput** — ``reads_per_sec`` through the full wire path.
* **Bounded memory** — the 4x-workload phase re-measures peak RSS; the
  growth ratio (``summary.peak_rss_growth_4x``) stays near 1 because the
  job holds only a bounded window of reads in flight, never the stream.

Run:  PYTHONPATH=src python benchmarks/bench_wgs.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import io
import json
import random
import resource
import tempfile
import time
from pathlib import Path

from _common import REPO_ROOT, emit_json, emit_table

from repro.mapping.pipeline import make_genasm_mapper
from repro.mapping.sam import sam_header
from repro.sequences.genome import Genome, ShardedGenome, synthesize_genome
from repro.sequences.io import FastqRecord, write_fastq
from repro.serving import AlignmentCluster, AlignmentHTTPServer

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_wgs.json"

READ_LENGTH = 100
SEED_LENGTH = 15
ERROR_RATE = 0.10
INGEST_BATCH = 50  # reads per POST
OUTPUT_LIMIT = 64 * 1024  # bytes per resumable output read


def peak_rss_mb() -> float:
    """Process peak RSS in MB (Linux ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def read_batch(
    shard, batch_index: int, count: int, seed: int
) -> list[FastqRecord]:
    """Deterministic simulated reads, generated batch-at-a-time.

    Reads are decoded straight from the mmap-backed shard — the full read
    set never exists in this process, which is what lets the 4x phase
    prove the fabric's memory stays bounded.
    """
    rng = random.Random((seed << 20) ^ batch_index)
    records = []
    span = len(shard) - READ_LENGTH
    for i in range(count):
        start = rng.randrange(span)
        bases = list(shard.region(start, READ_LENGTH))
        for _ in range(rng.randint(0, int(READ_LENGTH * ERROR_RATE) // 2)):
            position = rng.randrange(READ_LENGTH)
            bases[position] = rng.choice("ACGT")
        records.append(
            FastqRecord(
                f"b{batch_index}r{i}", "".join(bases), "I" * READ_LENGTH
            )
        )
    return records


def fastq_text(records: list[FastqRecord]) -> str:
    out = io.StringIO()
    write_fastq(records, out)
    return out.getvalue()


class TcpJsonClient:
    """Keep-alive HTTP/1.1 JSON client on a real loopback socket."""

    def __init__(self, port: int):
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )

    def disconnect(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None

    async def request(self, method: str, path: str, payload=None) -> dict:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = [f"{method} {path} HTTP/1.1", "Host: bench"]
        if body:
            head.append(f"Content-Length: {len(body)}")
        self.writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = await self.reader.readexactly(
            int(headers.get("content-length", "0"))
        )
        if status != 200:
            raise RuntimeError(f"{method} {path} -> {status}: {raw[:200]!r}")
        return json.loads(raw)


async def stream_map_job(
    front: AlignmentHTTPServer,
    shard,
    *,
    batches: int,
    seed: int,
    reconnect_mid_job: bool,
    expected_digest: str | None,
) -> dict:
    """Drive one map job over TCP; returns measured row fields."""
    client = TcpJsonClient(front.port)
    await client.connect()
    started = time.perf_counter()
    created = await client.request("POST", "/v1/jobs/map", {})
    job_id = created["job_id"]

    total_reads = 0
    resumed = 0
    digest = hashlib.sha256()
    collected_offset = 0

    async def pull_output() -> None:
        nonlocal collected_offset
        while True:
            chunk = await client.request(
                "GET",
                f"/v1/jobs/{job_id}/output"
                f"?offset={collected_offset}&limit={OUTPUT_LIMIT}",
            )
            data = chunk["data"]
            digest.update(data.encode("ascii"))
            collected_offset = chunk["next_offset"]
            if not data or chunk["eof"]:
                break

    for batch_index in range(batches):
        records = read_batch(shard, batch_index, INGEST_BATCH, seed)
        total_reads += len(records)
        text = fastq_text(records)
        # Split each batch at an awkward boundary (mid-line) to exercise
        # the stream parser the way real chunked ingest arrives.
        cut = len(text) // 2 + 3
        await client.request(
            "POST", f"/v1/jobs/{job_id}/input", {"fastq": text[:cut]}
        )
        await client.request(
            "POST", f"/v1/jobs/{job_id}/input", {"fastq": text[cut:]}
        )
        if reconnect_mid_job and batch_index == batches // 3:
            # Drain whatever output exists, then drop the TCP connection
            # mid-job and resume from the same byte offset.
            await pull_output()
            client.disconnect()
            client = TcpJsonClient(front.port)
            await client.connect()
            resumed = 1
    await client.request(
        "POST", f"/v1/jobs/{job_id}/input", {"fastq": "", "final": True}
    )
    while True:
        status = await client.request("GET", f"/v1/jobs/{job_id}")
        if status["state"] in ("done", "failed", "cancelled"):
            break
        await asyncio.sleep(0.02)
    if status["state"] != "done":
        raise RuntimeError(f"map job ended {status['state']}: {status}")
    await pull_output()
    elapsed = time.perf_counter() - started
    client.disconnect()

    row = {
        "reads": total_reads,
        "read_length": READ_LENGTH,
        "seconds": elapsed,
        "reads_per_sec": total_reads / elapsed,
        "reads_mapped": status["reads_mapped"],
        "output_bytes": status["output_bytes"],
        "resumed_mid_job": resumed,
        "peak_rss_mb": peak_rss_mb(),
    }
    if expected_digest is not None:
        row["sam_byte_identical"] = int(
            digest.hexdigest() == expected_digest
        )
    return row


def expected_sam_digest(shard, *, batches: int, seed: int) -> str:
    """Hash of the in-process pipeline's SAM over the same read stream."""
    mapper = make_genasm_mapper(
        shard, seed_length=SEED_LENGTH, error_rate=ERROR_RATE
    )
    digest = hashlib.sha256()
    digest.update(
        sam_header([(shard.name, len(shard))]).encode("ascii")
    )
    for batch_index in range(batches):
        records = read_batch(shard, batch_index, INGEST_BATCH, seed)
        results = mapper.map_reads(
            [(record.name, record.sequence) for record in records]
        )
        for result in results:
            digest.update((result.record.to_line() + "\n").encode("ascii"))
    return digest.hexdigest()


def run_bench(*, smoke: bool, output: Path) -> dict:
    genome_bases = 30_000 if smoke else 200_000
    batches_1x = 1 if smoke else 8
    batches_4x = 4 * batches_1x
    replicas = 2
    seed = 0x5EED

    with tempfile.TemporaryDirectory(prefix="bench_wgs_") as tmp:
        chromosome = synthesize_genome(
            genome_bases, seed=seed, name="chr_sim"
        )
        sharded = ShardedGenome.write(
            [Genome(chromosome.name, chromosome.sequence)], tmp
        )
        shard = sharded[chromosome.name]
        expected = expected_sam_digest(shard, batches=batches_1x, seed=seed)

        async def main() -> list[dict]:
            mapper = make_genasm_mapper(
                shard, seed_length=SEED_LENGTH, error_rate=ERROR_RATE
            )
            cluster = AlignmentCluster(
                replicas=replicas,
                mapper=mapper,
                batch_size=16,
                flush_interval=0.002,
            )
            front = AlignmentHTTPServer(cluster)
            async with front:
                await front.start(port=0)
                row_1x = await stream_map_job(
                    front,
                    shard,
                    batches=batches_1x,
                    seed=seed,
                    reconnect_mid_job=True,
                    expected_digest=expected,
                )
                row_4x = await stream_map_job(
                    front,
                    shard,
                    batches=batches_4x,
                    seed=seed + 1,
                    reconnect_mid_job=False,
                    expected_digest=None,
                )
            return [
                {"phase": "wgs_1x", **row_1x},
                {"phase": "wgs_4x", **row_4x},
            ]

        rows = asyncio.run(main())
        sharded.close()

    for row in rows:
        row.update(
            genome_bases=genome_bases,
            replicas=replicas,
            smoke=smoke,
        )
    row_1x, row_4x = rows
    summary = {
        "reads_per_sec": row_1x["reads_per_sec"],
        "peak_rss_mb": row_4x["peak_rss_mb"],
        "sam_byte_identical": row_1x["sam_byte_identical"],
        "resumed_mid_job": row_1x["resumed_mid_job"],
        # ru_maxrss is a process-lifetime high-water mark, so this ratio
        # is exactly "how much higher did the 4x stream push peak memory".
        "peak_rss_growth_4x": row_4x["peak_rss_mb"] / row_1x["peak_rss_mb"],
    }

    emit_table(
        "wgs",
        ["phase", "reads", "reads/s", "mapped", "SAM bytes", "peak RSS MB"],
        [
            [
                row["phase"],
                row["reads"],
                f"{row['reads_per_sec']:.1f}",
                row["reads_mapped"],
                row["output_bytes"],
                f"{row['peak_rss_mb']:.1f}",
            ]
            for row in rows
        ],
        title="Streaming whole-genome map jobs (2-replica cluster, real TCP)",
    )
    print(
        f"\nsummary: byte_identical={summary['sam_byte_identical']} "
        f"resumed={summary['resumed_mid_job']} "
        f"rss_growth_4x={summary['peak_rss_growth_4x']:.3f}"
    )
    return emit_json(
        output, "wgs", {"results": rows, "summary": summary}
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: small genome, one ingest batch",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"artifact path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()
    document = run_bench(smoke=args.smoke, output=args.output)
    if not document["summary"]["sam_byte_identical"]:
        raise SystemExit("FAIL: job SAM diverged from the in-process pipeline")


if __name__ == "__main__":
    main()
