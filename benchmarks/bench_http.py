"""HTTP front benchmark: fixed vs adaptive flush windows under bursts.

Drives the full network path — TCP connections on a loopback port, HTTP
parsing, JSON validation, the batching :class:`AlignmentServer`, response
framing — with an *open-loop* traffic generator: requests fire on a wall
clock schedule instead of waiting for earlier responses, the shape real
load balancers deliver. Two arrival patterns bound the flush-policy design
space:

* ``bursty`` — groups of requests land nearly simultaneously, then the
  line goes quiet (lumpy upstream batching, cron-driven clients);
* ``steady`` — the same requests spread evenly over the same total time.

Each pattern runs twice per flush window: once with the fixed deadline and
once with ``adaptive_flush=True``, where the server sizes its deadline
from the EWMA of observed arrival gaps (clamped to min/max bounds). The
point of the adaptive window is robustness to a *mis-sized* fixed
deadline: during a dense burst the EWMA gap collapses and the deadline
shrinks toward the minimum (flush as soon as the burst has arrived,
instead of idling out the full fixed window), while sparse traffic widens
it back out toward the bound. A final pair of rows re-runs the bursty
workload with request tracing off (``untraced``) and on (``traced``);
their ratio (``summary.tracing_req_s_ratio``) is the CI-gated bound on
observability overhead. Emits ``BENCH_http.json`` at the repo root
(tracked across PRs, uploaded as a CI artifact); the summary records
adaptive-vs-fixed speedup per workload.

Run:  PYTHONPATH=src python benchmarks/bench_http.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path

from _common import REPO_ROOT, emit_json, emit_table
from bench_serving import percentile

from repro.serving import AlignmentHTTPServer, AlignmentServer
from repro.sequences.mutate import MutationProfile, mutate

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_http.json"


@dataclass(frozen=True)
class HttpWorkload:
    """One traffic shape against one endpoint."""

    name: str
    read_length: int
    error_rate: float
    requests: int
    burst_size: int  # 1 => steady arrivals
    burst_gap_ms: float  # schedule spacing between bursts (or requests)

    @property
    def threshold(self) -> int:
        return max(8, int(self.read_length * self.error_rate))


def build_pairs(workload: HttpWorkload, seed: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    pairs = []
    for _ in range(workload.requests):
        region = "".join(
            rng.choice("ACGT")
            for _ in range(workload.read_length + workload.threshold)
        )
        read = mutate(
            region[: workload.read_length],
            MutationProfile(error_rate=workload.error_rate),
            rng=rng,
        ).sequence
        pairs.append((region, read))
    return pairs


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
    payload: dict,
) -> dict:
    body = json.dumps(payload).encode()
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    raw = await reader.readexactly(int(headers.get("content-length", "0")))
    if status != 200:
        raise RuntimeError(f"{path} -> {status}: {raw[:120]!r}")
    return json.loads(raw)


async def _drive(
    front: AlignmentHTTPServer,
    workload: HttpWorkload,
    pairs: list[tuple[str, str]],
) -> tuple[float, list[float]]:
    """Open-loop burst schedule; returns (wall seconds, latencies).

    Each keep-alive connection is serviced by one worker coroutine fed
    from its own queue, so requests on a connection stay serialized while
    the *schedule* stays open-loop: a request's latency is measured from
    the instant the schedule fired it, queue wait included — exactly what
    a client behind a slow server would observe.
    """
    n_conns = max(workload.burst_size, 16)
    queues: list[asyncio.Queue] = [asyncio.Queue() for _ in range(n_conns)]

    async def worker(queue: asyncio.Queue) -> list[float]:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", front.port
        )
        own: list[float] = []
        while True:
            item = await queue.get()
            if item is None:
                break
            fired_at, (text, read) = item
            await _http_request(
                reader,
                writer,
                "/v1/edit_distance",
                {"text": text, "pattern": read, "k": workload.threshold},
            )
            own.append(time.perf_counter() - fired_at)
        writer.close()
        return own

    workers = [asyncio.ensure_future(worker(queue)) for queue in queues]
    start = time.perf_counter()
    slot = 0
    for offset in range(0, len(pairs), workload.burst_size):
        burst = pairs[offset : offset + workload.burst_size]
        fired_at = time.perf_counter()
        for pair in burst:
            queues[slot % n_conns].put_nowait((fired_at, pair))
            slot += 1
        await asyncio.sleep(workload.burst_gap_ms / 1e3)
    for queue in queues:
        queue.put_nowait(None)
    per_worker = await asyncio.gather(*workers)
    elapsed = time.perf_counter() - start
    return elapsed, [lat for lats in per_worker for lat in lats]


def run_config(
    workload: HttpWorkload,
    pairs: list[tuple[str, str]],
    *,
    mode: str,  # "fixed" | "adaptive" | "untraced" | "traced"
    flush_ms: float,
    batch_size: int,
    engine: str | None,
    adaptive: bool | None = None,
    trace: bool = False,
) -> dict:
    async def main() -> dict:
        server = AlignmentServer(
            engine=engine,
            batch_size=batch_size,
            flush_interval=flush_ms / 1e3,
            max_pending=max(batch_size, 4 * workload.burst_size),
            adaptive_flush=(
                adaptive if adaptive is not None else mode == "adaptive"
            ),
            min_flush_interval=flush_ms / 8e3,
            max_flush_interval=4 * flush_ms / 1e3,
        )
        async with AlignmentHTTPServer(server, trace=trace) as front:
            await front.start(port=0)
            elapsed, latencies = await _drive(front, workload, pairs)
            stats = server.stats
            return {
                "workload": workload.name,
                "mode": mode,
                "read_length": workload.read_length,
                "requests": len(pairs),
                "burst_size": workload.burst_size,
                "burst_gap_ms": workload.burst_gap_ms,
                "flush_ms": flush_ms,
                "batch_size": batch_size,
                "engine": server.engine.name,
                "seconds": elapsed,
                "requests_per_sec": len(pairs) / elapsed,
                "p50_ms": percentile(latencies, 50) * 1e3,
                "p99_ms": percentile(latencies, 99) * 1e3,
                "flushes": stats.flushes,
                "mean_batch": stats.mean_batch,
                "deadline_flushes": stats.deadline_flushes,
                "size_flushes": stats.size_flushes,
            }

    return asyncio.run(main())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: few bursts, short reads",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="engine backend to serve with (default: best available)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    if args.smoke:
        workloads = [
            HttpWorkload("bursty", 64, 0.08, 96, burst_size=24, burst_gap_ms=20.0),
            HttpWorkload("steady", 64, 0.08, 48, burst_size=1, burst_gap_ms=1.0),
        ]
        flush_windows = [6.0]
        batch_size = 32
        repeats = 1
    else:
        workloads = [
            HttpWorkload(
                "bursty", 150, 0.05, 1440, burst_size=48, burst_gap_ms=25.0
            ),
            HttpWorkload(
                "steady", 150, 0.05, 512, burst_size=1, burst_gap_ms=1.0
            ),
        ]
        flush_windows = [4.0, 8.0]
        batch_size = 64
        # Best-of-N damps scheduler noise on shared hosts: both modes run
        # the same schedule, so the best run is the least-perturbed one.
        repeats = 3

    results: list[dict] = []
    for workload in workloads:
        pairs = build_pairs(workload, seed=0xB0B)
        for flush_ms in flush_windows:
            for mode in ("fixed", "adaptive"):
                best = None
                for _ in range(repeats):
                    run = run_config(
                        workload,
                        pairs,
                        mode=mode,
                        flush_ms=flush_ms,
                        batch_size=batch_size,
                        engine=args.engine,
                    )
                    if best is None or (
                        run["requests_per_sec"] > best["requests_per_sec"]
                    ):
                        best = run
                results.append(best)

    fixed_rate = {
        (r["workload"], r["flush_ms"]): r["requests_per_sec"]
        for r in results
        if r["mode"] == "fixed"
    }
    speedups = [
        {
            "workload": r["workload"],
            "flush_ms": r["flush_ms"],
            "adaptive_vs_fixed": r["requests_per_sec"]
            / fixed_rate[(r["workload"], r["flush_ms"])],
        }
        for r in results
        if r["mode"] == "adaptive"
    ]
    # Tracing-overhead section (the observability gate): the bursty
    # schedule at the first flush window, once with tracing off and once
    # with the full per-request span/trace-buffer machinery on. Both
    # sides use the fixed flush window so the only variable is tracing.
    tracing_workload = workloads[0]
    tracing_pairs = build_pairs(tracing_workload, seed=0xB0B)
    tracing_rates: dict[str, float] = {}
    for mode, trace in (("untraced", False), ("traced", True)):
        best = None
        for _ in range(repeats):
            run = run_config(
                tracing_workload,
                tracing_pairs,
                mode=mode,
                flush_ms=flush_windows[0],
                batch_size=batch_size,
                engine=args.engine,
                adaptive=False,
                trace=trace,
            )
            if best is None or (
                run["requests_per_sec"] > best["requests_per_sec"]
            ):
                best = run
        results.append(best)
        tracing_rates[mode] = best["requests_per_sec"]

    bursty = [s["adaptive_vs_fixed"] for s in speedups if s["workload"] == "bursty"]
    summary = {
        "best_adaptive_speedup_bursty": max(bursty, default=None),
        "worst_adaptive_speedup_bursty": min(bursty, default=None),
        "max_requests_per_sec": max(r["requests_per_sec"] for r in results),
        # >= 0.95 is CI-gated: tracing must stay within 5% of untraced
        # req/s on the bursty workload.
        "tracing_req_s_ratio": (
            tracing_rates["traced"] / tracing_rates["untraced"]
        ),
    }

    emit_json(
        args.output,
        "http",
        {
            "smoke": args.smoke,
            "results": results,
            "speedups": speedups,
            "summary": summary,
        },
    )

    rows = [
        [
            r["workload"],
            r["mode"],
            f"{r['flush_ms']:.0f}",
            r["burst_size"],
            f"{r['requests_per_sec']:,.0f}",
            f"{r['p50_ms']:.1f}",
            f"{r['p99_ms']:.1f}",
            f"{r['mean_batch']:.1f}",
            r["flushes"],
        ]
        for r in results
    ]
    emit_table(
        "bench_http",
        [
            "workload", "mode", "window ms", "burst", "req/s",
            "p50 ms", "p99 ms", "mean batch", "flushes",
        ],
        rows,
        title="HTTP serving under bursty/steady load (fixed vs adaptive flush)",
    )
    print(f"\nwrote {args.output}")
    for s in speedups:
        print(
            f"{s['workload']} @ {s['flush_ms']:.0f}ms: adaptive "
            f"{s['adaptive_vs_fixed']:.2f}x vs fixed"
        )


if __name__ == "__main__":
    main()
