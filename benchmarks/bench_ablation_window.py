"""Ablation: window size and overlap — the paper's (W=64, O=24) choice.

Section 10.2: "We find that the optimum (W, O) setting ... in terms of
performance and accuracy is W = 64 and O = 24. With this setting, GenASM
completes the alignment of all reads in each dataset, and increasing the
window size does not change the alignment output."

This bench sweeps (W, O), measuring (a) accuracy — how often the windowed
edit count matches the global DP optimum on simulated reads — and (b) the
model's per-alignment cycle cost. The expected picture: accuracy saturates
by W = 64 while cycles keep growing with W, making (64, 24) the knee.
"""

from _common import emit_table

from repro.baselines.needleman_wunsch import edit_distance_dp
from repro.core.aligner import GenAsmAligner
from repro.hardware.performance_model import GenAsmConfig, alignment_cycles
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import pacbio_clr_profile, simulate_reads

SWEEP = ((16, 4), (32, 12), (48, 16), (64, 24), (96, 32))


def _accuracy_at(window: int, overlap: int, reads, genome) -> float:
    aligner = GenAsmAligner(window_size=window, overlap=overlap)
    exact = 0
    for read in reads:
        region = genome.region(read.true_start, read.true_length + 80)
        alignment = aligner.align(region, read.sequence)
        consumed = region[: alignment.text_consumed]
        if alignment.edit_distance == edit_distance_dp(consumed, read.sequence):
            exact += 1
    return exact / len(reads)


def test_window_overlap_ablation(benchmark):
    genome = synthesize_genome(20_000, seed=300)
    reads = simulate_reads(
        genome,
        count=6,
        read_length=400,
        profile=pacbio_clr_profile(0.10),
        seed=301,
        both_strands=False,
    )

    rows = []
    for window, overlap in SWEEP:
        accuracy = _accuracy_at(window, overlap, reads, genome)
        config = GenAsmConfig(window_size=window, overlap=overlap)
        cycles = alignment_cycles(10_000, 1_500, config)
        rows.append(
            [
                f"W={window}, O={overlap}",
                f"{accuracy:.0%}",
                f"{cycles:,}",
            ]
        )
    emit_table(
        "ablation_window",
        ("Setting", "Exact-distance rate", "Model cycles (10Kbp read)"),
        rows,
        title="Window/overlap ablation (paper optimum: W=64, O=24)",
    )

    # The paper's setting must be on the accuracy plateau.
    by_setting = {row[0]: row for row in rows}
    paper = float(by_setting["W=64, O=24"][1].rstrip("%"))
    biggest = float(by_setting["W=96, O=32"][1].rstrip("%"))
    assert paper >= biggest - 1e-9  # growing W further does not help

    aligner = GenAsmAligner()
    read = reads[0]
    region = genome.region(read.true_start, read.true_length + 80)
    alignment = benchmark(aligner.align, region, read.sequence)
    assert alignment.cigar.is_valid_for(region, read.sequence)
