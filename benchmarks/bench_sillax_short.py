"""Section 10.2 (SillaX): GenASM vs GenAx's short-read accelerator.

Table from published anchors (SillaX: 50M aln/s at 2 GHz for ~101 bp reads;
paper: GenASM 1.9x faster at 1 GHz). The benchmark measures the 101 bp
GenASM alignment kernel the comparison rests on.
"""

from _common import emit_table

from repro.core.aligner import GenAsmAligner
from repro.eval.experiments import experiment_sillax
from repro.sequences.read_simulator import simulate_pair


def test_sillax_comparison(benchmark):
    headers, rows = experiment_sillax()
    emit_table(
        "sillax_short",
        headers,
        rows,
        title="GenASM vs SillaX (paper: 1.9x at comparable area/power)",
    )

    reference, query, _ = simulate_pair(101, 0.95, seed=70)
    aligner = GenAsmAligner()
    alignment = benchmark(aligner.align, reference + "ACGT", query)
    assert alignment.cigar.query_length == len(query)
