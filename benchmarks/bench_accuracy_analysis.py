"""Section 10.2 accuracy analysis: GenASM scores vs the DP optimum.

Measured, not modelled: GenASM aligns simulated reads with BWA-MEM /
Minimap2 scoring and the resulting alignment scores are compared with the
Gotoh optimum (paper: 96.6% of short reads exact, 99.7% within 4.5%;
99.6-99.7% of long reads within 0.4-0.7%).

The benchmark times the scored-alignment kernel (traceback order derived
from the scoring scheme).
"""

from _common import emit_table

from repro.core.aligner import GenAsmAligner
from repro.core.scoring import ScoringScheme, TracebackConfig
from repro.eval.experiments import experiment_accuracy
from repro.sequences.read_simulator import simulate_pair


def test_accuracy_analysis(benchmark):
    headers, rows = experiment_accuracy(
        short_reads=24, long_reads=2, long_read_length=1_000
    )
    emit_table(
        "accuracy_analysis",
        headers,
        rows,
        title=(
            "Accuracy analysis: GenASM score vs optimal "
            "(paper: 96.6% exact short reads, 99.6-99.7% long reads in tolerance)"
        ),
    )

    scheme = ScoringScheme.bwa_mem()
    aligner = GenAsmAligner(config=TracebackConfig.from_scoring(scheme))
    reference, query, _ = simulate_pair(250, 0.95, seed=80)
    alignment = benchmark(aligner.align, reference + "ACGTACGT" * 2, query)
    assert alignment.cigar.query_length == len(query)
