"""Serving benchmark: concurrent clients through the AlignmentServer.

Simulates a service under concurrent load: ``--clients`` independent client
coroutines each submit single-pair requests to one
:class:`~repro.serving.server.AlignmentServer` and await every response
before sending the next, while the server re-batches whatever is in flight
into one engine call per flush. Two workloads bound the design space:

* ``short`` — 150 bp reads served as ``edit_distance`` requests (the
  pre-alignment filtering service shape);
* ``long``  — 10 kbp reads served as full ``align`` requests (the long-read
  alignment service shape the process-pool backend targets).

Each configuration sweeps the flush window (deadline, ms) and the backend —
``pure`` vs ``batched`` vs ``sharded`` at each requested worker count — and
records requests/sec plus p50/p99 client-observed latency. Emits a
machine-readable ``BENCH_serving.json`` at the repo root (tracked across
PRs, uploaded as a CI artifact); the rendered table goes to stdout.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time
from dataclasses import dataclass
from pathlib import Path

from _common import REPO_ROOT, emit_json, emit_table

from repro.engine import ShardedEngine, available_engines, get_engine
from repro.serving import AlignmentServer
from repro.sequences.mutate import MutationProfile, mutate

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"


@dataclass(frozen=True)
class Workload:
    """One service shape: request op + read geometry."""

    name: str
    op: str  # "edit_distance" | "align"
    read_length: int
    error_rate: float
    requests: int  # total requests across all clients

    @property
    def threshold(self) -> int:
        return max(8, int(self.read_length * self.error_rate))


def build_pairs(workload: Workload, seed: int) -> list[tuple[str, str]]:
    """(region, read) pairs shaped like accepted mapping candidates."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(workload.requests):
        region = "".join(
            rng.choice("ACGT")
            for _ in range(workload.read_length + workload.threshold)
        )
        read = mutate(
            region[: workload.read_length],
            MutationProfile(error_rate=workload.error_rate),
            rng=rng,
        ).sequence
        pairs.append((region, read))
    return pairs


async def drive_clients(
    server: AlignmentServer,
    workload: Workload,
    pairs: list[tuple[str, str]],
    clients: int,
) -> tuple[float, list[float]]:
    """Run the client swarm; returns (wall seconds, per-request latencies)."""

    async def client(own: list[tuple[str, str]]) -> list[float]:
        latencies = []
        for text, pattern in own:
            start = time.perf_counter()
            if workload.op == "edit_distance":
                await server.edit_distance(text, pattern, workload.threshold)
            else:
                await server.align(text, pattern)
            latencies.append(time.perf_counter() - start)
        return latencies

    shards = [pairs[c::clients] for c in range(clients)]
    start = time.perf_counter()
    per_client = await asyncio.gather(
        *(client(shard) for shard in shards if shard)
    )
    elapsed = time.perf_counter() - start
    return elapsed, [lat for lats in per_client for lat in lats]


def percentile(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile of ``latencies`` (q in [0, 100])."""
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def run_config(
    workload: Workload,
    pairs: list[tuple[str, str]],
    backend: str,
    workers: int | None,
    flush_ms: float,
    clients: int,
    batch_size: int,
) -> dict:
    if backend == "sharded":
        engine = ShardedEngine(workers=workers)
    else:
        engine = get_engine(backend)
    try:

        async def run() -> tuple[float, list[float], AlignmentServer]:
            async with AlignmentServer(
                engine=engine,
                batch_size=batch_size,
                flush_interval=flush_ms / 1000.0,
                max_pending=max(batch_size, clients * 4),
            ) as server:
                elapsed, latencies = await drive_clients(
                    server, workload, pairs, clients
                )
                return elapsed, latencies, server

        elapsed, latencies, server = asyncio.run(run())
    finally:
        if backend == "sharded":
            engine.close()
    return {
        "workload": workload.name,
        "op": workload.op,
        "read_length": workload.read_length,
        "error_rate": workload.error_rate,
        "backend": backend,
        "workers": workers if workers is not None else 1,
        "flush_ms": flush_ms,
        "clients": clients,
        "batch_size": batch_size,
        "requests": len(pairs),
        "seconds": elapsed,
        "requests_per_sec": len(pairs) / elapsed,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "flushes": server.stats.flushes,
        "mean_batch": server.stats.mean_batch,
        "deadline_flushes": server.stats.deadline_flushes,
        "size_flushes": server.stats.size_flushes,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: short reads, few requests, 2 workers",
    )
    parser.add_argument(
        "--clients", type=int, default=64, help="concurrent client coroutines"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 4],
        help="sharded worker counts to sweep",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()
    if args.clients < 1:
        parser.error("--clients must be at least 1")

    if args.smoke:
        clients = min(args.clients, 16)
        workloads = [
            Workload("short", "edit_distance", 64, 0.10, requests=64),
            Workload("long", "align", 1_000, 0.10, requests=8),
        ]
        flush_windows = [2.0]
        worker_counts = [2]
        batch_size = 16
    else:
        clients = args.clients
        workloads = [
            Workload("short", "edit_distance", 150, 0.05, requests=512),
            Workload("long", "align", 10_000, 0.10, requests=96),
        ]
        flush_windows = [2.0, 10.0]
        worker_counts = sorted(set(args.workers))
        batch_size = 64

    single_process = [
        name for name in available_engines() if name != "sharded"
    ]
    sharded_available = "sharded" in available_engines()

    results: list[dict] = []
    for workload in workloads:
        pairs = build_pairs(workload, seed=0x5EED)
        for flush_ms in flush_windows:
            for backend in single_process:
                results.append(
                    run_config(
                        workload, pairs, backend, None, flush_ms, clients,
                        batch_size,
                    )
                )
            if sharded_available:
                for workers in worker_counts:
                    results.append(
                        run_config(
                            workload, pairs, "sharded", workers, flush_ms,
                            clients, batch_size,
                        )
                    )

    # Speedup of sharded over pure, per workload / window / worker count.
    pure_rate = {
        (r["workload"], r["flush_ms"]): r["requests_per_sec"]
        for r in results
        if r["backend"] == "pure"
    }
    speedups = [
        {
            "workload": r["workload"],
            "flush_ms": r["flush_ms"],
            "backend": r["backend"],
            "workers": r["workers"],
            "speedup_vs_pure": r["requests_per_sec"]
            / pure_rate[(r["workload"], r["flush_ms"])],
        }
        for r in results
        if r["backend"] != "pure"
    ]
    long_sharded = [
        s["speedup_vs_pure"]
        for s in speedups
        if s["backend"] == "sharded"
        and s["workload"] == "long"
        and s["workers"] >= 2
    ]
    summary = {
        "clients": clients,
        "worker_counts": worker_counts if sharded_available else [],
        "best_sharded_speedup_long_reads": max(long_sharded, default=None),
        "max_requests_per_sec": max(r["requests_per_sec"] for r in results),
    }

    emit_json(
        args.output,
        "serving",
        {
            "smoke": args.smoke,
            "results": results,
            "speedups": speedups,
            "summary": summary,
        },
    )

    rows = [
        [
            r["workload"],
            r["backend"],
            r["workers"],
            f"{r['flush_ms']:.0f}",
            r["clients"],
            f"{r['requests_per_sec']:,.0f}",
            f"{r['p50_ms']:.1f}",
            f"{r['p99_ms']:.1f}",
            f"{r['mean_batch']:.1f}",
        ]
        for r in results
    ]
    emit_table(
        "bench_serving",
        [
            "workload", "backend", "workers", "window ms", "clients",
            "req/s", "p50 ms", "p99 ms", "mean batch",
        ],
        rows,
        title="Async serving throughput/latency (pure vs batched vs sharded)",
    )
    print(f"\nwrote {args.output}")
    if summary["best_sharded_speedup_long_reads"] is not None:
        print(
            "best sharded speedup vs pure on long reads: "
            f"{summary['best_sharded_speedup_long_reads']:.2f}x"
        )


if __name__ == "__main__":
    main()
