"""Figure 13: GenASM vs GACT (Darwin) for short reads.

Table from the models (paper average: 7.4x). The benchmark compares the
two *algorithms* head-to-head in Python on the same 250 bp pair: GenASM's
bitwise window kernel vs GACT's DP tile kernel — the algorithmic contrast
Section 10.2 credits for the hardware gap.
"""

from _common import emit_table

from repro.baselines.gact import gact_align
from repro.core.aligner import genasm_align
from repro.eval.experiments import experiment_fig13
from repro.sequences.read_simulator import simulate_pair


def test_fig13_gact_short_reads(benchmark):
    headers, rows = experiment_fig13()
    emit_table(
        "fig13_gact_short",
        headers,
        rows,
        title="Figure 13: GenASM vs GACT, short reads (paper average: 7.4x)",
    )

    reference, query, _ = simulate_pair(250, 0.95, seed=51)
    region = reference + "ACGTACGTACGT"

    genasm = genasm_align(region, query)
    gact = gact_align(region, query, tile_size=64, overlap=24)
    # Both tiled schemes produce near-optimal transcripts on this input.
    assert abs(genasm.edit_distance - gact.cigar.edit_distance) <= 5

    alignment = benchmark(genasm_align, region, query)
    assert alignment.cigar.is_valid_for(region, query)
