"""Section 10.4 (ASAP): GenASM vs the FPGA edit-distance accelerator.

Table from published anchors (ASAP: 6.8 us at 64 bp to 18.8 us at 320 bp at
6.8 W; paper: GenASM 9.3-400x faster at 67x less power — our conservative
cycle model lands at the low end of that range). The benchmark measures the
short-sequence edit-distance kernel.
"""

from _common import emit_table

from repro.core.edit_distance import genasm_edit_distance
from repro.eval.experiments import experiment_asap
from repro.sequences.read_simulator import simulate_pair


def test_asap_comparison(benchmark):
    headers, rows = experiment_asap()
    emit_table(
        "asap_edit_distance",
        headers,
        rows,
        title="GenASM vs ASAP (paper: 9.3-400x speedup, 67x less power)",
    )
    for row in rows:
        assert row[3] > 1  # GenASM ahead at every length

    reference, query, _ = simulate_pair(320, 0.95, seed=96)
    result = benchmark(genasm_edit_distance, reference, query)
    assert result.distance >= 0
