"""QoS isolation benchmark: an abusive tenant vs an honest one.

Proves the multi-tenant QoS layer's headline bound on the real wire
path — HTTP parsing, admission control, the deficit-round-robin pending
queue, a replicated cluster — rather than on a simulated clock (the
fault-injection suite covers that): with one tenant offering **10x its
fair share**, an honest tenant's p99 must stay within 2x its solo
baseline and its goodput within 0.8x.

Two phases over identical open-loop honest schedules:

* ``solo``  — the honest tenant alone, measuring its baseline p99 and
  goodput (fraction of requests answered 200 within the run);
* ``abuse`` — the same honest schedule while an abuser fires ten times
  its admitted rate, opening with a burst deep enough to pile a real
  backlog into the pending queue. Admission clips the abuser to its
  bucket (429s, counted), and the fair queue keeps the honest tenant's
  lane draining at its weighted share through the backlog.

The engine is a sleep-padded pure-Python backend so service capacity is
set by the benchmark, not by host-dependent alignment throughput. Emits
``BENCH_qos.json`` at the repo root; ``check_regression.py`` gates
``summary.honest_p99_abuse_vs_solo <= 2.0``,
``summary.honest_goodput_abuse_vs_solo >= 0.8``, and
``summary.abuser_throttled_requests >= 1``.

Run:  PYTHONPATH=src python benchmarks/bench_qos.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from pathlib import Path

from _common import REPO_ROOT, emit_json, emit_table
from bench_serving import percentile

from repro.engine import PurePythonEngine
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    QosPolicy,
    TenantConfig,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_qos.json"

HONEST = "honest"
ABUSER = "abuser"


class SleepEngine(PurePythonEngine):
    """Pure backend with a fixed per-batch service cost.

    The sleep pins batch service time, so queueing behavior — the thing
    under test — dominates the measurement instead of alignment speed.
    """

    def __init__(self, delay: float):
        self.delay = delay

    def scan_batch(self, pairs, k, **kwargs):
        time.sleep(self.delay)
        return super().scan_batch(pairs, k, **kwargs)


def build_payloads(count: int, seed: int) -> list[dict]:
    rng = random.Random(seed)
    payloads = []
    for _ in range(count):
        text = "".join(rng.choice("ACGT") for _ in range(48))
        start = rng.randrange(0, 32)
        payloads.append(
            {"text": text, "pattern": text[start : start + 12], "k": 1}
        )
    return payloads


async def _http_request(reader, writer, payload: dict, api_key: str) -> int:
    """One POST /v1/scan; returns the status (429/503 are data, not errors)."""
    body = json.dumps(payload).encode()
    writer.write(
        (
            "POST /v1/scan HTTP/1.1\r\nHost: bench\r\n"
            f"X-API-Key: {api_key}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    await reader.readexactly(int(headers.get("content-length", "0")))
    return status


async def _drive_tenant(
    front: AlignmentHTTPServer,
    api_key: str,
    payloads: list[dict],
    *,
    rate: float,
    group: int,
    connections: int,
) -> list[tuple[float, int]]:
    """Open-loop schedule: fire ``group`` requests every ``group/rate``
    seconds across a keep-alive connection pool; returns
    ``(latency_seconds, status)`` per request, latency measured from the
    scheduled fire time (queue wait included)."""
    queues: list[asyncio.Queue] = [asyncio.Queue() for _ in range(connections)]

    async def worker(queue: asyncio.Queue) -> list[tuple[float, int]]:
        reader, writer = await asyncio.open_connection("127.0.0.1", front.port)
        own: list[tuple[float, int]] = []
        while True:
            item = await queue.get()
            if item is None:
                break
            fired_at, payload = item
            status = await _http_request(reader, writer, payload, api_key)
            own.append((time.perf_counter() - fired_at, status))
        writer.close()
        return own

    workers = [asyncio.ensure_future(worker(queue)) for queue in queues]
    gap = group / rate
    slot = 0
    for offset in range(0, len(payloads), group):
        fired_at = time.perf_counter()
        for payload in payloads[offset : offset + group]:
            queues[slot % connections].put_nowait((fired_at, payload))
            slot += 1
        await asyncio.sleep(gap)
    for queue in queues:
        queue.put_nowait(None)
    per_worker = await asyncio.gather(*workers)
    return [sample for samples in per_worker for sample in samples]


def run_phase(
    *,
    phase: str,  # "solo" | "abuse"
    honest_payloads: list[dict],
    abuse_payloads: list[dict],
    honest_rate: float,
    abuse_rate: float,
    qos_config: dict,
    engine_delay: float,
    batch_size: int,
) -> dict:
    async def main() -> dict:
        qos = QosPolicy(
            [
                TenantConfig(HONEST, **qos_config[HONEST]),
                TenantConfig(ABUSER, **qos_config[ABUSER]),
            ]
        )
        cluster = AlignmentCluster(
            replicas=2,
            engine_factory=lambda i: SleepEngine(engine_delay),
            policy="least_in_flight",
            batch_size=batch_size,
            flush_interval=0.025,
            max_pending=8192,
            qos=qos,
        )
        async with AlignmentHTTPServer(cluster, trace=False, qos=qos) as front:
            await front.start(port=0)
            start = time.perf_counter()
            tasks = [
                _drive_tenant(
                    front,
                    HONEST,
                    honest_payloads,
                    rate=honest_rate,
                    group=2,
                    connections=16,
                )
            ]
            if phase == "abuse":
                tasks.append(
                    _drive_tenant(
                        front,
                        ABUSER,
                        abuse_payloads,
                        rate=abuse_rate,
                        group=16,
                        connections=32,
                    )
                )
            outcomes = await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - start
            honest_samples = outcomes[0]
            abuse_samples = outcomes[1] if phase == "abuse" else []
            honest_ok = [lat for lat, status in honest_samples if status == 200]
            tenants = qos.stats_payload()
            return {
                "phase": phase,
                "seconds": elapsed,
                "honest_requests": len(honest_samples),
                "honest_ok": len(honest_ok),
                "honest_goodput": len(honest_ok) / len(honest_samples),
                "honest_p50_ms": percentile(honest_ok, 50) * 1e3,
                "honest_p99_ms": percentile(honest_ok, 99) * 1e3,
                "abuser_requests": len(abuse_samples),
                "abuser_admitted": sum(
                    1 for _lat, status in abuse_samples if status == 200
                ),
                "abuser_throttled": tenants[ABUSER]["throttled"],
                "abuser_shed": tenants[ABUSER]["shed"],
                "honest_throttled": tenants[HONEST]["throttled"],
                "honest_shed": tenants[HONEST]["shed"],
            }

    return asyncio.run(main())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: short phases, few requests",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    # Capacity model: 2 replicas x batch/delay ~ 8k req/s ceiling; the
    # abuser's quota (its "fair share") is its bucket rate, and it offers
    # 10x that, opening with a burst that piles a real backlog into the
    # pending queues.
    engine_delay = 0.002
    batch_size = 8
    if args.smoke:
        honest_requests, honest_rate = 120, 200.0
        abuse_rate = 4000.0  # 10x the abuser's 400/s quota
        abuse_requests = 1200
        abuser_burst = 600.0
    else:
        honest_requests, honest_rate = 500, 200.0
        abuse_rate = 4000.0
        abuse_requests = 8000
        abuser_burst = 2000.0

    qos_config = {
        HONEST: {"rate": 1000.0, "burst": 2000.0, "weight": 1.0},
        ABUSER: {"rate": 400.0, "burst": abuser_burst, "weight": 1.0},
    }
    honest_payloads = build_payloads(honest_requests, seed=0x90C)
    abuse_payloads = build_payloads(abuse_requests, seed=0xABCDE)

    results = []
    for phase in ("solo", "abuse"):
        results.append(
            run_phase(
                phase=phase,
                honest_payloads=honest_payloads,
                abuse_payloads=abuse_payloads,
                honest_rate=honest_rate,
                abuse_rate=abuse_rate,
                qos_config=qos_config,
                engine_delay=engine_delay,
                batch_size=batch_size,
            )
        )

    solo, abuse = results
    summary = {
        # CI-gated isolation bounds (see check_regression.py "qos" gates).
        "honest_p99_abuse_vs_solo": abuse["honest_p99_ms"] / solo["honest_p99_ms"],
        "honest_goodput_abuse_vs_solo": (
            abuse["honest_goodput"] / solo["honest_goodput"]
        ),
        "abuser_throttled_requests": abuse["abuser_throttled"],
        "solo_p99_ms": solo["honest_p99_ms"],
        "abuse_p99_ms": abuse["honest_p99_ms"],
        "abuser_admitted": abuse["abuser_admitted"],
    }

    emit_json(
        args.output,
        "qos",
        {
            "smoke": args.smoke,
            "engine_delay": engine_delay,
            "batch_size": batch_size,
            "qos_config": qos_config,
            "results": results,
            "summary": summary,
        },
    )

    rows = [
        [
            r["phase"],
            r["honest_requests"],
            f"{r['honest_goodput']:.3f}",
            f"{r['honest_p50_ms']:.1f}",
            f"{r['honest_p99_ms']:.1f}",
            r["abuser_requests"],
            r["abuser_admitted"],
            r["abuser_throttled"],
            r["abuser_shed"],
        ]
        for r in results
    ]
    emit_table(
        "bench_qos",
        [
            "phase", "honest req", "goodput", "p50 ms", "p99 ms",
            "abuse req", "admitted", "429s", "503s",
        ],
        rows,
        title="Honest-tenant latency with and without a 10x abusive tenant",
    )
    print(f"\nwrote {args.output}")
    print(
        f"honest p99 abuse/solo: {summary['honest_p99_abuse_vs_solo']:.2f}x "
        f"(gate <= 2.0); goodput ratio "
        f"{summary['honest_goodput_abuse_vs_solo']:.3f} (gate >= 0.8); "
        f"abuser 429s: {summary['abuser_throttled_requests']}"
    )


if __name__ == "__main__":
    main()
