"""Section 10.3: pre-alignment filtering vs Shouji.

Accuracy is *measured* (our GenASM filter and Shouji re-implementation vs
Myers ground truth; paper: GenASM 0.02%/0.002% false accepts vs Shouji's
4%/17%, both 0% false rejects) and time comes from the calibrated model
(paper: 3.7x speedup at 100 bp, parity at 250 bp, 1.7x less power).

The benchmark measures the GenASM-DC filtering kernel on a 100 bp pair.
"""

from _common import emit_table

from repro.core.prefilter import GenAsmFilter
from repro.eval.experiments import experiment_prefilter
from repro.sequences.read_simulator import simulate_pair


def test_prefilter_vs_shouji(benchmark):
    headers, rows = experiment_prefilter(pairs=120)
    emit_table(
        "prefilter_shouji",
        headers,
        rows,
        title=(
            "Pre-alignment filtering vs Shouji "
            "(paper: near-zero GenASM false accepts, 0% false rejects)"
        ),
    )
    # The reproduction's headline invariants, asserted every run:
    for row in rows:
        assert float(str(row[2]).rstrip("%")) == 0.0  # GenASM false reject
        genasm_fa = float(str(row[1]).rstrip("%"))
        shouji_fa = float(str(row[3]).rstrip("%"))
        assert genasm_fa <= shouji_fa

    filt = GenAsmFilter(5)
    reference, query, _ = simulate_pair(100, 0.97, seed=90)
    decision = benchmark(filt.decide, reference, query)
    assert decision.accepted
