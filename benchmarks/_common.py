"""Shared helpers for the benchmark harness.

Every bench regenerates the rows/series of one paper table or figure and
prints the rendered table. The only *committed* artifacts are the
machine-readable ``BENCH_*.json`` files at the repo root
(:func:`emit_json`) — those are tracked across PRs and uploaded by CI;
rendered tables are stdout only.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Sequence

from repro.eval.reporting import format_table

#: Repo root — where the cross-PR machine-readable artifacts live.
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_info() -> dict:
    """Provenance fields stamped into every machine-readable artifact."""
    from repro import __version__

    return {
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def emit_json(path: Path, benchmark: str, payload: dict) -> dict:
    """Write one ``BENCH_*.json`` artifact with standard provenance keys.

    The artifact layout is shared by every bench that is tracked across
    PRs: a ``benchmark`` tag, the :func:`machine_info` fields, then the
    bench-specific payload. Returns the full document.
    """
    document = {"benchmark": benchmark, **machine_info(), **payload}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return document


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str,
) -> str:
    """Render and print one reproduction table (stdout only — committed
    artifacts are the ``BENCH_*.json`` files, not rendered text)."""
    del name  # kept for call-site compatibility
    text = format_table(headers, rows, title=title)
    print("\n" + text)
    return text
