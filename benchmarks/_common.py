"""Shared helpers for the benchmark harness.

Every bench regenerates the rows/series of one paper table or figure
(DESIGN.md Section 4 maps them). The rendered table is printed and also
persisted under ``benchmarks/results/`` so EXPERIMENTS.md can reference
stable artifacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.eval.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str,
) -> str:
    """Render, print, and persist one reproduction table."""
    text = format_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    return text
