"""CI bench regression gate for the batched-engine hot paths.

Compares a freshly measured run against the committed
``BENCH_batch_engine.json`` baseline and exits non-zero when any matching
configuration at batch size >= 64 lost more than ``--threshold`` (default
40%) of its pairs/sec. The goal is catching structural regressions (an
accidentally quadratic traceback, a de-vectorized kernel), not 5% noise —
hence the generous threshold, which also absorbs most same-class CI
machine variation; ``--threshold`` can be tightened on pinned hardware.

Two modes:

* default — re-measure a small representative subset in-process (the
  batched backend at batch 64 on 100 bp reads, both committed error rates,
  all five tasks; one repeat each, a few seconds total) and compare;
* ``--fresh PATH`` — compare two existing benchmark JSON artifacts
  (e.g. the current smoke artifact against a downloaded baseline).

Run:  PYTHONPATH=src python benchmarks/check_regression.py [--baseline PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import REPO_ROOT  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_batch_engine.json"

#: The subset re-measured in default mode: the batched backend's short-read
#: hot paths at the smallest committed at-scale batch.
GATE_BACKEND = "batched"
GATE_READ_LENGTH = 100
GATE_BATCH_SIZE = 64


def config_key(row: dict) -> tuple:
    """Identity of one measured configuration across runs."""
    return (
        row["task"],
        row["backend"],
        row["read_length"],
        row["error_rate"],
        row["batch_size"],
    )


def find_regressions(
    baseline_rows: list[dict],
    fresh_rows: list[dict],
    *,
    threshold: float,
    min_batch: int = 64,
) -> tuple[list[dict], int]:
    """Configs whose fresh pairs/sec dropped more than ``threshold``.

    Only configurations present in *both* runs with ``batch_size >=
    min_batch`` participate; returns ``(regressions, compared_count)`` so
    callers can fail loudly when nothing overlapped (a silent pass on zero
    comparisons would defeat the gate).
    """
    baseline = {
        config_key(row): row["pairs_per_sec"]
        for row in baseline_rows
        if row["batch_size"] >= min_batch
    }
    regressions = []
    compared = 0
    for row in fresh_rows:
        if row["batch_size"] < min_batch:
            continue
        key = config_key(row)
        base_rate = baseline.get(key)
        if base_rate is None or base_rate <= 0:
            continue
        compared += 1
        ratio = row["pairs_per_sec"] / base_rate
        if ratio < 1.0 - threshold:
            regressions.append(
                {
                    "task": row["task"],
                    "backend": row["backend"],
                    "read_length": row["read_length"],
                    "error_rate": row["error_rate"],
                    "batch_size": row["batch_size"],
                    "baseline_pairs_per_sec": base_rate,
                    "fresh_pairs_per_sec": row["pairs_per_sec"],
                    "ratio": ratio,
                }
            )
    return regressions, compared


def measure_gate_subset(baseline_rows: list[dict]) -> list[dict]:
    """Re-measure the gate subset of the committed baseline in-process."""
    from bench_batch_engine import _threshold, build_pairs, run_config

    error_rates = sorted(
        {
            row["error_rate"]
            for row in baseline_rows
            if row["backend"] == GATE_BACKEND
            and row["read_length"] == GATE_READ_LENGTH
            and row["batch_size"] == GATE_BATCH_SIZE
        }
    )
    fresh: list[dict] = []
    for error_rate in error_rates:
        pairs = build_pairs(
            GATE_BATCH_SIZE, GATE_READ_LENGTH, error_rate, seed=0xC0FFEE
        )
        timings = run_config(
            GATE_BACKEND,
            pairs,
            _threshold(GATE_READ_LENGTH, error_rate),
            repeats=1,
        )
        for task, seconds in timings.items():
            fresh.append(
                {
                    "task": task,
                    "backend": GATE_BACKEND,
                    "read_length": GATE_READ_LENGTH,
                    "error_rate": error_rate,
                    "batch_size": GATE_BATCH_SIZE,
                    "seconds": seconds,
                    "pairs_per_sec": GATE_BATCH_SIZE / seconds,
                }
            )
    return fresh


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed benchmark JSON to compare against",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="existing benchmark JSON to check instead of re-measuring",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.40,
        help="fractional pairs/sec drop that fails the gate (default 0.40)",
    )
    parser.add_argument(
        "--min-batch",
        type=int,
        default=64,
        help="only configurations at this batch size or larger are gated",
    )
    args = parser.parse_args()
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")

    baseline_doc = json.loads(args.baseline.read_text())
    baseline_rows = baseline_doc.get("results", [])
    if not baseline_rows:
        print(f"FAIL: baseline {args.baseline} has no results")
        return 2

    if args.fresh is not None:
        fresh_rows = json.loads(args.fresh.read_text()).get("results", [])
    else:
        fresh_rows = measure_gate_subset(baseline_rows)

    regressions, compared = find_regressions(
        baseline_rows,
        fresh_rows,
        threshold=args.threshold,
        min_batch=args.min_batch,
    )
    if compared == 0:
        print(
            "FAIL: no overlapping configurations at batch >= "
            f"{args.min_batch} between baseline and fresh run"
        )
        return 2
    print(
        f"compared {compared} configurations at batch >= {args.min_batch} "
        f"(gate: >{args.threshold:.0%} pairs/sec drop fails)"
    )
    baseline_rates = {
        config_key(r): r["pairs_per_sec"] for r in baseline_rows
    }
    for row in fresh_rows:
        base = baseline_rates.get(config_key(row))
        if base and row["batch_size"] >= args.min_batch:
            print(
                f"  {row['task']:<14} err={row['error_rate']:.2f} "
                f"base {base:>9,.0f}/s fresh {row['pairs_per_sec']:>9,.0f}/s "
                f"({row['pairs_per_sec'] / base:.2f}x)"
            )
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s):")
        for reg in regressions:
            print(
                f"  {reg['task']} {reg['backend']} "
                f"len={reg['read_length']} err={reg['error_rate']:.2f} "
                f"batch={reg['batch_size']}: "
                f"{reg['baseline_pairs_per_sec']:,.0f} -> "
                f"{reg['fresh_pairs_per_sec']:,.0f} pairs/sec "
                f"({reg['ratio']:.2f}x)"
            )
        return 1
    print("OK: no configuration regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
