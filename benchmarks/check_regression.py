"""CI bench regression gate across every committed benchmark baseline.

The repo commits one JSON artifact per benchmark family at the repo root
(``BENCH_batch_engine.json``, ``BENCH_serving.json``, ``BENCH_http.json``,
``BENCH_cluster.json``, ``BENCH_elastic.json``, ``BENCH_qos.json``,
``BENCH_wgs.json``). Each is a *baseline*:
rows of measured configurations plus a ``summary`` block of
scale-invariant ratios (speedups, degradation ratios, hit-rate wins).
This gate protects them three ways:

* **Invariant gating** (``--all``): every committed baseline must parse,
  contain gated rows with a positive metric, and satisfy its
  :class:`Invariant` list — dotted-path predicates over the document
  (``summary.hedged_p99_vs_unhedged_p99 <= 0.5``). Ratios are
  machine-independent, so this runs anywhere, and it runs **before** the
  smoke benches overwrite the baselines in CI.
* **Row-metric comparison** (``--file NAME --fresh PATH``): compare a
  fresh artifact against the committed baseline row-by-row using the
  family's :class:`GateSpec` (metric, identity key fields, drop
  threshold). The goal is catching structural regressions (an
  accidentally quadratic traceback, a de-vectorized kernel), not 5%
  noise — hence generous thresholds.
* **In-process re-measure** (default mode, batch_engine only): re-run a
  small representative subset (batched backend, batch 64, 100 bp reads,
  both committed error rates; a few seconds) and compare against the
  committed baseline.

Run:  PYTHONPATH=src python benchmarks/check_regression.py [--all]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import REPO_ROOT  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_batch_engine.json"

#: The subset re-measured in default mode: the batched backend's short-read
#: hot paths at the smallest committed at-scale batch.
GATE_BACKEND = "batched"
GATE_READ_LENGTH = 100
GATE_BATCH_SIZE = 64


@dataclass(frozen=True)
class Invariant:
    """One dotted-path predicate a benchmark document must satisfy.

    ``path`` walks dict keys (``summary.cache_speedup_repeated``); a
    missing segment *fails* the invariant — a silently absent summary
    field would otherwise turn the gate into a no-op.
    """

    path: str
    op: str  # ">=" or "<="
    value: float

    def resolve(self, doc: dict) -> Any:
        node: Any = doc
        for part in self.path.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def check(self, doc: dict) -> tuple[bool, Any]:
        """``(holds, observed)`` for this document."""
        observed = self.resolve(doc)
        if not isinstance(observed, (int, float)) or isinstance(
            observed, bool
        ):
            return False, observed
        if self.op == ">=":
            return observed >= self.value, observed
        if self.op == "<=":
            return observed <= self.value, observed
        raise ValueError(f"unknown invariant op {self.op!r}")

    def describe(self) -> str:
        return f"{self.path} {self.op} {self.value}"


@dataclass(frozen=True)
class GateSpec:
    """How one benchmark family's artifact is gated.

    ``metric`` is the per-row throughput field; ``key_fields`` identify a
    configuration across runs (rows missing a key field still compare —
    absent fields become None on both sides); ``row_filter`` restricts
    gating to rows measured at scale (tiny batches are pure noise);
    ``threshold`` is the fractional metric drop that fails.
    """

    name: str
    metric: str
    key_fields: tuple[str, ...]
    threshold: float = 0.40
    row_filter: Callable[[dict], bool] | None = None
    invariants: tuple[Invariant, ...] = ()

    @property
    def path(self) -> Path:
        return REPO_ROOT / f"BENCH_{self.name}.json"

    def gated_rows(self, rows: list[dict]) -> list[dict]:
        if self.row_filter is None:
            return list(rows)
        return [row for row in rows if self.row_filter(row)]

    def row_key(self, row: dict) -> tuple:
        return tuple(row.get(field_name) for field_name in self.key_fields)


GATE_SPECS: dict[str, GateSpec] = {
    spec.name: spec
    for spec in (
        GateSpec(
            name="batch_engine",
            metric="pairs_per_sec",
            key_fields=(
                "task",
                "backend",
                "read_length",
                "error_rate",
                "batch_size",
            ),
            threshold=0.40,
            row_filter=lambda row: row.get("batch_size", 0) >= GATE_BATCH_SIZE,
            invariants=(
                # The batched backend's reason to exist: a real at-scale
                # speedup over the pure backend survives re-measurement.
                Invariant("summary.max_speedup_at_batch_ge_64", ">=", 2.0),
                # The native engine's reason to exist: full windowed
                # alignment keeps pace with the edit-distance scan at
                # batch >= 64 (the committed baseline is measured with
                # the extension built; a null ratio fails the gate).
                Invariant("summary.native_align_ratio", ">=", 0.8),
            ),
        ),
        GateSpec(
            name="serving",
            metric="requests_per_sec",
            key_fields=(
                "workload",
                "op",
                "backend",
                "workers",
                "read_length",
                "error_rate",
                "flush_ms",
                "clients",
                "batch_size",
            ),
            # Async serving benches are noisier than closed-loop kernels.
            threshold=0.50,
            invariants=(
                Invariant("summary.max_requests_per_sec", ">=", 1.0),
            ),
        ),
        GateSpec(
            name="http",
            metric="requests_per_sec",
            key_fields=(
                "workload",
                "mode",
                "flush_ms",
                "burst_size",
                "burst_gap_ms",
            ),
            threshold=0.50,
            invariants=(
                # Adaptive flush must not *lose* to fixed flush on the
                # bursty workload it was built for.
                Invariant("summary.best_adaptive_speedup_bursty", ">=", 0.9),
                # Observability bound: per-request tracing (spans, trace
                # ring buffer, id minting) must stay within 5% of
                # tracing-off throughput on the bursty workload.
                Invariant("summary.tracing_req_s_ratio", ">=", 0.95),
            ),
        ),
        GateSpec(
            name="cluster",
            metric="goodput_per_sec",
            key_fields=("workload", "replicas", "degraded", "policy"),
            threshold=0.50,
            invariants=(
                # Routing around one 50x-degraded replica keeps most of
                # the healthy pair's goodput...
                Invariant(
                    "summary.degraded_2rep_vs_healthy_2rep", ">=", 0.5
                ),
                # ...while that replica alone would collapse it — the
                # gap is the router's measured contribution.
                Invariant(
                    "summary.single_degraded_vs_healthy_2rep", "<=", 0.5
                ),
            ),
        ),
        GateSpec(
            name="elastic",
            metric="goodput_per_sec",
            key_fields=("workload", "scenario", "replicas", "policy"),
            threshold=0.50,
            invariants=(
                # Acceptance bar: hedging halves (or better) the p99 a
                # 50x-degraded replica inflicts, at equal goodput...
                Invariant(
                    "summary.hedged_p99_vs_unhedged_p99", "<=", 0.5
                ),
                Invariant(
                    "summary.hedged_vs_unhedged_goodput", ">=", 0.9
                ),
                # ...and the content-addressed cache turns a >= 80%
                # repeated workload into a >= 5x served-req/s win.
                Invariant("summary.cache_speedup_repeated", ">=", 5.0),
                # The autoscaler converges: replicas grow under load and
                # return to the floor after it.
                Invariant("summary.autoscaler_peak_replicas", ">=", 2.0),
                Invariant("summary.autoscaler_final_replicas", "<=", 1.0),
            ),
        ),
        GateSpec(
            name="wgs",
            metric="reads_per_sec",
            key_fields=("phase", "replicas", "read_length"),
            threshold=0.50,
            invariants=(
                # The streaming job fabric's acceptance bar: SAM pulled
                # through chunked HTTP ingest + resumable offset reads is
                # byte-identical to the in-process pipeline, and the
                # client really did reconnect mid-job.
                Invariant("summary.sam_byte_identical", ">=", 1.0),
                Invariant("summary.resumed_mid_job", ">=", 1.0),
                # Bounded memory: streaming 4x the reads must not grow
                # peak RSS materially (the job holds a fixed window of
                # reads in flight, never the stream).
                Invariant("summary.peak_rss_growth_4x", "<=", 1.5),
                Invariant("summary.reads_per_sec", ">=", 1.0),
            ),
        ),
        GateSpec(
            name="qos",
            metric="honest_goodput",
            key_fields=("phase",),
            threshold=0.50,
            invariants=(
                # The multi-tenant isolation acceptance bound: one tenant
                # saturating the cluster at 10x its fair share moves the
                # honest tenant's p99 by at most 2x its solo baseline...
                Invariant("summary.honest_p99_abuse_vs_solo", "<=", 2.0),
                # ...and leaves it >= 0.8 of its solo goodput...
                Invariant(
                    "summary.honest_goodput_abuse_vs_solo", ">=", 0.8
                ),
                # ...while admission control really was doing the
                # clipping (the abuse phase produced 429s, not sheds).
                Invariant("summary.abuser_throttled_requests", ">=", 1.0),
            ),
        ),
    )
}


def config_key(row: dict) -> tuple:
    """Identity of one batch-engine configuration (legacy helper)."""
    return GATE_SPECS["batch_engine"].row_key(row)


def find_metric_regressions(
    baseline_rows: list[dict],
    fresh_rows: list[dict],
    spec: GateSpec,
) -> tuple[list[dict], int]:
    """Configs whose fresh metric dropped more than the spec's threshold.

    Only configurations present in *both* runs (after the spec's row
    filter) participate; returns ``(regressions, compared_count)`` so
    callers can fail loudly when nothing overlapped — a silent pass on
    zero comparisons would defeat the gate.
    """
    baseline = {
        spec.row_key(row): row[spec.metric]
        for row in spec.gated_rows(baseline_rows)
        if spec.metric in row
    }
    regressions = []
    compared = 0
    for row in spec.gated_rows(fresh_rows):
        if spec.metric not in row:
            continue
        key = spec.row_key(row)
        base_rate = baseline.get(key)
        if base_rate is None or base_rate <= 0:
            continue
        compared += 1
        ratio = row[spec.metric] / base_rate
        if ratio < 1.0 - spec.threshold:
            regressions.append(
                {
                    "key": dict(zip(spec.key_fields, key)),
                    f"baseline_{spec.metric}": base_rate,
                    f"fresh_{spec.metric}": row[spec.metric],
                    "ratio": ratio,
                }
            )
    return regressions, compared


def find_regressions(
    baseline_rows: list[dict],
    fresh_rows: list[dict],
    *,
    threshold: float,
    min_batch: int = 64,
) -> tuple[list[dict], int]:
    """Batch-engine pairs/sec gate (legacy shape, kept for callers/tests).

    Thin wrapper over :func:`find_metric_regressions` with the
    batch-engine spec at a caller-chosen threshold and batch floor;
    regression dicts keep the historical flat field layout.
    """
    base = GATE_SPECS["batch_engine"]
    spec = GateSpec(
        name=base.name,
        metric=base.metric,
        key_fields=base.key_fields,
        threshold=threshold,
        row_filter=lambda row: row.get("batch_size", 0) >= min_batch,
    )
    nested, compared = find_metric_regressions(baseline_rows, fresh_rows, spec)
    regressions = [
        {
            **reg["key"],
            "baseline_pairs_per_sec": reg["baseline_pairs_per_sec"],
            "fresh_pairs_per_sec": reg["fresh_pairs_per_sec"],
            "ratio": reg["ratio"],
        }
        for reg in nested
    ]
    return regressions, compared


def check_invariants(spec: GateSpec, doc: dict) -> list[str]:
    """Human-readable failures for every invariant ``doc`` violates."""
    failures = []
    for invariant in spec.invariants:
        holds, observed = invariant.check(doc)
        if not holds:
            failures.append(
                f"{spec.name}: {invariant.describe()} "
                f"violated (observed {observed!r})"
            )
    return failures


def gate_artifact(spec: GateSpec, path: Path | None = None) -> list[str]:
    """Structurally gate one committed artifact; returns failure strings.

    Checks: file exists and parses; it has gated rows; every gated row
    carries a positive metric; every invariant holds.
    """
    path = path or spec.path
    if not path.exists():
        return [f"{spec.name}: missing artifact {path}"]
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{spec.name}: unparseable artifact {path}: {exc}"]
    rows = spec.gated_rows(doc.get("results", []))
    failures = []
    if not rows:
        failures.append(f"{spec.name}: no gated rows in {path}")
    for row in rows:
        value = row.get(spec.metric)
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(
                f"{spec.name}: row {spec.row_key(row)} has invalid "
                f"{spec.metric}={value!r}"
            )
            break
    failures.extend(check_invariants(spec, doc))
    return failures


def gate_all(fresh_dir: Path | None = None) -> int:
    """Gate every committed baseline (and optionally fresh artifacts).

    With ``fresh_dir``, any ``BENCH_<name>.json`` found there is also
    row-compared against the committed baseline under its family spec.
    """
    failures: list[str] = []
    for spec in GATE_SPECS.values():
        spec_failures = gate_artifact(spec)
        failures.extend(spec_failures)
        status = "FAIL" if spec_failures else "ok"
        checked = len(spec.invariants)
        print(f"  [{status}] {spec.path.name}: {checked} invariant(s)")
        if fresh_dir is not None:
            fresh_path = fresh_dir / spec.path.name
            if fresh_path.exists():
                baseline_rows = json.loads(spec.path.read_text()).get(
                    "results", []
                )
                fresh_rows = json.loads(fresh_path.read_text()).get(
                    "results", []
                )
                regressions, compared = find_metric_regressions(
                    baseline_rows, fresh_rows, spec
                )
                print(
                    f"         fresh {fresh_path}: compared {compared}, "
                    f"{len(regressions)} regressed"
                )
                failures.extend(
                    f"{spec.name}: {reg['key']} dropped to "
                    f"{reg['ratio']:.2f}x baseline"
                    for reg in regressions
                )
    if failures:
        print(f"\nFAIL: {len(failures)} gate failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"OK: all {len(GATE_SPECS)} benchmark baselines pass their gates")
    return 0


def gate_one_fresh(spec: GateSpec, fresh: Path, threshold: float | None) -> int:
    """Row-compare one fresh artifact against its committed baseline."""
    if threshold is not None:
        spec = GateSpec(
            name=spec.name,
            metric=spec.metric,
            key_fields=spec.key_fields,
            threshold=threshold,
            row_filter=spec.row_filter,
            invariants=spec.invariants,
        )
    baseline_rows = json.loads(spec.path.read_text()).get("results", [])
    fresh_rows = json.loads(fresh.read_text()).get("results", [])
    regressions, compared = find_metric_regressions(
        baseline_rows, fresh_rows, spec
    )
    if compared == 0:
        print(
            f"FAIL: no overlapping {spec.name} configurations between "
            f"{spec.path.name} and {fresh}"
        )
        return 2
    print(
        f"compared {compared} {spec.name} configurations "
        f"(gate: >{spec.threshold:.0%} {spec.metric} drop fails)"
    )
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s):")
        for reg in regressions:
            print(
                f"  {reg['key']}: "
                f"{reg[f'baseline_{spec.metric}']:,.0f} -> "
                f"{reg[f'fresh_{spec.metric}']:,.0f} {spec.metric} "
                f"({reg['ratio']:.2f}x)"
            )
        return 1
    print("OK: no configuration regressed past the threshold")
    return 0


def measure_gate_subset(baseline_rows: list[dict]) -> list[dict]:
    """Re-measure the batch-engine gate subset in-process."""
    from bench_batch_engine import _threshold, build_pairs, run_config

    error_rates = sorted(
        {
            row["error_rate"]
            for row in baseline_rows
            if row["backend"] == GATE_BACKEND
            and row["read_length"] == GATE_READ_LENGTH
            and row["batch_size"] == GATE_BATCH_SIZE
        }
    )
    fresh: list[dict] = []
    for error_rate in error_rates:
        pairs = build_pairs(
            GATE_BATCH_SIZE, GATE_READ_LENGTH, error_rate, seed=0xC0FFEE
        )
        timings = run_config(
            GATE_BACKEND,
            pairs,
            _threshold(GATE_READ_LENGTH, error_rate),
            repeats=1,
        )
        for task, seconds in timings.items():
            fresh.append(
                {
                    "task": task,
                    "backend": GATE_BACKEND,
                    "read_length": GATE_READ_LENGTH,
                    "error_rate": error_rate,
                    "batch_size": GATE_BATCH_SIZE,
                    "seconds": seconds,
                    "pairs_per_sec": GATE_BATCH_SIZE / seconds,
                }
            )
    return fresh


def legacy_main(args: argparse.Namespace) -> int:
    """Default mode: batch-engine re-measure (or --fresh) comparison."""
    baseline_doc = json.loads(args.baseline.read_text())
    baseline_rows = baseline_doc.get("results", [])
    if not baseline_rows:
        print(f"FAIL: baseline {args.baseline} has no results")
        return 2

    if args.fresh is not None:
        fresh_rows = json.loads(args.fresh.read_text()).get("results", [])
    else:
        fresh_rows = measure_gate_subset(baseline_rows)

    regressions, compared = find_regressions(
        baseline_rows,
        fresh_rows,
        threshold=args.threshold,
        min_batch=args.min_batch,
    )
    if compared == 0:
        print(
            "FAIL: no overlapping configurations at batch >= "
            f"{args.min_batch} between baseline and fresh run"
        )
        return 2
    print(
        f"compared {compared} configurations at batch >= {args.min_batch} "
        f"(gate: >{args.threshold:.0%} pairs/sec drop fails)"
    )
    baseline_rates = {
        config_key(r): r["pairs_per_sec"] for r in baseline_rows
    }
    for row in fresh_rows:
        base = baseline_rates.get(config_key(row))
        if base and row["batch_size"] >= args.min_batch:
            print(
                f"  {row['task']:<14} err={row['error_rate']:.2f} "
                f"base {base:>9,.0f}/s fresh {row['pairs_per_sec']:>9,.0f}/s "
                f"({row['pairs_per_sec'] / base:.2f}x)"
            )
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s):")
        for reg in regressions:
            print(
                f"  {reg['task']} {reg['backend']} "
                f"len={reg['read_length']} err={reg['error_rate']:.2f} "
                f"batch={reg['batch_size']}: "
                f"{reg['baseline_pairs_per_sec']:,.0f} -> "
                f"{reg['fresh_pairs_per_sec']:,.0f} pairs/sec "
                f"({reg['ratio']:.2f}x)"
            )
        return 1
    print("OK: no configuration regressed past the threshold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--all",
        action="store_true",
        help="gate every committed BENCH_*.json baseline (invariants + "
        "structure) instead of re-measuring",
    )
    parser.add_argument(
        "--no-measure",
        action="store_true",
        help="with --all: explicit flag documenting that nothing is "
        "re-measured (the default for --all)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=None,
        help="with --all: directory of fresh BENCH_*.json artifacts to "
        "row-compare against the committed baselines",
    )
    parser.add_argument(
        "--file",
        choices=sorted(GATE_SPECS),
        default=None,
        help="gate one family: row-compare --fresh against its baseline",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed benchmark JSON to compare against (default mode)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="existing benchmark JSON to check instead of re-measuring",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fractional metric drop that fails the gate "
        "(default: per-family spec; 0.40 in legacy mode)",
    )
    parser.add_argument(
        "--min-batch",
        type=int,
        default=64,
        help="legacy mode: only configurations at this batch size or "
        "larger are gated",
    )
    args = parser.parse_args()
    if args.threshold is not None and not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")

    if args.all:
        return gate_all(fresh_dir=args.fresh_dir)
    if args.file is not None:
        if args.fresh is None:
            parser.error("--file requires --fresh PATH")
        return gate_one_fresh(GATE_SPECS[args.file], args.fresh, args.threshold)
    if args.threshold is None:
        args.threshold = 0.40
    return legacy_main(args)


if __name__ == "__main__":
    sys.exit(main())
