"""Cluster benchmark: goodput and tail latency vs replica count, with and
without one artificially degraded replica.

GenASM's throughput story is many independent ASM units; the serving
analogue is an :class:`AlignmentCluster` of replicas behind a
health-aware router. This bench drives the cluster with *open-loop*
traffic (requests fire on a wall-clock schedule, like a load balancer,
not in lockstep with responses) and records **goodput** (answered-OK
requests per second — shed and failed requests don't count) and latency
percentiles, across:

* replica counts 1 / 2 / 4, all healthy;
* the same clusters with replica 0 degraded by a 50x injected latency
  (:class:`DegradedEngine` times each real engine call and sleeps 49x as
  long — the profile of a replica wedged on I/O or thermals, which is
  exactly the case routing can win: the sleeping replica isn't consuming
  the CPU the healthy replicas need).

The claim under test: a 2+-replica cluster with one degraded replica
sustains >= 80% of its healthy goodput (the router prices the degraded
replica out of rotation within a few probes), while a *single* degraded
server collapses to ~1/50th. The ``summary`` block records both ratios;
``benchmarks/check_regression.py``-style tracking can gate on them.

Emits ``BENCH_cluster.json`` at the repo root (tracked across PRs,
uploaded as a CI artifact). Run:

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time
from dataclasses import dataclass
from pathlib import Path

from _common import REPO_ROOT, emit_json
from bench_serving import percentile

from repro.engine import PurePythonEngine
from repro.engine.registry import create_engine
from repro.eval.reporting import format_table
from repro.serving import AlignmentCluster, ClusterSaturatedError
from repro.sequences.mutate import MutationProfile, mutate

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_cluster.json"

#: Injected slowdown on the degraded replica (the ISSUE's 50x).
DEGRADE_FACTOR = 50.0


class DegradedEngine(PurePythonEngine):
    """Wrap an engine so every call takes ``slowdown`` times as long.

    The extra time is *sleep*, not compute: a degraded replica stalls its
    own worker thread without stealing CPU from healthy replicas —
    the I/O-bound / throttled-host failure mode a router can win against.
    """

    def __init__(self, inner, slowdown: float = DEGRADE_FACTOR) -> None:
        self.inner = inner
        self.slowdown = slowdown

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"degraded-{self.inner.name}"

    def _degrade(self, elapsed: float) -> None:
        time.sleep(elapsed * (self.slowdown - 1.0))

    def scan_batch(self, pairs, k, **kwargs):
        started = time.perf_counter()
        result = self.inner.scan_batch(pairs, k, **kwargs)
        self._degrade(time.perf_counter() - started)
        return result

    def run_dc_windows(self, jobs, **kwargs):
        started = time.perf_counter()
        result = self.inner.run_dc_windows(jobs, **kwargs)
        self._degrade(time.perf_counter() - started)
        return result


@dataclass(frozen=True)
class Workload:
    name: str
    read_length: int
    error_rate: float
    requests: int
    interarrival_ms: float

    @property
    def threshold(self) -> int:
        return max(8, int(self.read_length * self.error_rate))


def build_pairs(workload: Workload, seed: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    pairs = []
    for _ in range(workload.requests):
        region = "".join(
            rng.choice("ACGT")
            for _ in range(workload.read_length + workload.threshold)
        )
        read = mutate(
            region[: workload.read_length],
            MutationProfile(error_rate=workload.error_rate),
            rng=rng,
        ).sequence
        pairs.append((region, read))
    return pairs


async def drive_open_loop(
    cluster: AlignmentCluster,
    pairs: list[tuple[str, str]],
    k: int,
    interarrival_s: float,
) -> dict:
    """Fire one request per schedule slot; classify every outcome.

    Latency is measured from the scheduled fire time, queue wait
    included — what a client behind the router observes.
    """

    async def one(pair: tuple[str, str], fired_at: float) -> tuple[str, float]:
        try:
            await cluster.edit_distance(pair[0], pair[1], k)
        except ClusterSaturatedError:
            return "shed", time.perf_counter() - fired_at
        except Exception:  # noqa: BLE001 - benchmark classification
            return "error", time.perf_counter() - fired_at
        return "ok", time.perf_counter() - fired_at

    started = time.perf_counter()
    tasks = []
    for pair in pairs:
        tasks.append(asyncio.create_task(one(pair, time.perf_counter())))
        await asyncio.sleep(interarrival_s)
    outcomes = await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    ok_latencies = [lat for kind, lat in outcomes if kind == "ok"]
    counts = {
        kind: sum(1 for outcome_kind, _ in outcomes if outcome_kind == kind)
        for kind in ("ok", "shed", "error")
    }
    return {
        "seconds": elapsed,
        "offered_per_sec": len(pairs) / elapsed,
        "goodput_per_sec": counts["ok"] / elapsed if counts["ok"] else 0.0,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "errors": counts["error"],
        "p50_ms": percentile(ok_latencies, 50) * 1e3 if ok_latencies else None,
        "p99_ms": percentile(ok_latencies, 99) * 1e3 if ok_latencies else None,
    }


def run_config(
    workload: Workload,
    pairs: list[tuple[str, str]],
    *,
    replicas: int,
    degraded: bool,
    policy: str,
    engine: str,
    batch_size: int,
    flush_ms: float,
    max_pending: int,
) -> dict:
    def engine_factory(index: int):
        inner = create_engine(engine)
        if degraded and index == 0:
            return DegradedEngine(inner)
        return inner

    async def main() -> dict:
        async with AlignmentCluster(
            replicas=replicas,
            engine_factory=engine_factory,
            policy=policy,
            batch_size=batch_size,
            flush_interval=flush_ms / 1e3,
            max_pending=max_pending,
        ) as cluster:
            measured = await drive_open_loop(
                cluster,
                pairs,
                workload.threshold,
                workload.interarrival_ms / 1e3,
            )
            per_replica = [
                {
                    "name": r.name,
                    "engine": r.server.engine_name,
                    "completed": r.completed,
                    "failed": r.failed,
                    "p99_ms": r.latency.to_dict()["p99_ms"],
                }
                for r in cluster.replicas
            ]
        return {
            "workload": workload.name,
            "replicas": replicas,
            "degraded": degraded,
            "policy": policy,
            "engine": engine,
            "batch_size": batch_size,
            "flush_ms": flush_ms,
            "requests": len(pairs),
            **measured,
            "per_replica": per_replica,
        }

    return asyncio.run(main())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: fewer requests, 1/2 replicas only",
    )
    parser.add_argument(
        "--engine",
        default="pure",
        help="engine backend per replica (default: pure)",
    )
    parser.add_argument(
        "--policy",
        default="latency_ewma",
        help="routing policy (default: latency_ewma)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    if args.smoke:
        workload = Workload("shed_route_smoke", 64, 0.08, 160, 2.0)
        replica_counts = [1, 2]
        batch_size, flush_ms, max_pending = 8, 3.0, 128
    else:
        workload = Workload("shed_route", 64, 0.08, 600, 1.5)
        replica_counts = [1, 2, 4]
        batch_size, flush_ms, max_pending = 8, 3.0, 256

    pairs = build_pairs(workload, seed=0xC1)
    results = []
    for replicas in replica_counts:
        for degraded in (False, True):
            result = run_config(
                workload,
                pairs,
                replicas=replicas,
                degraded=degraded,
                policy=args.policy,
                engine=args.engine,
                batch_size=batch_size,
                flush_ms=flush_ms,
                max_pending=max_pending,
            )
            results.append(result)

    def goodput(replicas: int, degraded: bool) -> float | None:
        for result in results:
            if result["replicas"] == replicas and result["degraded"] == degraded:
                return result["goodput_per_sec"]
        return None

    healthy_2 = goodput(2, False)
    degraded_2 = goodput(2, True)
    summary = {
        "degrade_factor": DEGRADE_FACTOR,
        "healthy_2rep_goodput": healthy_2,
        "degraded_2rep_goodput": degraded_2,
        # The acceptance ratio: a 2-replica cluster with one degraded
        # replica should sustain >= 0.8 of its healthy goodput.
        "degraded_2rep_vs_healthy_2rep": (
            degraded_2 / healthy_2 if healthy_2 else None
        ),
        "single_degraded_goodput": goodput(1, True),
        "single_degraded_vs_healthy_2rep": (
            goodput(1, True) / healthy_2 if healthy_2 else None
        ),
    }

    emit_json(
        args.output,
        "cluster",
        {
            "smoke": args.smoke,
            "results": results,
            "summary": summary,
        },
    )

    rows = [
        [
            r["replicas"],
            "one degraded" if r["degraded"] else "healthy",
            f"{r['goodput_per_sec']:,.0f}",
            r["ok"],
            r["shed"],
            f"{r['p50_ms']:.1f}" if r["p50_ms"] is not None else "-",
            f"{r['p99_ms']:.1f}" if r["p99_ms"] is not None else "-",
        ]
        for r in results
    ]
    print(
        "\n"
        + format_table(
            ["replicas", "condition", "goodput/s", "ok", "shed", "p50 ms", "p99 ms"],
            rows,
            title=(
                f"Cluster goodput under open-loop load "
                f"({args.policy}, {DEGRADE_FACTOR:.0f}x degradation)"
            ),
        )
    )
    print(f"\nwrote {args.output}")
    ratio = summary["degraded_2rep_vs_healthy_2rep"]
    if ratio is not None:
        print(
            f"2-replica cluster with one degraded replica: "
            f"{ratio:.2f}x of healthy goodput "
            f"(single degraded server: "
            f"{summary['single_degraded_vs_healthy_2rep']:.2f}x)"
        )


if __name__ == "__main__":
    main()
