"""CI smoke gate for the ``/metrics`` exposition endpoint.

Boots a real replicated serving stack — a two-replica
:class:`AlignmentCluster` with a result cache and an attached
:class:`ClusterAutoscaler` behind the HTTP front on an ephemeral
loopback port — drives a little traffic through every POST endpoint,
then scrapes ``GET /metrics`` *externally* (``curl`` when available,
``urllib`` otherwise: the point is crossing a real TCP socket, not an
in-process shortcut) and validates the scrape with
:func:`repro.serving.observability.parse_prometheus_text`. Validation is
structural — TYPE declarations, cumulative histogram buckets, ``+Inf``
vs ``_count`` agreement — plus a required-family checklist covering
every layer: HTTP front, batching server, cache, cluster router, and
autoscaler. A missing family means a collector silently fell off the
registry; a parse error means the exposition format rotted.

Exit status 0 on success, 1 with a failure list otherwise.

Run:  PYTHONPATH=src python benchmarks/check_metrics_endpoint.py
"""

from __future__ import annotations

import asyncio
import json
import shutil
import subprocess
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.serving import (  # noqa: E402
    AlignmentCluster,
    AlignmentHTTPServer,
    ClusterAutoscaler,
    parse_prometheus_text,
)

#: Every serving layer must contribute at least these families; one
#: entry per subsystem so a dropped collector is named, not just counted.
REQUIRED_FAMILIES = {
    "http front": (
        "genasm_http_requests_total",
        "genasm_http_request_duration_seconds",
    ),
    "batching server": (
        "genasm_serving_requests_total",
        "genasm_serving_flushes_total",
        "genasm_serving_request_latency_seconds",
        "genasm_serving_pending_requests",
    ),
    "result cache": (
        "genasm_cache_events_total",
        "genasm_cache_entries",
        "genasm_cache_bytes",
    ),
    "cluster router": (
        "genasm_cluster_replicas",
        "genasm_cluster_events_total",
        "genasm_cluster_replica_requests_total",
        "genasm_cluster_replica_latency_seconds",
    ),
    "autoscaler": (
        "genasm_autoscaler_actions_total",
        "genasm_autoscaler_decisions_total",
        "genasm_autoscaler_utilization",
    ),
}


def scrape(url: str) -> str:
    """Fetch ``url`` over real TCP: curl if present, urllib otherwise."""
    curl = shutil.which("curl")
    if curl is not None:
        proc = subprocess.run(
            [curl, "--silent", "--show-error", "--fail", "--max-time", "10", url],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"curl failed: {proc.stderr.strip()}")
        return proc.stdout
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


async def drive_and_scrape() -> tuple[str, str]:
    """Boot the stack, send traffic, return (metrics text, trace text)."""
    cluster = AlignmentCluster(
        replicas=2,
        engine="pure",
        batch_size=8,
        flush_interval=0.002,
        cache=True,
    )
    scaler = ClusterAutoscaler(cluster, cooldown=0.0)
    front = AlignmentHTTPServer(cluster)
    await front.start(host="127.0.0.1", port=0)
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", front.port)

        async def post(path: str, payload: dict) -> dict:
            body = json.dumps(payload).encode()
            writer.write(
                (
                    f"POST {path} HTTP/1.1\r\nHost: smoke\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            raw = await reader.readexactly(
                int(headers.get("content-length", "0"))
            )
            if status != 200:
                raise RuntimeError(f"{path} -> {status}: {raw[:200]!r}")
            return {"body": json.loads(raw), "headers": headers}

        # Touch every POST surface (and repeat one scan so the cache
        # records a hit, exercising its event counters).
        last = None
        for _ in range(3):
            last = await post(
                "/v1/scan", {"text": "ACGTACGTACGT", "pattern": "ACGT", "k": 1}
            )
        await post(
            "/v1/edit_distance",
            {"text": "ACGTACGT", "pattern": "ACGA", "k": 2},
        )
        await post("/v1/align", {"text": "ACGTACGT", "pattern": "ACGT"})
        scaler.evaluate()  # one control tick -> decision counters exist
        writer.close()

        request_id = last["headers"].get("x-request-id", "")
        metrics_text = await asyncio.to_thread(
            scrape, f"http://127.0.0.1:{front.port}/metrics"
        )
        trace_text = await asyncio.to_thread(
            scrape, f"http://127.0.0.1:{front.port}/v1/trace/{request_id}"
        )
        return metrics_text, trace_text
    finally:
        await front.stop()


def main() -> int:
    metrics_text, trace_text = asyncio.run(drive_and_scrape())

    failures: list[str] = []
    try:
        families = parse_prometheus_text(metrics_text)
    except ValueError as exc:
        print(f"FAIL: /metrics is not valid Prometheus text exposition: {exc}")
        return 1

    for subsystem, names in REQUIRED_FAMILIES.items():
        for name in names:
            if name not in families:
                failures.append(f"{subsystem}: family {name!r} missing")
            elif not families[name]["samples"]:
                failures.append(f"{subsystem}: family {name!r} has no samples")

    # The traced request must be queryable end-to-end over the same TCP
    # path, with a breakdown that accounts for its latency.
    try:
        trace = json.loads(trace_text)
    except json.JSONDecodeError as exc:
        failures.append(f"trace lookup: unparseable body ({exc})")
    else:
        if not trace.get("complete"):
            failures.append("trace lookup: request not marked complete")
        if trace.get("accounted_fraction", 0.0) < 0.5:
            failures.append(
                "trace lookup: span breakdown accounts for "
                f"{trace.get('accounted_fraction')!r} of the latency"
            )
        if not trace.get("spans"):
            failures.append("trace lookup: no spans recorded")

    if failures:
        print(f"FAIL: {len(failures)} /metrics smoke failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    total_samples = sum(len(f["samples"]) for f in families.values())
    print(
        f"OK: /metrics served {len(families)} families "
        f"({total_samples} samples) covering "
        f"{', '.join(REQUIRED_FAMILIES)}; trace lookup round-tripped"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
