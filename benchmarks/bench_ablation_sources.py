"""Section 10.5: sources of improvement (ablation).

Regenerates the paper's attribution arithmetic: the divide-and-conquer
cycle/footprint reductions (paper: thousands-fold DC reduction for long
reads, 80 GB -> 96 KB storage), PE-level parallelism, and the 32x vault
parallelism. The benchmark measures the window-DC kernel — the unit all of
these multiply.
"""

from _common import emit_table

from repro.core.genasm_dc import run_dc_window
from repro.eval.experiments import experiment_ablation
from repro.sequences.read_simulator import simulate_pair


def test_ablation_sources_of_improvement(benchmark):
    headers, rows = experiment_ablation()
    emit_table(
        "ablation_sources",
        headers,
        rows,
        title=(
            "Sources of improvement (paper: D&C thousands-fold for long "
            "reads, 80GB->96KB, 32x vaults)"
        ),
    )
    long_row = [r for r in rows if "long 10Kbp" in str(r[0])][0]
    assert long_row[3] > 1_000

    reference, query, _ = simulate_pair(64, 0.9, seed=97)
    window = benchmark(run_dc_window, reference, query)
    assert window.edit_distance >= 0
