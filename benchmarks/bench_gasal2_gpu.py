"""Section 10.2 (GPU): GenASM vs GASAL2 for short reads.

Table from the anchored device model (paper: 8.5-21.5x speedup, 15.4-20.6x
power reduction across 100/150/250 bp and 100K/1M/10M-pair batches). The
benchmark measures a batch of short-read alignments through the 32-vault
system model — the workload shape GASAL2 batches compete against.
"""

from _common import emit_table

from repro.eval.experiments import experiment_gasal2
from repro.hardware.memory import StackedMemorySystem
from repro.sequences.read_simulator import simulate_pair


def test_gasal2_comparison(benchmark):
    headers, rows = experiment_gasal2()
    emit_table(
        "gasal2_gpu",
        headers,
        rows,
        title="GenASM vs GASAL2 GPU aligner (paper: 8.5-21.5x)",
    )

    tasks = []
    for seed in range(16):
        reference, query, _ = simulate_pair(100, 0.95, seed=60 + seed)
        tasks.append((reference + "ACGTACGT", query))
    system = StackedMemorySystem()

    batch = benchmark(system.run_batch, tasks)
    assert len(batch.results) == 16
    assert batch.within_stack_bandwidth
