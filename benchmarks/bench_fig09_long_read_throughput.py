"""Figure 9: long-read alignment throughput vs BWA-MEM / Minimap2.

The table reproduces the figure's series from the device models (anchored
at the paper's 648x / 116x 12-thread speedups for the 15% datasets). The
benchmark measures the real GenASM alignment kernel on one long read — the
functional workload whose cycle count the throughput model projects.
"""

from _common import emit_table

from repro.core.aligner import GenAsmAligner
from repro.eval.datasets import long_read_datasets
from repro.eval.experiments import experiment_fig9

READ_LENGTH = 2_500


def test_fig9_long_read_throughput(benchmark):
    headers, rows = experiment_fig9()
    emit_table(
        "fig09_long_read_throughput",
        headers,
        rows,
        title=(
            "Figure 9: long-read alignment throughput "
            "(paper anchors: 648x BWA-MEM, 116x Minimap2 at 15% error)"
        ),
    )

    dataset = long_read_datasets(
        reads_per_set=1, read_length=READ_LENGTH, genome_length=40_000
    )[1]  # PacBio - 15%
    read = dataset.reads[0]
    region = dataset.genome.region(
        read.true_start, read.true_length + int(READ_LENGTH * 0.3)
    )
    aligner = GenAsmAligner()

    alignment = benchmark(aligner.align, region, read.sequence)
    assert alignment.cigar.is_valid_for(region, read.sequence)
