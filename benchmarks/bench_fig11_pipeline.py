"""Figure 11: end-to-end mapping pipeline time with and without GenASM.

Two parts:

* the Amdahl table projecting whole-pipeline speedups from the alignment
  fractions and the model's alignment-step speedups (paper: 2.4x/1.9x
  Illumina, 6.5x/3.4x PacBio, 4.9x/2.1x ONT);
* a measured benchmark running our actual Python pipeline (index -> seed ->
  filter -> GenASM align) over a read batch, demonstrating the pipeline
  substrate end to end.
"""

from _common import emit_table

from repro.eval.experiments import experiment_fig11
from repro.mapping.pipeline import make_genasm_mapper
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads


def test_fig11_pipeline_speedups(benchmark):
    headers, rows = experiment_fig11()
    emit_table(
        "fig11_pipeline",
        headers,
        rows,
        title=(
            "Figure 11: whole-pipeline speedup with GenASM as the aligner "
            "(paper: 2.4x/1.9x, 6.5x/3.4x, 4.9x/2.1x)"
        ),
    )

    genome = synthesize_genome(30_000, seed=40)
    reads = simulate_reads(
        genome, count=10, read_length=150, profile=illumina_profile(0.05), seed=41
    )
    batch = [(r.name, r.sequence) for r in reads]

    def run_pipeline():
        mapper = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
        return mapper.map_reads(batch)

    results = benchmark(run_pipeline)
    assert sum(1 for r in results if r.record.is_mapped) >= 8
