"""Figure 14: edit distance calculation vs Edlib.

Three ingredients in the table: model rows at the paper's 100 Kbp / 1 Mbp
scale (paper: 22-716x and 262-5413x speedups without traceback, 146-1458x
and 627-12501x with), plus a measured growth-factor row proving the
quadratic-vs-linear scaling behind the crossover on our actual Python
implementations.

The benchmark measures GenASM's windowed edit-distance kernel on a 2 Kbp
pair at 90% similarity.
"""

from _common import emit_table

from repro.core.edit_distance import genasm_edit_distance
from repro.eval.experiments import experiment_fig14
from repro.sequences.read_simulator import simulate_pair


def test_fig14_edit_distance(benchmark):
    headers, rows = experiment_fig14(measured_length=2_000)
    emit_table(
        "fig14_edit_distance",
        headers,
        rows,
        title=(
            "Figure 14: edit distance vs Edlib "
            "(paper: 22-716x at 100Kbp, 262-5413x at 1Mbp, w/o traceback)"
        ),
    )

    reference, query, _ = simulate_pair(2_000, 0.90, seed=95)
    result = benchmark(genasm_edit_distance, reference, query)
    assert result.distance > 0
