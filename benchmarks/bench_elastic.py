"""Elastic-serving benchmark: hedging, result cache, autoscaler convergence.

Three scenarios over the elastic layer (`BENCH_elastic.json`):

* **hedge** — a 2-replica cluster behind a *stateless* round-robin
  router, replica 0 degraded 50x (sleep-based, as in ``bench_cluster``).
  Round-robin keeps feeding the degraded replica — the worst case for
  tail latency and exactly the case hedged requests exist for. The same
  open-loop workload runs unhedged and hedged; the claim under test is
  the ISSUE's acceptance bar: **hedged p99 <= 0.5x unhedged p99 at equal
  goodput** (ratios in the ``summary`` block, gated by
  ``check_regression.py``).
* **cache** — a Zipf-repeated workload (hot keys drawn rank-weighted,
  cold keys unique) through a ``consistent_hash`` cluster with
  per-replica content-addressed caches, swept across repeat fractions,
  plus a cache-off control at the highest fraction. The claim: **>= 5x
  served-req/s on a >= 80%-repeated workload** via cache hits.
* **autoscaler** — a low/burst/cool load trace against a 1-replica
  cluster of sleep-based engines (capacity genuinely per-replica, even
  on one core) with a :class:`ClusterAutoscaler` attached. The decision
  log is emitted as the convergence trace; the claims: the burst forces
  **peak replicas >= 2** and the cool-down **returns to the floor**.

Emits ``BENCH_elastic.json`` at the repo root (committed baseline,
uploaded as a CI artifact). Run:

    PYTHONPATH=src python benchmarks/bench_elastic.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time
from dataclasses import dataclass
from pathlib import Path

from _common import REPO_ROOT, emit_json
from bench_cluster import DEGRADE_FACTOR, DegradedEngine, drive_open_loop
from bench_serving import percentile

from repro.engine import PurePythonEngine
from repro.engine.registry import create_engine
from repro.eval.reporting import format_table
from repro.serving import AlignmentCluster, ClusterAutoscaler
from repro.sequences.mutate import MutationProfile, mutate

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_elastic.json"


# ----------------------------------------------------------------------
# Shared workload machinery
# ----------------------------------------------------------------------
def build_pairs(
    count: int, read_length: int, error_rate: float, seed: int
) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    threshold = max(8, int(read_length * error_rate))
    pairs = []
    for _ in range(count):
        region = "".join(
            rng.choice("ACGT") for _ in range(read_length + threshold)
        )
        read = mutate(
            region[:read_length],
            MutationProfile(error_rate=error_rate),
            rng=rng,
        ).sequence
        pairs.append((region, read))
    return pairs


def zipf_workload(
    requests: int,
    repeat_fraction: float,
    *,
    hot_keys: int,
    read_length: int,
    error_rate: float,
    seed: int,
) -> list[tuple[str, str]]:
    """A request stream where ``repeat_fraction`` of requests re-ask a
    small hot set (rank-weighted, Zipf-style) and the rest are unique."""
    rng = random.Random(seed)
    hot = build_pairs(hot_keys, read_length, error_rate, seed + 1)
    cold = iter(build_pairs(requests, read_length, error_rate, seed + 2))
    weights = [1.0 / rank for rank in range(1, hot_keys + 1)]
    stream = []
    for _ in range(requests):
        if rng.random() < repeat_fraction:
            stream.append(rng.choices(hot, weights=weights, k=1)[0])
        else:
            stream.append(next(cold))
    return stream


# ----------------------------------------------------------------------
# Scenario 1: hedged vs unhedged with one degraded replica
# ----------------------------------------------------------------------
def run_hedge_config(
    workload_name: str,
    pairs: list[tuple[str, str]],
    k: int,
    *,
    hedged: bool,
    interarrival_ms: float,
    engine: str,
    batch_size: int,
    flush_ms: float,
    max_pending: int,
) -> dict:
    def engine_factory(index: int):
        inner = create_engine(engine)
        return DegradedEngine(inner) if index == 0 else inner

    async def main() -> dict:
        async with AlignmentCluster(
            replicas=2,
            engine_factory=engine_factory,
            policy="round_robin",
            hedge=hedged,
            min_hedge_delay=0.005,
            max_hedge_delay=0.05,
            batch_size=batch_size,
            flush_interval=flush_ms / 1e3,
            max_pending=max_pending,
        ) as cluster:
            measured = await drive_open_loop(
                cluster, pairs, k, interarrival_ms / 1e3
            )
            hedges, hedge_wins = cluster.hedges, cluster.hedge_wins
            cancelled = cluster.stats.cancelled
        return {
            "workload": workload_name,
            "scenario": "hedge",
            "replicas": 2,
            "policy": "round_robin",
            "hedged": hedged,
            "degraded": True,
            "engine": engine,
            "batch_size": batch_size,
            "flush_ms": flush_ms,
            "requests": len(pairs),
            "hedges": hedges,
            "hedge_wins": hedge_wins,
            "cancelled": cancelled,
            **measured,
        }

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Scenario 2: content-addressed cache on a Zipf-repeated workload
# ----------------------------------------------------------------------
def run_cache_config(
    workload_name: str,
    stream: list[tuple[str, str]],
    k: int,
    *,
    cache: bool,
    clients: int,
    batch_size: int,
    flush_ms: float,
) -> dict:
    async def main() -> dict:
        async with AlignmentCluster(
            replicas=2,
            engine="pure",
            policy="consistent_hash",
            cache=cache,
            batch_size=batch_size,
            flush_interval=flush_ms / 1e3,
        ) as cluster:
            queue: asyncio.Queue = asyncio.Queue()
            for pair in stream:
                queue.put_nowait(pair)
            latencies: list[float] = []

            async def client() -> int:
                served = 0
                while True:
                    try:
                        text, pattern = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return served
                    started = time.perf_counter()
                    await cluster.edit_distance(text, pattern, k)
                    latencies.append(time.perf_counter() - started)
                    served += 1

            started = time.perf_counter()
            counts = await asyncio.gather(
                *(client() for _ in range(clients))
            )
            elapsed = time.perf_counter() - started
            cache_stats = cluster.cache_stats
        return {
            "workload": workload_name,
            "scenario": "cache",
            "replicas": 2,
            "policy": "consistent_hash",
            "cache": cache,
            "requests": len(stream),
            "clients": clients,
            "batch_size": batch_size,
            "flush_ms": flush_ms,
            "seconds": elapsed,
            "ok": sum(counts),
            "goodput_per_sec": sum(counts) / elapsed,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
            "hit_rate": (
                cache_stats.hit_rate if cache_stats is not None else None
            ),
        }

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Scenario 3: autoscaler convergence under a load burst
# ----------------------------------------------------------------------
class SleepEngine(PurePythonEngine):
    """Engine whose cost is pure sleep per request.

    Replica capacity is then genuinely per-replica even on a single CPU
    core — each replica's worker thread sleeps independently — so the
    autoscaler's added replicas add real measurable capacity, which a
    CPU-bound engine on a one-core CI runner cannot show.
    """

    def __init__(self, per_request: float) -> None:
        self.per_request = per_request

    def edit_distance_batch(self, pairs, k, **kwargs):
        time.sleep(self.per_request * len(pairs))
        return super().edit_distance_batch(pairs, k, **kwargs)


def run_autoscaler_trace(
    workload_name: str,
    *,
    per_request_s: float,
    phases: list[tuple[float, float]],
    pairs: list[tuple[str, str]],
    k: int,
    max_replicas: int,
    settle_s: float,
) -> dict:
    """Drive low/burst/cool phases and record the autoscaler's trace.

    ``phases`` is ``[(duration_s, offered_per_sec), ...]``; requests
    cycle through ``pairs``. After the last phase the cluster idles for
    ``settle_s`` so scale-down decisions can complete.
    """

    async def main() -> dict:
        async with AlignmentCluster(
            replicas=1,
            engine_factory=lambda i: SleepEngine(per_request_s),
            policy="least_in_flight",
            batch_size=8,
            flush_interval=0.002,
            max_pending=32,
        ) as cluster:
            scaler = ClusterAutoscaler(
                cluster,
                min_replicas=1,
                max_replicas=max_replicas,
                interval=0.1,
                cooldown=0.4,
                target_p99_ms=250.0,
                shed_tolerance=0,
                scale_up_utilization=0.6,
                scale_down_utilization=0.1,
                utilization_smoothing=0.5,
                decision_log_size=256,
            )
            scaler.start()
            ok = 0
            shed = 0
            peak_live = 1
            pair_cycle = 0
            tasks: list[asyncio.Task] = []

            async def one(text: str, pattern: str) -> bool:
                try:
                    await cluster.edit_distance(text, pattern, k)
                except Exception:  # noqa: BLE001 - shed/failed both count
                    return False
                return True

            started = time.perf_counter()
            for duration, offered in phases:
                interarrival = 1.0 / offered
                phase_end = time.perf_counter() + duration
                while time.perf_counter() < phase_end:
                    text, pattern = pairs[pair_cycle % len(pairs)]
                    pair_cycle += 1
                    tasks.append(asyncio.create_task(one(text, pattern)))
                    peak_live = max(
                        peak_live,
                        sum(1 for r in cluster.replicas if r.live),
                    )
                    await asyncio.sleep(interarrival)
            outcomes = await asyncio.gather(*tasks)
            ok = sum(outcomes)
            shed = len(outcomes) - ok
            # Idle settle: let the autoscaler walk capacity back down.
            settle_end = time.perf_counter() + settle_s
            while time.perf_counter() < settle_end:
                await asyncio.sleep(0.05)
            elapsed = time.perf_counter() - started
            await scaler.stop()
            final_live = sum(1 for r in cluster.replicas if r.live)
            trace = [d.to_dict() for d in scaler.decisions]
            scale_ups, scale_downs = scaler.scale_ups, scaler.scale_downs
        return {
            "workload": workload_name,
            "scenario": "autoscaler",
            "replicas": max_replicas,
            "policy": "least_in_flight",
            "requests": len(outcomes),
            "ok": ok,
            "shed": shed,
            "seconds": elapsed,
            "goodput_per_sec": ok / elapsed,
            "peak_live_replicas": peak_live,
            "final_live_replicas": final_live,
            "scale_ups": scale_ups,
            "scale_downs": scale_downs,
            "trace": trace,
        }

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scale:
    """All the knobs that differ between full and smoke runs."""

    suffix: str
    hedge_requests: int
    hedge_interarrival_ms: float
    cache_requests: int
    cache_fractions: tuple[float, ...]
    burst_phases: list[tuple[float, float]]
    settle_s: float


FULL = Scale(
    suffix="",
    hedge_requests=240,
    hedge_interarrival_ms=6.0,
    cache_requests=600,
    cache_fractions=(0.0, 0.5, 0.9),
    burst_phases=[(1.0, 60.0), (2.0, 400.0), (1.0, 40.0)],
    settle_s=4.0,
)

SMOKE = Scale(
    suffix="_smoke",
    hedge_requests=60,
    hedge_interarrival_ms=6.0,
    cache_requests=150,
    cache_fractions=(0.0, 0.9),
    burst_phases=[(0.5, 60.0), (1.0, 400.0), (0.5, 40.0)],
    settle_s=2.5,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: fewer requests, shorter trace",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()
    scale = SMOKE if args.smoke else FULL
    results: list[dict] = []

    # --- hedging -------------------------------------------------------
    hedge_pairs = build_pairs(scale.hedge_requests, 64, 0.08, seed=0xE1)
    hedge_k = max(8, int(64 * 0.08))
    hedge_rows = {}
    for hedged in (False, True):
        row = run_hedge_config(
            f"tail{scale.suffix}",
            hedge_pairs,
            hedge_k,
            hedged=hedged,
            interarrival_ms=scale.hedge_interarrival_ms,
            engine="pure",
            batch_size=4,
            flush_ms=2.0,
            max_pending=512,
        )
        # hedged/unhedged are distinct configs of one workload; fold the
        # axis into the row identity the gate keys on.
        row["workload"] = row["workload"] + ("_hedged" if hedged else "_unhedged")
        hedge_rows[hedged] = row
        results.append(row)

    # --- cache ---------------------------------------------------------
    cache_rows = {}
    cache_k = max(8, int(150 * 0.10))
    for fraction in scale.cache_fractions:
        stream = zipf_workload(
            scale.cache_requests,
            fraction,
            hot_keys=8,
            read_length=150,
            error_rate=0.10,
            seed=0xE2,
        )
        for cache in ((True, False) if fraction == max(scale.cache_fractions) else (True,)):
            row = run_cache_config(
                f"zipf{int(fraction * 100):02d}{scale.suffix}"
                + ("" if cache else "_nocache"),
                stream,
                cache_k,
                cache=cache,
                clients=8,
                batch_size=8,
                flush_ms=2.0,
            )
            cache_rows[(fraction, cache)] = row
            results.append(row)

    # --- autoscaler ----------------------------------------------------
    scaler_pairs = build_pairs(64, 64, 0.08, seed=0xE3)
    scaler_row = run_autoscaler_trace(
        f"burst{scale.suffix}",
        per_request_s=0.004,
        phases=scale.burst_phases,
        pairs=scaler_pairs,
        k=hedge_k,
        max_replicas=4,
        settle_s=scale.settle_s,
    )
    results.append(scaler_row)

    # --- summary -------------------------------------------------------
    unhedged, hedged = hedge_rows[False], hedge_rows[True]
    top_fraction = max(scale.cache_fractions)
    cached = cache_rows[(top_fraction, True)]
    uncached = cache_rows[(top_fraction, False)]
    summary = {
        "degrade_factor": DEGRADE_FACTOR,
        "unhedged_p99_ms": unhedged["p99_ms"],
        "hedged_p99_ms": hedged["p99_ms"],
        "hedged_p99_vs_unhedged_p99": (
            hedged["p99_ms"] / unhedged["p99_ms"]
            if unhedged["p99_ms"]
            else None
        ),
        "hedged_vs_unhedged_goodput": (
            hedged["goodput_per_sec"] / unhedged["goodput_per_sec"]
            if unhedged["goodput_per_sec"]
            else None
        ),
        "cache_repeat_fraction": top_fraction,
        "cache_hit_rate": cached["hit_rate"],
        "cache_speedup_repeated": (
            cached["goodput_per_sec"] / uncached["goodput_per_sec"]
            if uncached["goodput_per_sec"]
            else None
        ),
        "autoscaler_peak_replicas": scaler_row["peak_live_replicas"],
        "autoscaler_final_replicas": scaler_row["final_live_replicas"],
        "autoscaler_scale_ups": scaler_row["scale_ups"],
        "autoscaler_scale_downs": scaler_row["scale_downs"],
    }

    emit_json(
        args.output,
        "elastic",
        {"smoke": args.smoke, "results": results, "summary": summary},
    )

    rows = [
        [
            r["workload"],
            r["scenario"],
            f"{r['goodput_per_sec']:,.0f}",
            r.get("ok", "-"),
            f"{r['p50_ms']:.1f}" if r.get("p50_ms") is not None else "-",
            f"{r['p99_ms']:.1f}" if r.get("p99_ms") is not None else "-",
        ]
        for r in results
    ]
    print(
        "\n"
        + format_table(
            ["workload", "scenario", "goodput/s", "ok", "p50 ms", "p99 ms"],
            rows,
            title="Elastic serving: hedging, cache, autoscaler",
        )
    )
    print(f"\nwrote {args.output}")
    print(
        f"hedged p99 {summary['hedged_p99_vs_unhedged_p99']:.3f}x unhedged "
        f"(goodput {summary['hedged_vs_unhedged_goodput']:.2f}x); "
        f"cache speedup {summary['cache_speedup_repeated']:.1f}x at "
        f"{top_fraction:.0%} repeats "
        f"(hit rate {summary['cache_hit_rate']:.2f}); "
        f"autoscaler peak {summary['autoscaler_peak_replicas']} -> "
        f"final {summary['autoscaler_final_replicas']} replicas"
    )


if __name__ == "__main__":
    main()
