"""Throughput benchmark: pure-Python vs NumPy-batched alignment engines.

Measures pairs/second for the batched hot paths —

* ``prefilter``   — :meth:`AlignmentEngine.scan_batch` with the filter's
  first-match early exit (the pre-alignment filtering workload);
* ``edit_distance`` — :meth:`AlignmentEngine.edit_distance_batch`, the full
  minimum-distance scan (the Figure 14 use-case workload);
* ``align`` — :meth:`GenAsmAligner.align_batch`, windowed DC + TB with
  batched bitvector generation (the read-alignment workload);
* ``traceback_dc`` / ``traceback_tb`` — the two halves of one window round
  timed separately (:meth:`AlignmentEngine.run_dc_windows` on the pairs'
  first windows, then :func:`traceback_window` over the produced windows),
  so a regression in either side of the DC→TB data path is attributable;

across read lengths, error rates, and batch sizes, for every available
backend — plus a dedicated long-read (10 kbp) ``align`` workload. Emits a
machine-readable ``BENCH_batch_engine.json`` at the repo root so the
performance trajectory is tracked across PRs (and gated by
``benchmarks/check_regression.py`` in CI); the rendered table goes to
stdout.

Run:  PYTHONPATH=src python benchmarks/bench_batch_engine.py [--smoke]
"""

from __future__ import annotations

import argparse
import random
import time
from pathlib import Path

from _common import REPO_ROOT, emit_json, emit_table

from repro.core.aligner import DEFAULT_OVERLAP, DEFAULT_WINDOW_SIZE, GenAsmAligner
from repro.core.genasm_tb import traceback_window
from repro.engine import available_engines, get_engine
from repro.sequences.mutate import MutationProfile, mutate

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_batch_engine.json"

#: The long-read workload: one PacBio/ONT-scale configuration, align-only
#: (scanning a 10 kbp pattern at a useful threshold is a different
#: benchmark; the aligner is what serves long reads in the pipeline).
LONG_READ_LENGTH = 10_000
LONG_READ_ERROR_RATE = 0.10
LONG_READ_BATCH = 8

#: Error-budget padding, mirroring the mapping pipeline's region sizing.
def _threshold(read_length: int, error_rate: float) -> int:
    return max(8, int(read_length * error_rate))


def build_pairs(
    count: int, read_length: int, error_rate: float, seed: int
) -> list[tuple[str, str]]:
    """(reference region, read) pairs shaped like pipeline candidates.

    Each region is ``m + k`` reference characters; the read is the region
    prefix with errors injected at ``error_rate``, so scans terminate the
    way they do on real accepted candidates.
    """
    rng = random.Random(seed)
    pad = _threshold(read_length, error_rate)
    pairs = []
    for _ in range(count):
        region = "".join(
            rng.choice("ACGT") for _ in range(read_length + pad)
        )
        read = mutate(
            region[:read_length], MutationProfile(error_rate=error_rate), rng=rng
        ).sequence
        pairs.append((region, read))
    return pairs


def time_task(task, *, repeats: int) -> float:
    """Best-of-``repeats`` wall time for ``task()`` (plus one warmup)."""
    task()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        task()
        best = min(best, time.perf_counter() - start)
    return best


def run_config(
    backend: str,
    pairs: list[tuple[str, str]],
    threshold: int,
    *,
    repeats: int,
) -> dict[str, float]:
    engine = get_engine(backend)
    aligner = GenAsmAligner(engine=engine)
    timings = {
        "prefilter": time_task(
            lambda: engine.scan_batch(pairs, threshold, first_match_only=True),
            repeats=repeats,
        ),
        "edit_distance": time_task(
            lambda: engine.edit_distance_batch(pairs, threshold),
            repeats=repeats,
        ),
        "align": time_task(
            lambda: aligner.align_batch(pairs), repeats=repeats
        ),
    }
    timings.update(run_traceback_split(engine, pairs, repeats=repeats))
    return timings


def run_traceback_split(
    engine, pairs: list[tuple[str, str]], *, repeats: int
) -> dict[str, float]:
    """Time the DC and TB halves of one window round separately.

    Uses each pair's *first* window (text/pattern prefixes of ``W``
    characters), the exact shape :meth:`GenAsmAligner.align_batch` submits
    every round, so the split mirrors the aligner's hot loop: future PRs
    can see whether the bitvector generation or the traceback walk
    regressed.
    """
    w = DEFAULT_WINDOW_SIZE
    consume_limit = DEFAULT_WINDOW_SIZE - DEFAULT_OVERLAP
    jobs = [(text[:w], pattern[:w]) for text, pattern in pairs if pattern]
    dc_seconds = time_task(
        lambda: engine.run_dc_windows(jobs), repeats=repeats
    )
    windows = engine.run_dc_windows(jobs)
    tb_seconds = time_task(
        lambda: [
            traceback_window(window, consume_limit=consume_limit)
            for window in windows
        ],
        repeats=repeats,
    )
    return {"traceback_dc": dc_seconds, "traceback_tb": tb_seconds}


def native_align_ratio(results: list[dict]) -> float | None:
    """Worst at-scale ``align`` / ``edit_distance`` ratio for ``"native"``.

    The compiled kernels exist to close the historical gap between the
    edit-distance scan (cheap) and full windowed alignment (previously
    ~40x slower in Python): for every (read_length, error_rate,
    batch >= 64) configuration measured with the native backend, compute
    align pairs/sec over edit_distance pairs/sec and return the minimum.
    ``None`` when no such configurations exist (extension not built, or
    smoke mode's tiny batch).
    """
    rate: dict[tuple, float] = {}
    for row in results:
        if row["backend"] == "native" and row["batch_size"] >= 64:
            key = (row["read_length"], row["error_rate"], row["batch_size"])
            rate[(row["task"], *key)] = row["pairs_per_sec"]
    ratios = [
        rate[("align", *key[1:])] / rate[key]
        for key in rate
        if key[0] == "edit_distance" and ("align", *key[1:]) in rate
    ]
    return min(ratios) if ratios else None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: one configuration, one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per task"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    if args.smoke:
        read_lengths = [64]
        error_rates = [0.10]
        batch_sizes = [8]
        repeats = 1
    else:
        read_lengths = [100, 150, 250]
        error_rates = [0.05, 0.15]
        batch_sizes = [64, 256]
        repeats = args.repeats

    backends = available_engines()
    results: list[dict] = []
    for read_length in read_lengths:
        for error_rate in error_rates:
            threshold = _threshold(read_length, error_rate)
            for batch_size in batch_sizes:
                pairs = build_pairs(
                    batch_size, read_length, error_rate, seed=0xC0FFEE
                )
                for backend in backends:
                    timings = run_config(
                        backend, pairs, threshold, repeats=repeats
                    )
                    for task, seconds in timings.items():
                        results.append(
                            {
                                "task": task,
                                "backend": backend,
                                "read_length": read_length,
                                "error_rate": error_rate,
                                "threshold": threshold,
                                "batch_size": batch_size,
                                "seconds": seconds,
                                "pairs_per_sec": batch_size / seconds,
                            }
                        )

    if not args.smoke:
        # Long-read workload: 10 kbp align only (hundreds of window rounds
        # per pair), one repeat past the warmup — each timing is seconds of
        # work already.
        long_pairs = build_pairs(
            LONG_READ_BATCH,
            LONG_READ_LENGTH,
            LONG_READ_ERROR_RATE,
            seed=0xC0FFEE,
        )
        for backend in backends:
            aligner = GenAsmAligner(engine=get_engine(backend))
            seconds = time_task(
                lambda: aligner.align_batch(long_pairs), repeats=1
            )
            results.append(
                {
                    "task": "align",
                    "backend": backend,
                    "read_length": LONG_READ_LENGTH,
                    "error_rate": LONG_READ_ERROR_RATE,
                    "threshold": _threshold(
                        LONG_READ_LENGTH, LONG_READ_ERROR_RATE
                    ),
                    "batch_size": LONG_READ_BATCH,
                    "seconds": seconds,
                    "pairs_per_sec": LONG_READ_BATCH / seconds,
                }
            )

    # Per-configuration speedup of every backend over "pure".
    pure_rate = {
        (r["task"], r["read_length"], r["error_rate"], r["batch_size"]): r[
            "pairs_per_sec"
        ]
        for r in results
        if r["backend"] == "pure"
    }
    speedups = []
    for r in results:
        if r["backend"] == "pure":
            continue
        key = (r["task"], r["read_length"], r["error_rate"], r["batch_size"])
        speedups.append(
            {
                "task": r["task"],
                "backend": r["backend"],
                "read_length": r["read_length"],
                "error_rate": r["error_rate"],
                "batch_size": r["batch_size"],
                "speedup_vs_pure": r["pairs_per_sec"] / pure_rate[key],
            }
        )
    at_scale = [s["speedup_vs_pure"] for s in speedups if s["batch_size"] >= 64]
    summary = {
        "backends": backends,
        "max_speedup_vs_pure": max(
            (s["speedup_vs_pure"] for s in speedups), default=None
        ),
        "max_speedup_at_batch_ge_64": max(at_scale, default=None),
        "configs_ge_3x_at_batch_ge_64": sum(1 for s in at_scale if s >= 3.0),
        # The native engine's acceptance bar: full windowed alignment keeps
        # pace with the single-pass edit-distance scan once batching
        # amortizes per-call overhead. Reported as the *worst* at-scale
        # align/edit_distance throughput ratio so the gate cannot be
        # carried by one lucky configuration; null when the extension is
        # not built or no batch >= 64 configs ran (smoke mode).
        "native_align_ratio": native_align_ratio(results),
    }

    emit_json(
        args.output,
        "batch_engine",
        {
            "smoke": args.smoke,
            "results": results,
            "speedups": speedups,
            "summary": summary,
        },
    )

    rows = [
        [
            r["task"],
            r["backend"],
            r["read_length"],
            f"{r['error_rate']:.2f}",
            r["batch_size"],
            f"{r['pairs_per_sec']:,.0f}",
        ]
        for r in results
    ]
    emit_table(
        "bench_batch_engine",
        ["task", "backend", "read len", "err", "batch", "pairs/s"],
        rows,
        title="Batched engine throughput (pure vs batched backends)",
    )
    print(f"\nwrote {args.output}")
    if summary["max_speedup_at_batch_ge_64"] is not None:
        print(
            "max speedup vs pure at batch >= 64: "
            f"{summary['max_speedup_at_batch_ge_64']:.1f}x "
            f"({summary['configs_ge_3x_at_batch_ge_64']} configs >= 3x)"
        )
    if summary["native_align_ratio"] is not None:
        print(
            "native align vs edit_distance at batch >= 64: "
            f"{summary['native_align_ratio']:.2f}x (worst configuration)"
        )


if __name__ == "__main__":
    main()
