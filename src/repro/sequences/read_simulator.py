"""Read simulators standing in for PBSIM, the ONT R9.0 profile, and Mason.

Section 9 of the paper generates:

* four long-read sets (PacBio CLR and ONT R9.0, 10 Kbp reads, 10% and 15%
  error rates, 240 000 reads each), and
* three short-read sets (Illumina 100/150/250 bp, 5% error rate,
  200 000 reads each).

The error-type mixes below follow the published profiles of those tools:
PBSIM's CLR default is insertion-heavy (sub:ins:del ≈ 1:6:3 at its default
ratio setting), ONT R9.0 errors are more uniform with a deletion lean, and
Illumina errors are overwhelmingly substitutions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sequences.alphabet import DNA
from repro.sequences.genome import Genome
from repro.sequences.mutate import MutationProfile, mutate


@dataclass(frozen=True)
class SimulatedRead:
    """A simulated read with its ground truth.

    Attributes
    ----------
    name:
        Unique read name (FASTQ-style).
    sequence:
        The (error-injected) read as sequenced.
    true_start:
        Start of the originating region in the reference.
    true_length:
        Length of the originating reference region (before errors).
    reverse:
        True if the read was drawn from the reverse strand.
    edit_count:
        Number of injected errors (ground truth for filter evaluation).
    """

    name: str
    sequence: str
    true_start: int
    true_length: int
    reverse: bool
    edit_count: int


def pacbio_clr_profile(error_rate: float = 0.15) -> MutationProfile:
    """PBSIM continuous-long-read default mix: insertion-dominated."""
    return MutationProfile(
        error_rate=error_rate,
        substitution_fraction=0.10,
        insertion_fraction=0.60,
        deletion_fraction=0.30,
    )


def ont_r9_profile(error_rate: float = 0.15) -> MutationProfile:
    """ONT R9.0 chemistry mix (Jain et al. 2017): deletion-leaning."""
    return MutationProfile(
        error_rate=error_rate,
        substitution_fraction=0.40,
        insertion_fraction=0.20,
        deletion_fraction=0.40,
    )


def illumina_profile(error_rate: float = 0.05) -> MutationProfile:
    """Illumina short-read mix: substitutions dominate."""
    return MutationProfile(
        error_rate=error_rate,
        substitution_fraction=0.94,
        insertion_fraction=0.03,
        deletion_fraction=0.03,
    )


def simulate_reads(
    genome: Genome,
    *,
    count: int,
    read_length: int,
    profile: MutationProfile,
    seed: int | None = None,
    both_strands: bool = True,
    name_prefix: str = "read",
) -> list[SimulatedRead]:
    """Draw ``count`` reads of ``read_length`` from ``genome`` with errors.

    Each read's originating region and injected edit count are recorded so
    experiments can score mapping and filtering against ground truth.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if read_length <= 0:
        raise ValueError("read_length must be positive")
    if read_length > len(genome):
        raise ValueError(
            f"read_length {read_length} exceeds genome length {len(genome)}"
        )

    rng = random.Random(seed)
    reads: list[SimulatedRead] = []
    max_start = len(genome) - read_length
    for i in range(count):
        start = rng.randint(0, max_start)
        fragment = genome.region(start, read_length)
        reverse = both_strands and rng.random() < 0.5
        if reverse:
            fragment = genome.alphabet.reverse_complement(fragment)
        result = mutate(fragment, profile, rng=rng, alphabet=genome.alphabet)
        reads.append(
            SimulatedRead(
                name=f"{name_prefix}_{i}",
                sequence=result.sequence,
                true_start=start,
                true_length=read_length,
                reverse=reverse,
                edit_count=result.edit_count,
            )
        )
    return reads


def simulate_pair(
    length: int,
    similarity: float,
    *,
    seed: int | None = None,
) -> tuple[str, str, int]:
    """Build one (reference, query, true_edits) pair at a target similarity.

    This backs the edit-distance use case datasets (Fig. 14) and the
    Shouji-style filter datasets (Section 10.3): a random sequence plus an
    artificially mutated copy.
    """
    rng = random.Random(seed)
    reference = "".join(rng.choice(DNA.symbols) for _ in range(length))
    profile = MutationProfile(error_rate=1.0 - similarity)
    result = mutate(reference, profile, rng=rng)
    return reference, result.sequence, result.edit_count
