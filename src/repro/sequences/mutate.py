"""Sequence mutation engine.

Generates the "edits" of Section 2.2 — substitutions, insertions, deletions —
at configurable rates and mixes. This single engine backs both the read
simulators (sequencing error injection) and the Edlib-style dataset builder
("artificially-mutated versions of the original DNA sequences with measures
of similarity ranging between 60%-99%", Section 9).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.sequences.alphabet import DNA, Alphabet


class EditKind(enum.Enum):
    """The three edit types of Figure 2, plus MATCH for bookkeeping."""

    MATCH = "M"
    SUBSTITUTION = "S"
    INSERTION = "I"
    DELETION = "D"


@dataclass(frozen=True)
class AppliedEdit:
    """One concrete edit applied during mutation.

    ``position`` indexes the *original* sequence at the point the edit was
    applied (for deletions, the deleted character; for insertions, the
    character before which the new one was inserted).
    """

    kind: EditKind
    position: int
    original: str
    replacement: str


@dataclass(frozen=True)
class MutationProfile:
    """Error/divergence model: overall rate plus the edit-type mix.

    Parameters
    ----------
    error_rate:
        Per-base probability that an edit happens at that base.
    substitution_fraction / insertion_fraction / deletion_fraction:
        Conditional mix of edit types; must sum to 1.
    """

    error_rate: float
    substitution_fraction: float = 1.0 / 3.0
    insertion_fraction: float = 1.0 / 3.0
    deletion_fraction: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        total = (
            self.substitution_fraction
            + self.insertion_fraction
            + self.deletion_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError("edit-type fractions must sum to 1")
        for frac in (
            self.substitution_fraction,
            self.insertion_fraction,
            self.deletion_fraction,
        ):
            if frac < 0:
                raise ValueError("edit-type fractions must be non-negative")


@dataclass(frozen=True)
class MutationResult:
    """Mutated sequence plus the ground-truth edit list."""

    sequence: str
    edits: tuple[AppliedEdit, ...]

    @property
    def edit_count(self) -> int:
        return len(self.edits)


def mutate(
    sequence: str,
    profile: MutationProfile,
    *,
    rng: random.Random | None = None,
    alphabet: Alphabet = DNA,
) -> MutationResult:
    """Apply random edits to ``sequence`` according to ``profile``.

    Substitutions always change the base (never a silent substitution), so
    ``profile.error_rate`` is an *actual* divergence rate, matching how PBSIM
    and Mason report their error rates.
    """
    if rng is None:
        rng = random.Random()
    symbols = alphabet.symbols

    out: list[str] = []
    edits: list[AppliedEdit] = []
    for pos, base in enumerate(sequence):
        if rng.random() >= profile.error_rate:
            out.append(base)
            continue
        roll = rng.random()
        if roll < profile.substitution_fraction:
            choices = [s for s in symbols if s != base]
            new = rng.choice(choices) if choices else base
            out.append(new)
            edits.append(AppliedEdit(EditKind.SUBSTITUTION, pos, base, new))
        elif roll < profile.substitution_fraction + profile.insertion_fraction:
            inserted = rng.choice(symbols)
            out.append(inserted)
            out.append(base)
            edits.append(AppliedEdit(EditKind.INSERTION, pos, "", inserted))
        else:
            edits.append(AppliedEdit(EditKind.DELETION, pos, base, ""))
    return MutationResult(sequence="".join(out), edits=tuple(edits))


def mutate_to_similarity(
    sequence: str,
    similarity: float,
    *,
    rng: random.Random | None = None,
    alphabet: Alphabet = DNA,
) -> MutationResult:
    """Mutate so the pair has roughly the requested similarity.

    ``similarity = 0.9`` yields ~10% divergence. Used by the Fig. 14 dataset
    builder which sweeps similarity from 60% to 99% as Edlib's dataset does.
    """
    if not 0.0 < similarity <= 1.0:
        raise ValueError("similarity must be within (0, 1]")
    profile = MutationProfile(error_rate=1.0 - similarity)
    return mutate(sequence, profile, rng=rng, alphabet=alphabet)
