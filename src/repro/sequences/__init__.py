"""Genomics substrate: alphabets, genomes, mutation, read simulation, I/O.

This subpackage provides everything GenASM's evaluation consumes that is not
part of the accelerator itself: sequence alphabets with 2-bit encoding
(Section 9 of the paper), synthetic reference genomes, a mutation engine, and
read simulators modelled on PBSIM (PacBio CLR), the ONT R9.0 error profile,
and Mason (Illumina short reads).
"""

from repro.sequences.alphabet import (
    AMINO_ACIDS,
    DNA,
    RNA,
    Alphabet,
)
from repro.sequences.genome import (
    Genome,
    GenomeShard,
    ShardedGenome,
    synthesize_genome,
)
from repro.sequences.io import (
    FastaRecord,
    FastqRecord,
    FastqStreamParser,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.sequences.mutate import (
    EditKind,
    MutationProfile,
    mutate,
)
from repro.sequences.read_simulator import (
    SimulatedRead,
    illumina_profile,
    ont_r9_profile,
    pacbio_clr_profile,
    simulate_reads,
)

__all__ = [
    "AMINO_ACIDS",
    "DNA",
    "RNA",
    "Alphabet",
    "EditKind",
    "FastaRecord",
    "FastqRecord",
    "FastqStreamParser",
    "Genome",
    "GenomeShard",
    "MutationProfile",
    "ShardedGenome",
    "SimulatedRead",
    "illumina_profile",
    "mutate",
    "ont_r9_profile",
    "pacbio_clr_profile",
    "read_fasta",
    "read_fastq",
    "simulate_reads",
    "synthesize_genome",
    "write_fasta",
    "write_fastq",
]
