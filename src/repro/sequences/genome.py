"""Synthetic reference genomes.

The paper evaluates against GRCh38 (Section 9). We cannot ship the human
genome, so this module synthesizes references with the two properties the
evaluation actually depends on:

* enough length/diversity that seeds resolve to a small number of candidate
  locations, and
* *repeated regions*, so that seeding produces several candidate mapping
  locations per read and the pre-alignment filter has dissimilar candidates
  to reject (the situation Figure 1 steps 1-2 exist for).

The substitution is recorded in DESIGN.md (Section 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class Genome:
    """A named reference sequence plus its alphabet.

    ``Genome`` is the object the mapping pipeline indexes and that GenASM
    reads reference windows from; it deliberately stays a thin immutable
    wrapper so it can stand in for any reference (synthetic or loaded from
    FASTA).
    """

    name: str
    sequence: str
    alphabet: Alphabet = field(default=DNA)

    def __post_init__(self) -> None:
        self.alphabet.validate(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)

    def region(self, start: int, length: int) -> str:
        """Return ``sequence[start : start+length]``, clamped to the ends.

        Clamping mirrors how a mapper handles candidate locations near the
        reference boundary: the region is simply shorter there.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        start = max(0, start)
        return self.sequence[start : start + length]

    def packed_size_bytes(self) -> int:
        """Size of the 2-bit-packed reference (Section 9: 715 MB for GRCh38)."""
        return self.alphabet.encoded_bytes(len(self.sequence))


def synthesize_genome(
    length: int,
    *,
    seed: int | None = None,
    gc_content: float = 0.41,
    repeat_fraction: float = 0.05,
    repeat_unit_length: int = 300,
    alphabet: Alphabet = DNA,
    name: str = "synthetic",
) -> Genome:
    """Create a random reference genome with embedded repeats.

    Parameters
    ----------
    length:
        Total genome length in bases.
    gc_content:
        Probability mass given to G+C (human-like default of 0.41).
    repeat_fraction:
        Fraction of the genome covered by copies of repeat units. Repeats
        are copied (with light divergence) to multiple loci so that k-mer
        seeding yields multiple candidate locations, as in real genomes.
    repeat_unit_length:
        Length of each repeat unit.
    """
    if length <= 0:
        raise ValueError("genome length must be positive")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be within [0, 1]")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be within [0, 1)")

    rng = random.Random(seed)
    if alphabet is DNA:
        weights = [
            (1 - gc_content) / 2,  # A
            gc_content / 2,  # C
            gc_content / 2,  # G
            (1 - gc_content) / 2,  # T
        ]
    else:
        weights = [1.0 / len(alphabet)] * len(alphabet)

    bases = rng.choices(alphabet.symbols, weights=weights, k=length)

    repeat_budget = int(length * repeat_fraction)
    unit_length = min(repeat_unit_length, max(1, length // 4))
    while repeat_budget >= unit_length and length > 2 * unit_length:
        src = rng.randrange(0, length - unit_length)
        unit = bases[src : src + unit_length]
        dst = rng.randrange(0, length - unit_length)
        copy = list(unit)
        # Lightly diverge the copy (1% substitutions) so repeats are
        # near-identical rather than exact, like real genomic repeats.
        for i in range(len(copy)):
            if rng.random() < 0.01:
                copy[i] = rng.choice(alphabet.symbols)
        bases[dst : dst + unit_length] = copy
        repeat_budget -= unit_length

    return Genome(name=name, sequence="".join(bases), alphabet=alphabet)
