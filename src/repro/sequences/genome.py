"""Synthetic reference genomes.

The paper evaluates against GRCh38 (Section 9). We cannot ship the human
genome, so this module synthesizes references with the two properties the
evaluation actually depends on:

* enough length/diversity that seeds resolve to a small number of candidate
  locations, and
* *repeated regions*, so that seeding produces several candidate mapping
  locations per read and the pre-alignment filter has dissimilar candidates
  to reject (the situation Figure 1 steps 1-2 exist for).

The substitution is recorded in DESIGN.md (Section 3).
"""

from __future__ import annotations

import json
import mmap
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.sequences.alphabet import DNA, Alphabet

if TYPE_CHECKING:
    from repro.sequences.io import FastaRecord

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass(frozen=True)
class Genome:
    """A named reference sequence plus its alphabet.

    ``Genome`` is the object the mapping pipeline indexes and that GenASM
    reads reference windows from; it deliberately stays a thin immutable
    wrapper so it can stand in for any reference (synthetic or loaded from
    FASTA).
    """

    name: str
    sequence: str
    alphabet: Alphabet = field(default=DNA)

    def __post_init__(self) -> None:
        self.alphabet.validate(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)

    def region(self, start: int, length: int) -> str:
        """Return ``sequence[start : start+length]``, clamped to the ends.

        Clamping mirrors how a mapper handles candidate locations near the
        reference boundary: the region is simply shorter there.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        start = max(0, start)
        return self.sequence[start : start + length]

    def packed_size_bytes(self) -> int:
        """Size of the 2-bit-packed reference (Section 9: 715 MB for GRCh38)."""
        return self.alphabet.encoded_bytes(len(self.sequence))


def synthesize_genome(
    length: int,
    *,
    seed: int | None = None,
    gc_content: float = 0.41,
    repeat_fraction: float = 0.05,
    repeat_unit_length: int = 300,
    alphabet: Alphabet = DNA,
    name: str = "synthetic",
) -> Genome:
    """Create a random reference genome with embedded repeats.

    Parameters
    ----------
    length:
        Total genome length in bases.
    gc_content:
        Probability mass given to G+C (human-like default of 0.41).
    repeat_fraction:
        Fraction of the genome covered by copies of repeat units. Repeats
        are copied (with light divergence) to multiple loci so that k-mer
        seeding yields multiple candidate locations, as in real genomes.
    repeat_unit_length:
        Length of each repeat unit.
    """
    if length <= 0:
        raise ValueError("genome length must be positive")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be within [0, 1]")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be within [0, 1)")

    rng = random.Random(seed)
    if alphabet is DNA:
        weights = [
            (1 - gc_content) / 2,  # A
            gc_content / 2,  # C
            gc_content / 2,  # G
            (1 - gc_content) / 2,  # T
        ]
    else:
        weights = [1.0 / len(alphabet)] * len(alphabet)

    bases = rng.choices(alphabet.symbols, weights=weights, k=length)

    repeat_budget = int(length * repeat_fraction)
    unit_length = min(repeat_unit_length, max(1, length // 4))
    while repeat_budget >= unit_length and length > 2 * unit_length:
        src = rng.randrange(0, length - unit_length)
        unit = bases[src : src + unit_length]
        dst = rng.randrange(0, length - unit_length)
        copy = list(unit)
        # Lightly diverge the copy (1% substitutions) so repeats are
        # near-identical rather than exact, like real genomic repeats.
        for i in range(len(copy)):
            if rng.random() < 0.01:
                copy[i] = rng.choice(alphabet.symbols)
        bases[dst : dst + unit_length] = copy
        repeat_budget -= unit_length

    return Genome(name=name, sequence="".join(bases), alphabet=alphabet)


# ---------------------------------------------------------------------------
# Shard-per-chromosome storage (2-bit-packed, memory-mapped)
# ---------------------------------------------------------------------------
#
# Section 9 stores the reference 2-bit packed (715 MB for GRCh38). A
# ``ShardedGenome`` persists each chromosome as one packed file plus a JSON
# manifest; ``GenomeShard`` exposes the ``Genome`` surface over a read-only
# mmap of that file and pickles as metadata only, so shipping a reference to
# a pool worker costs a path instead of a chromosome.

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-sharded-genome"
_MANIFEST_VERSION = 1

_DECODE_TABLES: dict[str, tuple[str, ...]] = {}


def _packable(alphabet: Alphabet) -> None:
    if len(alphabet.symbols) != 4 or alphabet.bits_per_symbol != 2:
        raise ValueError(
            f"sharded storage packs 2 bits per base; alphabet "
            f"{alphabet.name!r} has {len(alphabet.symbols)} symbols"
        )


def _decode_table(symbols: str) -> tuple[str, ...]:
    """256-entry table: packed byte -> its four decoded characters."""
    table = _DECODE_TABLES.get(symbols)
    if table is None:
        table = tuple(
            symbols[(b >> 6) & 3]
            + symbols[(b >> 4) & 3]
            + symbols[(b >> 2) & 3]
            + symbols[b & 3]
            for b in range(256)
        )
        _DECODE_TABLES[symbols] = table
    return table


def _pack_sequence(sequence: str, alphabet: Alphabet) -> bytes:
    """2-bit pack ``sequence``; wildcards pack as code 0 (spliced on decode)."""
    keys = alphabet.symbols
    values = bytes(range(4))
    if alphabet.wildcard is not None:
        keys += alphabet.wildcard
        values += b"\x00"
    codes = sequence.encode("ascii").translate(bytes.maketrans(keys.encode("ascii"), values))
    pad = -len(codes) % 4
    if pad:
        codes += b"\x00" * pad
    if _np is not None:
        quads = _np.frombuffer(codes, dtype=_np.uint8).reshape(-1, 4)
        packed = (
            (quads[:, 0] << 6) | (quads[:, 1] << 4) | (quads[:, 2] << 2) | quads[:, 3]
        )
        return packed.astype(_np.uint8).tobytes()
    out = bytearray(len(codes) // 4)
    for i in range(len(out)):
        j = 4 * i
        out[i] = (
            (codes[j] << 6) | (codes[j + 1] << 4) | (codes[j + 2] << 2) | codes[j + 3]
        )
    return bytes(out)


def _wildcard_runs(sequence: str, wildcard: str | None) -> list[list[int]]:
    """``[start, length]`` runs of the wildcard symbol, sorted by start."""
    if not wildcard:
        return []
    runs: list[list[int]] = []
    i = sequence.find(wildcard)
    while i != -1:
        j = i + 1
        while j < len(sequence) and sequence[j] == wildcard:
            j += 1
        runs.append([i, j - i])
        i = sequence.find(wildcard, j)
    return runs


class GenomeShard:
    """One chromosome of a :class:`ShardedGenome`.

    Implements the ``Genome`` surface (``name``, ``alphabet``, ``len()``,
    :meth:`region`, ``sequence``) by decoding windows out of a read-only
    memory map of the 2-bit-packed shard file. Wildcard (``N``) positions
    cannot pack in 2 bits, so they are carried as runs in the manifest and
    spliced back during decode.

    Shards pickle as metadata (directory, name, length, runs) — a few
    hundred bytes — and reopen the mmap lazily on first access, which is
    what makes :class:`~repro.mapping.pipeline.MapperSpec` IPC cheap.
    """

    #: Pickling this object ships paths, not sequence data.
    ipc_cheap = True

    def __init__(
        self,
        directory: str | Path,
        name: str,
        length: int,
        filename: str,
        wildcard_runs: list[list[int]] | None = None,
        alphabet: Alphabet = DNA,
    ) -> None:
        _packable(alphabet)
        self.directory = Path(directory)
        self.name = name
        self.alphabet = alphabet
        self._length = length
        self._filename = filename
        self._runs = [list(run) for run in (wildcard_runs or [])]
        self._mmap: mmap.mmap | None = None
        self._file = None

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GenomeShard(name={self.name!r}, length={self._length}, "
            f"path={self.path})"
        )

    @property
    def path(self) -> Path:
        return self.directory / self._filename

    @property
    def wildcard_runs(self) -> list[tuple[int, int]]:
        return [(start, length) for start, length in self._runs]

    def _data(self) -> mmap.mmap:
        if self._mmap is None:
            expected = (self._length + 3) // 4
            self._file = open(self.path, "rb")
            try:
                self._mmap = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError:
                # Zero-length file: mmap rejects it; only valid if empty.
                if expected:
                    self._file.close()
                    self._file = None
                    raise
                self._mmap = mmap.mmap(-1, 1)
            if expected and len(self._mmap) < expected:
                raise ValueError(
                    f"shard {self.path} holds {len(self._mmap)} bytes, "
                    f"expected {expected} for {self._length} bases"
                )
        return self._mmap

    def region(self, start: int, length: int) -> str:
        """Decode ``[start, start+length)``, clamped like :meth:`Genome.region`."""
        if length < 0:
            raise ValueError("length must be non-negative")
        start = max(0, start)
        end = min(start + length, self._length)
        if start >= end:
            return ""
        data = self._data()
        byte_lo = start // 4
        byte_hi = (end + 3) // 4
        table = _decode_table(self.alphabet.symbols)
        decoded = "".join(table[b] for b in data[byte_lo:byte_hi])
        offset = start - 4 * byte_lo
        text = decoded[offset : offset + (end - start)]
        if self._runs:
            wildcard = self.alphabet.wildcard
            chars: list[str] | None = None
            for run_start, run_length in self._runs:
                lo = max(run_start, start)
                hi = min(run_start + run_length, end)
                if lo < hi:
                    if chars is None:
                        chars = list(text)
                    for position in range(lo, hi):
                        chars[position - start] = wildcard
            if chars is not None:
                text = "".join(chars)
        return text

    @property
    def sequence(self) -> str:
        """The whole chromosome, decoded on every access (bind it once)."""
        return self.region(0, self._length)

    def packed_size_bytes(self) -> int:
        return self.alphabet.encoded_bytes(self._length)

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __getstate__(self) -> dict:
        return {
            "directory": str(self.directory),
            "name": self.name,
            "length": self._length,
            "filename": self._filename,
            "wildcard_runs": self._runs,
            "alphabet": (
                self.alphabet.name,
                self.alphabet.symbols,
                self.alphabet.wildcard,
            ),
        }

    def __setstate__(self, state: dict) -> None:
        name, symbols, wildcard = state["alphabet"]
        self.__init__(
            state["directory"],
            state["name"],
            state["length"],
            state["filename"],
            state["wildcard_runs"],
            _resolve_alphabet(name, symbols, wildcard),
        )


def _resolve_alphabet(name: str, symbols: str, wildcard: str | None) -> Alphabet:
    from repro.sequences.alphabet import RNA

    for known in (DNA, RNA):
        if known.symbols == symbols and known.wildcard == wildcard:
            return known
    return Alphabet(name, symbols, wildcard=wildcard)


def _shard_filename(index: int, name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)
    return f"{index:03d}_{safe or 'chromosome'}.2bit"


class ShardedGenome:
    """Shard-per-chromosome genome store backed by packed mmap files.

    ``write`` / ``from_fasta`` persist chromosomes one at a time (one
    ``.2bit`` file each plus :data:`MANIFEST_NAME`); ``open`` reads only
    the manifest, so opening GRCh38-scale references is O(chromosomes),
    not O(bases). ``len()`` is the chromosome count; ``total_length`` is
    the base count.
    """

    def __init__(self, directory: str | Path, shards: dict[str, GenomeShard]):
        self.directory = Path(directory)
        self._shards = dict(shards)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def chromosomes(self) -> tuple[str, ...]:
        return tuple(self._shards)

    @property
    def total_length(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self) -> Iterator[GenomeShard]:
        return iter(self._shards.values())

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def shard(self, name: str) -> GenomeShard:
        try:
            return self._shards[name]
        except KeyError:
            raise KeyError(
                f"no chromosome {name!r}; have {', '.join(self._shards) or 'none'}"
            ) from None

    __getitem__ = shard

    def reference_sequences(self) -> list[tuple[str, int]]:
        """``(name, length)`` pairs in manifest order, for SAM headers."""
        return [(shard.name, len(shard)) for shard in self._shards.values()]

    def packed_size_bytes(self) -> int:
        return sum(shard.packed_size_bytes() for shard in self._shards.values())

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()

    @classmethod
    def write(
        cls, genomes: Iterable[Genome], directory: str | Path
    ) -> "ShardedGenome":
        """Pack each genome as one shard under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        entries: list[dict] = []
        shards: dict[str, GenomeShard] = {}
        alphabet: Alphabet | None = None
        for index, genome in enumerate(genomes):
            _packable(genome.alphabet)
            if alphabet is None:
                alphabet = genome.alphabet
            elif genome.alphabet != alphabet:
                raise ValueError(
                    "all chromosomes in a ShardedGenome share one alphabet"
                )
            if genome.name in shards:
                raise ValueError(f"duplicate chromosome name {genome.name!r}")
            filename = _shard_filename(index, genome.name)
            sequence = genome.sequence
            (directory / filename).write_bytes(
                _pack_sequence(sequence, genome.alphabet)
            )
            runs = _wildcard_runs(sequence, genome.alphabet.wildcard)
            entries.append(
                {
                    "name": genome.name,
                    "length": len(sequence),
                    "file": filename,
                    "wildcard_runs": runs,
                }
            )
            shards[genome.name] = GenomeShard(
                directory, genome.name, len(sequence), filename, runs, genome.alphabet
            )
        if alphabet is None:
            raise ValueError("cannot write a ShardedGenome with no chromosomes")
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "alphabet": {
                "name": alphabet.name,
                "symbols": alphabet.symbols,
                "wildcard": alphabet.wildcard,
            },
            "chromosomes": entries,
        }
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="ascii"
        )
        return cls(directory, shards)

    @classmethod
    def from_fasta(
        cls,
        source: str | Path,
        directory: str | Path,
        *,
        alphabet: Alphabet = DNA,
    ) -> "ShardedGenome":
        """Shard a (possibly multi-contig) FASTA file, one record at a time."""
        from repro.sequences.io import iter_fasta

        def genomes() -> Iterator[Genome]:
            with open(source, "r", encoding="ascii") as handle:
                record: FastaRecord
                for record in iter_fasta(handle):
                    yield Genome(
                        name=record.name,
                        sequence=record.sequence,
                        alphabet=alphabet,
                    )

        return cls.write(genomes(), directory)

    @classmethod
    def open(cls, directory: str | Path) -> "ShardedGenome":
        """Open an existing store by reading only its manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no {MANIFEST_NAME} under {directory} — not a sharded genome"
            )
        manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(
                f"unrecognised manifest format {manifest.get('format')!r}"
            )
        spec = manifest["alphabet"]
        alphabet = _resolve_alphabet(
            spec["name"], spec["symbols"], spec.get("wildcard")
        )
        shards: dict[str, GenomeShard] = {}
        for entry in manifest["chromosomes"]:
            shards[entry["name"]] = GenomeShard(
                directory,
                entry["name"],
                entry["length"],
                entry["file"],
                entry.get("wildcard_runs", []),
                alphabet,
            )
        return cls(directory, shards)
