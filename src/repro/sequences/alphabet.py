"""Sequence alphabets and fixed-width binary encodings.

The paper encodes genome characters into 2-bit patterns (A=00, C=01, G=10,
T=11; Section 9) and notes that GenASM generalises to RNA, protein, and
arbitrary text alphabets by widening the pattern-bitmask table (Section 11).
This module provides that abstraction: an :class:`Alphabet` knows its symbol
set, the number of bits per encoded symbol, and how to round-trip sequences
through the packed integer encoding used by the hardware model's SRAM
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AlphabetError(ValueError):
    """Raised when a sequence contains symbols outside its alphabet."""


@dataclass(frozen=True)
class Alphabet:
    """An ordered symbol set with a fixed-width binary encoding.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"DNA"``.
    symbols:
        The ordered symbols; the encoding of ``symbols[i]`` is ``i``.
    wildcard:
        Optional symbol (e.g. ``"N"``) accepted on input and treated as
        mismatching every symbol, mirroring how read mappers treat ambiguous
        bases. It is *not* part of the packed encoding.
    """

    name: str
    symbols: str
    wildcard: str | None = None
    _index: dict[str, int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError(f"duplicate symbols in alphabet {self.name!r}")
        if self.wildcard is not None and self.wildcard in self.symbols:
            raise ValueError("wildcard must not be a regular symbol")
        object.__setattr__(
            self, "_index", {ch: i for i, ch in enumerate(self.symbols)}
        )

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index or symbol == self.wildcard

    @property
    def bits_per_symbol(self) -> int:
        """Bits needed to encode one symbol (2 for DNA, 5 for proteins)."""
        return max(1, (len(self.symbols) - 1).bit_length())

    def index(self, symbol: str) -> int:
        """Return the integer code of ``symbol``.

        The wildcard maps to ``len(self)``, a sentinel code outside the
        packed encoding that mismatches every pattern bitmask.
        """
        code = self._index.get(symbol)
        if code is not None:
            return code
        if symbol == self.wildcard:
            return len(self.symbols)
        raise AlphabetError(f"symbol {symbol!r} not in alphabet {self.name!r}")

    def validate(self, sequence: str) -> None:
        """Raise :class:`AlphabetError` if ``sequence`` has foreign symbols."""
        for ch in sequence:
            if ch not in self:
                raise AlphabetError(
                    f"symbol {ch!r} not in alphabet {self.name!r}"
                )

    def encode(self, sequence: str) -> int:
        """Pack ``sequence`` into an integer, first symbol in the high bits.

        This is the 2-bit encoding of Section 9 generalised to any symbol
        width. Wildcards cannot be packed and raise.
        """
        bits = self.bits_per_symbol
        value = 0
        for ch in sequence:
            code = self._index.get(ch)
            if code is None:
                raise AlphabetError(
                    f"cannot pack symbol {ch!r} in alphabet {self.name!r}"
                )
            value = (value << bits) | code
        return value

    def decode(self, value: int, length: int) -> str:
        """Inverse of :meth:`encode` for a sequence of ``length`` symbols."""
        bits = self.bits_per_symbol
        mask = (1 << bits) - 1
        out = []
        for i in range(length):
            shift = bits * (length - 1 - i)
            code = (value >> shift) & mask
            if code >= len(self.symbols):
                raise AlphabetError(f"code {code} out of range for {self.name!r}")
            out.append(self.symbols[code])
        return "".join(out)

    def encoded_bytes(self, length: int) -> int:
        """Storage in bytes for ``length`` packed symbols (ceil division)."""
        return (length * self.bits_per_symbol + 7) // 8

    def complement(self, sequence: str) -> str:
        """Complement for nucleic-acid alphabets; identity otherwise."""
        table = _COMPLEMENTS.get(self.name)
        if table is None:
            return sequence
        return sequence.translate(table)

    def reverse_complement(self, sequence: str) -> str:
        """Reverse complement (used when simulating reverse-strand reads)."""
        return self.complement(sequence)[::-1]


_COMPLEMENTS = {
    "DNA": str.maketrans("ACGTN", "TGCAN"),
    "RNA": str.maketrans("ACGUN", "UGCAN"),
}

#: The 4-symbol DNA alphabet with the paper's 2-bit encoding order.
DNA = Alphabet("DNA", "ACGT", wildcard="N")

#: RNA alphabet (Section 11, "special cases of general text search").
RNA = Alphabet("RNA", "ACGU", wildcard="N")

#: The 20 amino acids, in the order the paper lists them (Section 11).
AMINO_ACIDS = Alphabet("protein", "ARNDCQEGHILKMFPSTWYV", wildcard="X")
