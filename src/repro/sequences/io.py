"""Minimal FASTA/FASTQ readers and writers.

The mapping pipeline consumes references and reads; these helpers let the
examples and experiments persist datasets the way real tools exchange them.
Only the features the pipeline needs are implemented (multi-line FASTA,
4-line FASTQ) — by design, not omission.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: ``>name description`` plus a sequence."""

    name: str
    sequence: str
    description: str = ""


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ entry; ``quality`` is the Phred+33 string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.quality) != len(self.sequence):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length "
                f"{len(self.sequence)} for record {self.name!r}"
            )


def _as_text_handle(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    """Return (handle, should_close) for a path or an open handle."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def read_fasta(source: str | Path | TextIO) -> list[FastaRecord]:
    """Parse all records from a FASTA file or handle."""
    handle, should_close = _as_text_handle(source)
    try:
        return list(iter_fasta(handle))
    finally:
        if should_close:
            handle.close()


def iter_fasta(handle: TextIO) -> Iterator[FastaRecord]:
    """Stream FASTA records from an open handle."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for raw in handle:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks), description)
            header = line[1:].split(maxsplit=1)
            if not header:
                raise ValueError("FASTA header with no name")
            name = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA sequence data before any header")
            chunks.append(line.strip())
    if name is not None:
        yield FastaRecord(name, "".join(chunks), description)


def write_fasta(
    records: Iterable[FastaRecord],
    destination: str | Path | TextIO,
    *,
    line_width: int = 70,
) -> None:
    """Write records in wrapped FASTA format."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    handle, should_close = _as_writable_handle(destination)
    try:
        for record in records:
            header = f">{record.name}"
            if record.description:
                header = f"{header} {record.description}"
            handle.write(header + "\n")
            seq = record.sequence
            for i in range(0, len(seq), line_width):
                handle.write(seq[i : i + line_width] + "\n")
    finally:
        if should_close:
            handle.close()


def read_fastq(source: str | Path | TextIO) -> list[FastqRecord]:
    """Parse all records from a 4-line-per-record FASTQ file or handle."""
    handle, should_close = _as_text_handle(source)
    try:
        return list(iter_fastq(handle))
    finally:
        if should_close:
            handle.close()


def iter_fastq(handle: TextIO) -> Iterator[FastqRecord]:
    """Stream FASTQ records from an open handle."""
    while True:
        header = handle.readline()
        if not header:
            return
        header = header.rstrip("\n")
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"expected FASTQ header, got {header!r}")
        sequence = handle.readline().rstrip("\n")
        plus = handle.readline().rstrip("\n")
        quality = handle.readline().rstrip("\n")
        if not plus.startswith("+"):
            raise ValueError(f"expected FASTQ separator, got {plus!r}")
        yield FastqRecord(header[1:].split()[0], sequence, quality)


def write_fastq(
    records: Iterable[FastqRecord],
    destination: str | Path | TextIO,
) -> None:
    """Write records in 4-line FASTQ format."""
    handle, should_close = _as_writable_handle(destination)
    try:
        for record in records:
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")
    finally:
        if should_close:
            handle.close()


def _as_writable_handle(destination: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(destination, (str, Path)):
        return open(destination, "w", encoding="ascii"), True
    if isinstance(destination, io.TextIOBase) or hasattr(destination, "write"):
        return destination, False
    raise TypeError(f"cannot write to {destination!r}")
