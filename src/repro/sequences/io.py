"""Minimal FASTA/FASTQ readers and writers.

The mapping pipeline consumes references and reads; these helpers let the
examples and experiments persist datasets the way real tools exchange them.
Only the features the pipeline needs are implemented (multi-line FASTA,
4-line FASTQ) — by design, not omission.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: ``>name description`` plus a sequence."""

    name: str
    sequence: str
    description: str = ""


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ entry; ``quality`` is the Phred+33 string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.quality) != len(self.sequence):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length "
                f"{len(self.sequence)} for record {self.name!r}"
            )


def _as_text_handle(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    """Return (handle, should_close) for a path or an open handle."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def read_fasta(source: str | Path | TextIO) -> list[FastaRecord]:
    """Parse all records from a FASTA file or handle."""
    handle, should_close = _as_text_handle(source)
    try:
        return list(iter_fasta(handle))
    finally:
        if should_close:
            handle.close()


def iter_fasta(handle: TextIO) -> Iterator[FastaRecord]:
    """Stream FASTA records from an open handle."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for raw in handle:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks), description)
            header = line[1:].split(maxsplit=1)
            if not header:
                raise ValueError("FASTA header with no name")
            name = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA sequence data before any header")
            chunks.append(line.strip())
    if name is not None:
        yield FastaRecord(name, "".join(chunks), description)


def write_fasta(
    records: Iterable[FastaRecord],
    destination: str | Path | TextIO,
    *,
    line_width: int = 70,
) -> None:
    """Write records in wrapped FASTA format."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    handle, should_close = _as_writable_handle(destination)
    try:
        for record in records:
            header = f">{record.name}"
            if record.description:
                header = f"{header} {record.description}"
            handle.write(header + "\n")
            seq = record.sequence
            for i in range(0, len(seq), line_width):
                handle.write(seq[i : i + line_width] + "\n")
    finally:
        if should_close:
            handle.close()


def read_fastq(source: str | Path | TextIO) -> list[FastqRecord]:
    """Parse all records from a 4-line-per-record FASTQ file or handle."""
    handle, should_close = _as_text_handle(source)
    try:
        return list(iter_fastq(handle))
    finally:
        if should_close:
            handle.close()


_FASTQ_LINE_ROLES = ("header", "sequence", "'+' separator", "quality")


def _strip_eol(line: str) -> str:
    """Drop one trailing line ending: ``\\n``, ``\\r\\n``, or a bare ``\\r``.

    FASTQ written on Windows ends every line ``\\r\\n``; stripping only the
    ``\\n`` leaves the ``\\r`` on header, sequence, *and* quality (the
    length check then passes and carriage returns flow into mapped reads
    and SAM output). A bare trailing ``\\r`` appears when a CRLF file is
    cut mid-line-ending (stream flush / EOF truncation).
    """
    if line.endswith("\n"):
        line = line[:-1]
    if line.endswith("\r"):
        line = line[:-1]
    return line


def _fastq_record(index: int, lines: list[str]) -> FastqRecord:
    """Validate four lines as FASTQ record number ``index`` (1-based)."""
    header, sequence, plus, quality = lines
    if not header.startswith("@"):
        raise ValueError(
            f"FASTQ record {index}: expected header starting with '@', "
            f"got {header!r}"
        )
    fields = header[1:].split()
    if not fields:
        raise ValueError(
            f"FASTQ record {index}: header {header!r} has no read name"
        )
    if not plus.startswith("+"):
        raise ValueError(
            f"FASTQ record {index}: expected '+' separator, got {plus!r}"
        )
    if len(quality) != len(sequence):
        raise ValueError(
            f"FASTQ record {index} ({fields[0]!r}): quality length "
            f"{len(quality)} != sequence length {len(sequence)}"
        )
    return FastqRecord(fields[0], sequence, quality)


def _truncation_error(index: int, have: int) -> ValueError:
    return ValueError(
        f"truncated FASTQ: record {index} ended at EOF after {have} of 4 "
        f"lines (expected its {_FASTQ_LINE_ROLES[have]} line)"
    )


def iter_fastq(handle: TextIO) -> Iterator[FastqRecord]:
    """Stream FASTQ records from an open handle.

    Malformed input raises :class:`ValueError` naming the 1-based record
    index and what was expected — including nameless ``@`` headers and
    records truncated by EOF — rather than leaking an ``IndexError`` or
    misreporting truncation as a separator mismatch. Lines may end in
    ``\\n`` or ``\\r\\n`` (including a mix); blank lines between records
    are skipped whether they are empty, ``\\n``, or ``\\r\\n``.
    """
    index = 0
    while True:
        header = handle.readline()
        if not header:
            return
        if not _strip_eol(header):
            continue
        index += 1
        lines = [_strip_eol(header)]
        for _ in range(3):
            line = handle.readline()
            if not line:
                raise _truncation_error(index, len(lines))
            lines.append(_strip_eol(line))
        yield _fastq_record(index, lines)


class FastqStreamParser:
    """Incremental FASTQ parser over arbitrarily split text chunks.

    Feed pieces of a FASTQ stream as they arrive (chunk boundaries may
    fall anywhere, including mid-line); each :meth:`feed` returns the
    records completed by that chunk. Call :meth:`close` when the stream
    ends — it flushes a final unterminated line and raises the same
    truncation errors as :func:`iter_fastq` if a record is incomplete.
    """

    def __init__(self) -> None:
        self._tail = ""
        self._pending: list[str] = []
        self._records = 0
        self._closed = False

    @property
    def records_parsed(self) -> int:
        return self._records

    def _drain(self) -> list[FastqRecord]:
        out: list[FastqRecord] = []
        while len(self._pending) >= 4:
            self._records += 1
            out.append(_fastq_record(self._records, self._pending[:4]))
            del self._pending[:4]
        return out

    def feed(self, chunk: str) -> list[FastqRecord]:
        if self._closed:
            raise ValueError("cannot feed a closed FastqStreamParser")
        text = self._tail + chunk
        lines = text.split("\n")
        # The unterminated remainder waits for the next chunk — including a
        # lone "\r" when a chunk boundary splits a "\r\n" ending: only the
        # arrival of the "\n" proves the "\r" was part of the line ending
        # rather than the last character of the line.
        self._tail = lines.pop()
        for line in lines:
            if line.endswith("\r"):
                line = line[:-1]
            # Blank lines are tolerated between records, not inside one.
            if line or len(self._pending) % 4:
                self._pending.append(line)
        return self._drain()

    def close(self) -> list[FastqRecord]:
        """Flush the final (possibly unterminated) record."""
        if self._closed:
            return []
        self._closed = True
        if self._tail:
            tail = self._tail
            if tail.endswith("\r"):
                # Stream ended between the "\r" and "\n" of a CRLF ending.
                tail = tail[:-1]
            if tail or len(self._pending) % 4:
                self._pending.append(tail)
            self._tail = ""
        out = self._drain()
        if self._pending:
            raise _truncation_error(self._records + 1, len(self._pending))
        return out


def write_fastq(
    records: Iterable[FastqRecord],
    destination: str | Path | TextIO,
) -> None:
    """Write records in 4-line FASTQ format."""
    handle, should_close = _as_writable_handle(destination)
    try:
        for record in records:
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")
    finally:
        if should_close:
            handle.close()


def _as_writable_handle(destination: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(destination, (str, Path)):
        return open(destination, "w", encoding="ascii"), True
    if isinstance(destination, io.TextIOBase) or hasattr(destination, "write"):
        return destination, False
    raise TypeError(f"cannot write to {destination!r}")
