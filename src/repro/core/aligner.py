"""The GenASM aligner: divide-and-conquer DC + TB (Sections 4 and 6).

This is the paper's full execution loop (Figure 4 steps 3-7): the reference
region and query are processed in overlapping windows of ``W`` characters;
GenASM-DC generates each window's bitvectors, GenASM-TB consumes at most
``W - O`` characters of either sequence from them, and the per-window partial
traceback outputs are merged into the final CIGAR. The defaults
``W = 64, O = 24`` are the configuration the paper found optimal for both
performance and accuracy (Section 10.2).

Alignment semantics are *glocal*: the whole pattern is aligned, anchored at
the start of the given text region, with trailing text free. Read mapping
supplies a text region of length ``m + k`` starting at the candidate mapping
location, exactly as Section 6 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.cigar import Cigar
from repro.core.genasm_dc import WINDOW_REPRESENTATIONS
from repro.core.genasm_tb import TracebackError, traceback_window
from repro.core.scoring import ScoringScheme, TracebackConfig
from repro.engine.registry import get_engine
from repro.sequences.alphabet import DNA, Alphabet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.registry import AlignmentEngine

#: Window size the paper uses throughout the evaluation.
DEFAULT_WINDOW_SIZE = 64
#: Window overlap the paper uses ("the optimum (W, O) setting ... W=64, O=24").
DEFAULT_OVERLAP = 24


@dataclass(frozen=True)
class Alignment:
    """A completed GenASM alignment.

    Attributes
    ----------
    cigar:
        The merged traceback output.
    edit_distance:
        Total edits in the alignment (``cigar.edit_distance``).
    text_start:
        Offset within the supplied text where the alignment begins (non-zero
        only when the aligner was asked to locate the match first).
    text_consumed:
        Reference characters covered by the alignment from ``text_start``.
    """

    cigar: Cigar
    edit_distance: int
    text_start: int
    text_consumed: int

    def score(self, scheme: ScoringScheme) -> int:
        """Alignment score under ``scheme`` (used by the accuracy analysis)."""
        return self.cigar.score(scheme)


class GenAsmAligner:
    """Windowed GenASM aligner with configurable traceback priorities.

    Parameters
    ----------
    window_size, overlap:
        ``W`` and ``O`` of Algorithm 2. ``W - O`` characters are consumed
        per window; the remaining ``O`` are recomputed by the next window so
        the merged output stays accurate across window boundaries.
    config:
        Traceback priority order (affine-gap mimicry by default); build one
        from a scoring scheme with :meth:`TracebackConfig.from_scoring`.
    engine:
        Compute backend for the DC bitvector generation and Bitap scans — an
        :class:`~repro.engine.registry.AlignmentEngine` instance, a
        registered backend name (``"pure"``, ``"batched"``), or None for
        the process default (see :func:`repro.engine.get_engine`). Every
        backend is bit-identical; they differ only in throughput.
    window_representation:
        Window storage discipline handed to the engine's
        :meth:`run_dc_windows` — ``"sene"`` (default) keeps only the
        ``R[d]`` history and derives traceback edges on the fly (the fast
        path); ``"edges"`` keeps the legacy explicit match / insertion /
        deletion stores. Alignments are bit-identical either way.
    """

    def __init__(
        self,
        *,
        window_size: int = DEFAULT_WINDOW_SIZE,
        overlap: int = DEFAULT_OVERLAP,
        config: TracebackConfig | None = None,
        alphabet: Alphabet = DNA,
        engine: "AlignmentEngine | str | None" = None,
        window_representation: str = "sene",
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0 <= overlap < window_size:
            raise ValueError("overlap must satisfy 0 <= O < W")
        if window_representation not in WINDOW_REPRESENTATIONS:
            raise ValueError(
                f"unknown window representation {window_representation!r}; "
                f"expected one of {WINDOW_REPRESENTATIONS}"
            )
        self.window_size = window_size
        self.overlap = overlap
        self.config = config if config is not None else TracebackConfig()
        self.alphabet = alphabet
        self.engine = get_engine(engine)
        self.window_representation = window_representation

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def align(self, text: str, pattern: str) -> Alignment:
        """Align ``pattern`` against ``text``, anchored at ``text[0]``.

        The text should be the candidate reference region (length about
        ``m + k``); the full pattern is always consumed — if the text runs
        out first, the remaining pattern characters become insertions.
        """
        return self.align_batch([(text, pattern)])[0]

    def align_batch(
        self, pairs: Sequence[tuple[str, str]]
    ) -> list[Alignment]:
        """Align many (text, pattern) pairs, batching the DC hot loop.

        The window loops of all pairs advance in lockstep rounds: each round
        collects every still-active pair's current window and hands the
        whole set to the engine's :meth:`run_dc_windows` (one vectorized
        pass on the batched backend), then runs the cheap per-window
        traceback sequentially. Backends that fan out whole alignments
        (the sharded backend exposes an ``align_batch`` of its own, with the
        pair — not the window round — as the IPC unit) are delegated to
        instead. Output is bit-identical to calling :meth:`align` per pair,
        in input order.
        """
        pairs = [(text, pattern) for text, pattern in pairs]
        engine_align = getattr(self.engine, "align_batch", None)
        if engine_align is not None:
            return engine_align(
                pairs,
                alphabet=self.alphabet,
                window_size=self.window_size,
                overlap=self.overlap,
                config=self.config,
                window_representation=self.window_representation,
            )
        consume_limit = self.window_size - self.overlap
        cur_text = [0] * len(pairs)
        cur_pattern = [0] * len(pairs)
        parts: list[list[str]] = [[] for _ in pairs]
        pending = [idx for idx, (_, pattern) in enumerate(pairs) if pattern]

        while pending:
            jobs: list[tuple[str, str]] = []
            owners: list[int] = []
            for idx in pending:
                text, pattern = pairs[idx]
                sub_text = text[cur_text[idx] : cur_text[idx] + self.window_size]
                if not sub_text:
                    # Text exhausted: every remaining pattern character is
                    # an insertion relative to the reference.
                    parts[idx].append("I" * (len(pattern) - cur_pattern[idx]))
                    cur_pattern[idx] = len(pattern)
                    continue
                sub_pattern = pattern[
                    cur_pattern[idx] : cur_pattern[idx] + self.window_size
                ]
                jobs.append((sub_text, sub_pattern))
                owners.append(idx)
            windows = (
                self.engine.run_dc_windows(
                    jobs,
                    alphabet=self.alphabet,
                    representation=self.window_representation,
                )
                if jobs
                else []
            )
            pending = []
            for idx, window in zip(owners, windows):
                tb = traceback_window(
                    window, consume_limit=consume_limit, config=self.config
                )
                if tb.pattern_consumed == 0 and tb.text_consumed == 0:
                    raise TracebackError(
                        "window made no progress "
                        f"(curText={cur_text[idx]}, "
                        f"curPattern={cur_pattern[idx]})"
                    )
                parts[idx].append(tb.ops)
                cur_pattern[idx] += tb.pattern_consumed
                cur_text[idx] += tb.text_consumed
                if cur_text[idx] > len(pairs[idx][0]):
                    raise TracebackError(
                        "window consumed past the end of the text"
                    )
                if cur_pattern[idx] < len(pairs[idx][1]):
                    pending.append(idx)

        alignments: list[Alignment] = []
        for idx in range(len(pairs)):
            cigar = Cigar("".join(parts[idx]))
            alignments.append(
                Alignment(
                    cigar=cigar,
                    edit_distance=cigar.edit_distance,
                    text_start=0,
                    text_consumed=cur_text[idx],
                )
            )
        return alignments

    def align_located(
        self, text: str, pattern: str, k: int
    ) -> Alignment | None:
        """Locate the best match with DC, then trace it back (Section 4).

        Runs a full Bitap scan to find the start location with the minimum
        edit distance (GenASM-DC's "distance calculation" role), then aligns
        the pattern against the ``m + k``-long region starting there.
        Returns None when no location matches within ``k`` edits.
        """
        matches = self.engine.scan_batch(
            [(text, pattern)], k, alphabet=self.alphabet
        )[0]
        if not matches:
            return None
        best = min(matches, key=lambda match: (match.distance, match.start))
        region = text[best.start : best.start + len(pattern) + k]
        aligned = self.align(region, pattern)
        return Alignment(
            cigar=aligned.cigar,
            edit_distance=aligned.edit_distance,
            text_start=best.start,
            text_consumed=aligned.text_consumed,
        )


def genasm_align(
    text: str,
    pattern: str,
    *,
    window_size: int = DEFAULT_WINDOW_SIZE,
    overlap: int = DEFAULT_OVERLAP,
    scoring: ScoringScheme | None = None,
    alphabet: Alphabet = DNA,
    engine: "AlignmentEngine | str | None" = None,
    window_representation: str = "sene",
) -> Alignment:
    """One-shot convenience wrapper around :class:`GenAsmAligner`.

    When ``scoring`` is given, the traceback priority order is derived from
    it (Section 6's partial support for complex scoring schemes).
    """
    config = TracebackConfig.from_scoring(scoring) if scoring else None
    aligner = GenAsmAligner(
        window_size=window_size,
        overlap=overlap,
        config=config,
        alphabet=alphabet,
        engine=engine,
        window_representation=window_representation,
    )
    return aligner.align(text, pattern)
