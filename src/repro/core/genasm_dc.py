"""GenASM-DC: the modified Bitap kernel (Section 5).

GenASM-DC differs from baseline Bitap in what it *keeps*: besides the status
bitvectors ``R[d]``, it stores the per-iteration intermediate bitvectors that
GenASM-TB later walks — match, insertion, and deletion. The substitution
bitvector is never stored because it is recoverable as ``deletion << 1``
(Section 6, the optimization that cuts the TB-SRAM footprint from
``W·4·W·W`` to ``W·3·W·W`` bits).

Within the divide-and-conquer scheme, DC runs on one *window* at a time: a
sub-text and sub-pattern of at most ``W`` characters each (Algorithm 2 lines
3-5). The traceback starts from the window's text offset 0, so the quantity
a window DC must produce is the minimum ``d`` whose ``R[d]`` has a 0 MSB at
the *final* text iteration (``i = 0``).

The software implementation runs on Python integers; because the per-window
edit distance is usually far below the worst case, :func:`run_dc_window`
retries with a doubling error budget instead of always computing all
``W + 1`` distance rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitap import pattern_bitmasks
from repro.sequences.alphabet import DNA, Alphabet


class WindowUnalignableError(RuntimeError):
    """Raised when a window cannot be aligned within its maximum budget.

    With ``len(sub_text) >= 1`` this cannot happen for ``k = m`` (an
    all-substitution/insertion chain always exists); seeing this error
    indicates a bug or an empty window, both worth failing loudly over.
    """


@dataclass
class WindowBitvectors:
    """Everything GenASM-DC hands to GenASM-TB for one window.

    Attributes
    ----------
    text, pattern:
        The window's sub-text and sub-pattern.
    k:
        Number of error rows computed (bitvectors exist for ``d in [1, k]``).
    match, insertion, deletion:
        ``match[i][d]`` is the match intermediate bitvector computed at text
        iteration ``i`` for distance ``d``; likewise for insertion and
        deletion with ``d >= 1`` (index 0 is unused padding for those two).
        For ``d = 0`` the match bitvector *is* ``R[0]``.
    edit_distance:
        Minimum ``d`` with a 0 MSB at text iteration 0 — the window's
        traceback entry error count.
    """

    text: str
    pattern: str
    k: int
    match: list[list[int]]
    insertion: list[list[int]]
    deletion: list[list[int]]
    edit_distance: int

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @property
    def text_length(self) -> int:
        return len(self.text)

    def match_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the match bitvector at (textI, curError, patternI)."""
        return (self.match[text_index][distance] >> pattern_index) & 1

    def insertion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the insertion bitvector; 1 (no) when ``distance`` is 0."""
        if distance == 0:
            return 1
        return (self.insertion[text_index][distance] >> pattern_index) & 1

    def deletion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the deletion bitvector; 1 (no) when ``distance`` is 0."""
        if distance == 0:
            return 1
        return (self.deletion[text_index][distance] >> pattern_index) & 1

    def substitution_bit(
        self, text_index: int, distance: int, pattern_index: int
    ) -> int:
        """Substitution = deletion shifted left by one (Section 6).

        The shift feeds a 0 into the LSB, so a substitution consuming the
        final pattern character is always available once an error budget
        remains — the same behaviour the stored S bitvector would have had.
        """
        if distance == 0:
            return 1
        if pattern_index == 0:
            return 0
        return self.deletion_bit(text_index, distance, pattern_index - 1)

    def stored_bits(self) -> int:
        """Bits of TB-SRAM this window occupies (3 vectors per (i, d))."""
        m = self.pattern_length
        return self.text_length * 3 * self.k * m


def run_dc_window(
    text: str,
    pattern: str,
    *,
    alphabet: Alphabet = DNA,
    initial_budget: int = 8,
) -> WindowBitvectors:
    """Run GenASM-DC on one window, storing the traceback bitvectors.

    The error budget starts at ``initial_budget`` and doubles until the
    window aligns (``R[d]`` MSB 0 at text iteration 0) or the budget reaches
    the pattern length, which is always sufficient: every pattern character
    can be consumed by a substitution or insertion.
    """
    if not pattern:
        raise ValueError("window pattern must be non-empty")
    if not text:
        raise WindowUnalignableError("window text is empty")

    m = len(pattern)
    budget = min(max(1, initial_budget), m)
    while True:
        result = _dc_fixed_k(text, pattern, budget, alphabet)
        if result is not None:
            return result
        if budget >= m:
            raise WindowUnalignableError(
                f"window unalignable at k={budget} "
                f"(text {len(text)} chars, pattern {m} chars)"
            )
        budget = min(budget * 2, m)


def _dc_fixed_k(
    text: str,
    pattern: str,
    k: int,
    alphabet: Alphabet,
) -> WindowBitvectors | None:
    """One DC pass with a fixed error budget; None if the window misses."""
    m = len(pattern)
    n = len(text)
    masks = pattern_bitmasks(pattern, alphabet)
    all_ones = (1 << m) - 1
    msb_mask = 1 << (m - 1)

    match_store: list[list[int]] = [[all_ones] * (k + 1) for _ in range(n)]
    insertion_store: list[list[int]] = [[all_ones] * (k + 1) for _ in range(n)]
    deletion_store: list[list[int]] = [[all_ones] * (k + 1) for _ in range(n)]

    r = [all_ones] * (k + 1)
    for i in range(n - 1, -1, -1):
        cur_pm = masks.get(text[i], all_ones)
        old_r = r
        r = [0] * (k + 1)
        r[0] = ((old_r[0] << 1) | cur_pm) & all_ones
        match_store[i][0] = r[0]
        for d in range(1, k + 1):
            deletion = old_r[d - 1]
            substitution = (old_r[d - 1] << 1) & all_ones
            insertion = (r[d - 1] << 1) & all_ones
            match = ((old_r[d] << 1) | cur_pm) & all_ones
            r[d] = deletion & substitution & insertion & match
            match_store[i][d] = match
            insertion_store[i][d] = insertion
            deletion_store[i][d] = deletion

    for d in range(k + 1):
        if not r[d] & msb_mask:
            return WindowBitvectors(
                text=text,
                pattern=pattern,
                k=k,
                match=match_store,
                insertion=insertion_store,
                deletion=deletion_store,
                edit_distance=d,
            )
    return None
