"""GenASM-DC: the modified Bitap kernel (Section 5).

GenASM-DC differs from baseline Bitap in what it *keeps*: besides computing
the status bitvectors ``R[d]``, it preserves per-iteration state that
GenASM-TB later walks. Two storage disciplines are supported, selected with
the ``representation`` argument:

``"sene"`` (default) — *store entries, not edges*, after Scrooge
    (Lindegger et al., "Algorithmic Improvement and GPU Acceleration of the
    GenASM Algorithm"): only the ``R[d]`` history itself is stored — one
    bitvector per ``(iteration, distance)`` cell — and the traceback
    re-derives the match / substitution / insertion / deletion edges on the
    fly from adjacent ``R`` entries. This cuts the TB storage from
    ``W·3·W·W`` bits to ``(W+1)·(W+1)·W`` (~3x) and removes two of the
    three per-iteration stores from the DC loop.

``"edges"`` — the MICRO 2020 paper's hardware layout: the match, insertion,
    and deletion intermediate bitvectors are stored explicitly, and
    substitution is recovered as ``deletion << 1`` (Section 6, the
    optimization that already cut the TB-SRAM footprint from ``W·4·W·W`` to
    ``W·3·W·W`` bits). The hardware model keeps using this mode because it
    is what the paper's TB-SRAM sizing describes.

Both representations expose the same edge-query surface
(:meth:`edge_vectors` plus the per-bit accessors), so GenASM-TB is agnostic
to which one it walks and every backend stays bit-identical.

Within the divide-and-conquer scheme, DC runs on one *window* at a time: a
sub-text and sub-pattern of at most ``W`` characters each (Algorithm 2 lines
3-5). The traceback starts from the window's text offset 0, so the quantity
a window DC must produce is the minimum ``d`` whose ``R[d]`` has a 0 MSB at
the *final* text iteration (``i = 0``).

The software implementation runs on Python integers; because the per-window
edit distance is usually far below the worst case, :func:`run_dc_window`
retries with a doubling error budget instead of always computing all
``W + 1`` distance rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.bitap import pattern_bitmasks
from repro.sequences.alphabet import DNA, Alphabet

#: Valid values for the ``representation`` argument of the DC entry points.
WINDOW_REPRESENTATIONS = ("sene", "edges")


class WindowUnalignableError(RuntimeError):
    """Raised when a window cannot be aligned within its maximum budget.

    With ``len(sub_text) >= 1`` this cannot happen for ``k = m`` (an
    all-substitution/insertion chain always exists); seeing this error
    indicates a bug or an empty window, both worth failing loudly over.
    """


def _validate_representation(representation: str) -> None:
    if representation not in WINDOW_REPRESENTATIONS:
        raise ValueError(
            f"unknown window representation {representation!r}; "
            f"expected one of {WINDOW_REPRESENTATIONS}"
        )


@dataclass
class WindowBitvectors:
    """The ``"edges"`` representation: explicit M/I/D stores per iteration.

    Attributes
    ----------
    text, pattern:
        The window's sub-text and sub-pattern.
    k:
        Number of error rows computed (bitvectors exist for ``d in [1, k]``).
    match, insertion, deletion:
        ``match[i][d]`` is the match intermediate bitvector computed at text
        iteration ``i`` for distance ``d``; likewise for insertion and
        deletion with ``d >= 1`` (index 0 is unused padding for those two).
        For ``d = 0`` the match bitvector *is* ``R[0]``.
    edit_distance:
        Minimum ``d`` with a 0 MSB at text iteration 0 — the window's
        traceback entry error count.
    """

    text: str
    pattern: str
    k: int
    match: list[list[int]]
    insertion: list[list[int]]
    deletion: list[list[int]]
    edit_distance: int

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @property
    def text_length(self) -> int:
        return len(self.text)

    def match_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the match bitvector at (textI, curError, patternI)."""
        return (self.match[text_index][distance] >> pattern_index) & 1

    def insertion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the insertion bitvector; 1 (no) when ``distance`` is 0."""
        if distance == 0:
            return 1
        return (self.insertion[text_index][distance] >> pattern_index) & 1

    def deletion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        """Bit of the deletion bitvector; 1 (no) when ``distance`` is 0."""
        if distance == 0:
            return 1
        return (self.deletion[text_index][distance] >> pattern_index) & 1

    def substitution_bit(
        self, text_index: int, distance: int, pattern_index: int
    ) -> int:
        """Substitution = deletion shifted left by one (Section 6).

        The shift feeds a 0 into the LSB, so a substitution consuming the
        final pattern character is always available once an error budget
        remains — the same behaviour the stored S bitvector would have had.
        """
        if distance == 0:
            return 1
        if pattern_index == 0:
            return 0
        return self.deletion_bit(text_index, distance, pattern_index - 1)

    def edge_vectors(
        self, text_index: int, distance: int
    ) -> tuple[int, int, int, int]:
        """Whole ``(match, substitution, insertion, deletion)`` bitvectors.

        GenASM-TB's inner loop reads full vectors once per ``(i, d)`` cell
        and tests individual bits inline, instead of paying a method call
        per bit. At ``distance == 0`` the three error vectors read as
        all-ones ("no") like the per-bit accessors.
        """
        all_ones = (1 << len(self.pattern)) - 1
        match = self.match[text_index][distance]
        if distance == 0:
            return match, all_ones, all_ones, all_ones
        deletion = self.deletion[text_index][distance]
        return (
            match,
            (deletion << 1) & all_ones,
            self.insertion[text_index][distance],
            deletion,
        )

    def stored_bits(self) -> int:
        """Bits of TB-SRAM this window occupies (3 vectors per (i, d))."""
        m = self.pattern_length
        return self.text_length * 3 * self.k * m


class SeneEdgeDerivation:
    """Mixin: derive M/S/I/D edges on the fly from the ``R[d]`` history.

    Hosts need ``text``, ``pattern``, ``k``, and two accessors:
    ``_r_row(i)`` returning the ``k + 1`` ``R`` values *after* text
    iteration ``i`` (``i == text_length`` being the initial all-ones state)
    and ``_ensure_masks()`` returning the pattern's per-symbol bitmask
    table.

    The derivation inverts one recurrence step. With ``old = R`` after
    iteration ``i + 1`` and ``new = R`` after iteration ``i``:

    * ``match[i][d]       = (old[d] << 1) | PM(text[i])``
    * ``deletion[i][d]    = old[d - 1]``
    * ``substitution[i][d] = old[d - 1] << 1``
    * ``insertion[i][d]   = new[d - 1] << 1``

    so every edge GenASM-TB checks is two history reads and a shift away —
    nothing beyond ``R`` itself ever needs storing.
    """

    def edge_vectors(
        self, text_index: int, distance: int
    ) -> tuple[int, int, int, int]:
        """Whole ``(match, substitution, insertion, deletion)`` bitvectors."""
        all_ones = (1 << len(self.pattern)) - 1
        row_after = self._r_row(text_index + 1)
        match = ((row_after[distance] << 1) | self._text_mask(text_index)) & all_ones
        if distance == 0:
            return match, all_ones, all_ones, all_ones
        deletion = row_after[distance - 1]
        insertion = (self._r_row(text_index)[distance - 1] << 1) & all_ones
        return match, (deletion << 1) & all_ones, insertion, deletion

    def _text_mask(self, text_index: int) -> int:
        all_ones = (1 << len(self.pattern)) - 1
        return self._ensure_masks().get(self.text[text_index], all_ones)

    def text_masks(self, limit: int | None = None) -> list[int]:
        """Pattern bitmask per text character (the ``PM`` lookup, batched).

        GenASM-TB materializes this once per window so its inner loop can
        derive match vectors with plain list indexing. ``limit`` is a
        lower bound on how many leading entries the caller needs (a
        traceback bounded by ``consume_limit`` never looks past it);
        implementations may return more.
        """
        masks = self._ensure_masks()
        all_ones = (1 << len(self.pattern)) - 1
        text = self.text if limit is None else self.text[:limit]
        return [masks.get(ch, all_ones) for ch in text]

    # Per-bit accessors mirror WindowBitvectors' surface (used by tests and
    # the hardware model); the hot path goes through edge_vectors instead.
    def match_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        return (self.edge_vectors(text_index, distance)[0] >> pattern_index) & 1

    def substitution_bit(
        self, text_index: int, distance: int, pattern_index: int
    ) -> int:
        return (self.edge_vectors(text_index, distance)[1] >> pattern_index) & 1

    def insertion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        return (self.edge_vectors(text_index, distance)[2] >> pattern_index) & 1

    def deletion_bit(self, text_index: int, distance: int, pattern_index: int) -> int:
        return (self.edge_vectors(text_index, distance)[3] >> pattern_index) & 1

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @property
    def text_length(self) -> int:
        return len(self.text)

    def stored_bits(self) -> int:
        """Bits of TB storage under SENE: one vector per (i, d) cell.

        ``(n + 1) * (k + 1)`` stored ``R`` rows of ``m`` bits — the ~3x
        reduction over the ``n * 3 * k * m`` edge stores that motivates the
        representation.
        """
        return (self.text_length + 1) * (self.k + 1) * self.pattern_length


@dataclass
class SeneWindowBitvectors(SeneEdgeDerivation):
    """The ``"sene"`` representation: only the ``R[d]`` history is kept.

    Attributes
    ----------
    text, pattern:
        The window's sub-text and sub-pattern.
    k:
        Number of error rows computed.
    r:
        ``r[i][d]`` is ``R[d]`` *after* text iteration ``i`` (iterations run
        from ``n - 1`` down to 0); ``r[n]`` is the initial all-ones state.
        ``len(r) == text_length + 1``.
    edit_distance:
        Minimum ``d`` with a 0 MSB at text iteration 0.
    """

    text: str
    pattern: str
    k: int
    r: list[list[int]]
    edit_distance: int
    alphabet: Alphabet = field(default=DNA, repr=False, compare=False)
    _masks: dict[str, int] | None = field(
        default=None, repr=False, compare=False
    )

    def _r_row(self, text_index: int) -> list[int]:
        return self.r[text_index]

    def _ensure_masks(self) -> dict[str, int]:
        if self._masks is None:
            self._masks = pattern_bitmasks(self.pattern, self.alphabet)
        return self._masks

    def r_rows(self, limit: int | None = None) -> list[list[int]]:
        """The ``R`` history as Python ints (hot TB + parity hook).

        ``limit`` is a lower bound on the leading rows needed; the scalar
        history is already materialized, so it is always returned whole.
        """
        return self.r


class WindowData(Protocol):
    """Any window object GenASM-TB can trace.

    Implementations: :class:`WindowBitvectors` (edge stores),
    :class:`SeneWindowBitvectors` (scalar SENE), and the batched engine's
    :class:`~repro.engine.packing.PackedWindowBitvectors` (packed SENE).
    """

    text: str
    pattern: str
    k: int
    edit_distance: int

    @property
    def pattern_length(self) -> int: ...

    @property
    def text_length(self) -> int: ...

    def edge_vectors(
        self, text_index: int, distance: int
    ) -> tuple[int, int, int, int]: ...

    def stored_bits(self) -> int: ...


def run_dc_window(
    text: str,
    pattern: str,
    *,
    alphabet: Alphabet = DNA,
    initial_budget: int = 8,
    representation: str = "sene",
) -> WindowData:
    """Run GenASM-DC on one window, keeping the traceback state.

    The error budget starts at ``initial_budget`` and doubles until the
    window aligns (``R[d]`` MSB 0 at text iteration 0) or the budget reaches
    the pattern length, which is always sufficient: every pattern character
    can be consumed by a substitution or insertion.

    ``representation`` picks the storage discipline (module docstring):
    ``"sene"`` returns a :class:`SeneWindowBitvectors` holding only the
    ``R`` history; ``"edges"`` returns the classic
    :class:`WindowBitvectors` with explicit match/insertion/deletion stores.
    """
    _validate_representation(representation)
    if not pattern:
        raise ValueError("window pattern must be non-empty")
    if not text:
        raise WindowUnalignableError("window text is empty")

    m = len(pattern)
    budget = min(max(1, initial_budget), m)
    while True:
        result = _dc_fixed_k(text, pattern, budget, alphabet, representation)
        if result is not None:
            return result
        if budget >= m:
            raise WindowUnalignableError(
                f"window unalignable at k={budget} "
                f"(text {len(text)} chars, pattern {m} chars)"
            )
        budget = min(budget * 2, m)


def _dc_fixed_k(
    text: str,
    pattern: str,
    k: int,
    alphabet: Alphabet,
    representation: str,
) -> WindowData | None:
    """One DC pass with a fixed error budget; None if the window misses."""
    m = len(pattern)
    n = len(text)
    masks = pattern_bitmasks(pattern, alphabet)
    all_ones = (1 << m) - 1
    msb_mask = 1 << (m - 1)
    sene = representation == "sene"

    if sene:
        history: list[list[int] | None] = [None] * (n + 1)
        match_store = insertion_store = deletion_store = None
    else:
        history = None
        match_store = [[all_ones] * (k + 1) for _ in range(n)]
        insertion_store = [[all_ones] * (k + 1) for _ in range(n)]
        deletion_store = [[all_ones] * (k + 1) for _ in range(n)]

    r = [all_ones] * (k + 1)
    if sene:
        history[n] = r
    for i in range(n - 1, -1, -1):
        cur_pm = masks.get(text[i], all_ones)
        old_r = r
        r = [0] * (k + 1)
        r[0] = ((old_r[0] << 1) | cur_pm) & all_ones
        if not sene:
            match_store[i][0] = r[0]
        for d in range(1, k + 1):
            deletion = old_r[d - 1]
            substitution = (old_r[d - 1] << 1) & all_ones
            insertion = (r[d - 1] << 1) & all_ones
            match = ((old_r[d] << 1) | cur_pm) & all_ones
            r[d] = deletion & substitution & insertion & match
            if not sene:
                match_store[i][d] = match
                insertion_store[i][d] = insertion
                deletion_store[i][d] = deletion
        if sene:
            history[i] = r

    for d in range(k + 1):
        if not r[d] & msb_mask:
            if sene:
                return SeneWindowBitvectors(
                    text=text,
                    pattern=pattern,
                    k=k,
                    r=history,  # type: ignore[arg-type]
                    edit_distance=d,
                    alphabet=alphabet,
                    _masks=masks,
                )
            return WindowBitvectors(
                text=text,
                pattern=pattern,
                k=k,
                match=match_store,
                insertion=insertion_store,
                deletion=deletion_store,
                edit_distance=d,
            )
    return None
