"""GenASM core: the paper's primary contribution.

Exposes the modified Bitap distance calculation (GenASM-DC), the
Bitap-compatible traceback (GenASM-TB), the windowed divide-and-conquer
aligner, and the two derived use cases (pre-alignment filtering and edit
distance calculation).
"""

from repro.core.aligner import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    Alignment,
    GenAsmAligner,
    genasm_align,
)
from repro.core.bitap import (
    BitapMatch,
    bitap_edit_distance,
    bitap_scan,
    bitap_scan_multiword,
    pattern_bitmasks,
)
from repro.core.bitvector import MultiWordBitVector, words_needed
from repro.core.cigar import Cigar, concat_all
from repro.core.edit_distance import EditDistanceResult, genasm_edit_distance
from repro.core.genasm_dc import (
    WINDOW_REPRESENTATIONS,
    SeneWindowBitvectors,
    WindowBitvectors,
    WindowData,
    WindowUnalignableError,
    run_dc_window,
)
from repro.core.genasm_tb import TracebackError, WindowTraceback, traceback_window
from repro.core.prefilter import FilterDecision, GenAsmFilter
from repro.core.scoring import (
    DEFAULT_ORDER,
    ScoringScheme,
    TracebackCase,
    TracebackConfig,
)

__all__ = [
    "DEFAULT_ORDER",
    "DEFAULT_OVERLAP",
    "DEFAULT_WINDOW_SIZE",
    "Alignment",
    "BitapMatch",
    "Cigar",
    "EditDistanceResult",
    "FilterDecision",
    "GenAsmAligner",
    "GenAsmFilter",
    "MultiWordBitVector",
    "ScoringScheme",
    "TracebackCase",
    "TracebackConfig",
    "TracebackError",
    "WINDOW_REPRESENTATIONS",
    "SeneWindowBitvectors",
    "WindowBitvectors",
    "WindowData",
    "WindowTraceback",
    "WindowUnalignableError",
    "bitap_edit_distance",
    "bitap_scan",
    "bitap_scan_multiword",
    "concat_all",
    "genasm_align",
    "genasm_edit_distance",
    "pattern_bitmasks",
    "run_dc_window",
    "traceback_window",
    "words_needed",
]
