"""Scoring schemes and traceback-priority configuration.

GenASM-TB provides *partial* support for complex scoring (Section 6): it
cannot re-weight the DP itself (the underlying Bitap distance is unit-cost),
but it can (a) prioritize extending an open gap to mimic the affine gap
model, and (b) reorder the substitution / insertion-open / deletion-open
checks from lowest to highest penalty. This module captures both knobs, plus
the scoring schemes used in the accuracy analysis (Section 10.2): BWA-MEM's
defaults for short reads and Minimap2's for long reads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TracebackCase(enum.Enum):
    """The six cases Algorithm 2 checks, in its default order."""

    INSERTION_EXTEND = "insertion_extend"
    DELETION_EXTEND = "deletion_extend"
    MATCH = "match"
    SUBSTITUTION = "substitution"
    INSERTION_OPEN = "insertion_open"
    DELETION_OPEN = "deletion_open"


#: Algorithm 2's order (lines 13-24): gap extensions first (affine mimicry),
#: then match, then substitution before gap openings (unit-ish costs).
DEFAULT_ORDER: tuple[TracebackCase, ...] = (
    TracebackCase.INSERTION_EXTEND,
    TracebackCase.DELETION_EXTEND,
    TracebackCase.MATCH,
    TracebackCase.SUBSTITUTION,
    TracebackCase.INSERTION_OPEN,
    TracebackCase.DELETION_OPEN,
)


@dataclass(frozen=True)
class ScoringScheme:
    """An affine-gap scoring function (Section 2.2's user-defined scoring).

    All penalties are stored as the (negative) value added to the score, so
    a gap of length ``L`` contributes ``gap_open + L * gap_extend``.
    """

    match: int = 1
    substitution: int = -4
    gap_open: int = -6
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match < 0:
            raise ValueError("match score must be non-negative")
        for penalty in (self.substitution, self.gap_open, self.gap_extend):
            if penalty > 0:
                raise ValueError("penalties must be non-positive")

    @classmethod
    def bwa_mem(cls) -> "ScoringScheme":
        """BWA-MEM defaults used for short reads in Section 10.2."""
        return cls(match=1, substitution=-4, gap_open=-6, gap_extend=-1)

    @classmethod
    def minimap2(cls) -> "ScoringScheme":
        """Minimap2 defaults used for long reads in Section 10.2."""
        return cls(match=2, substitution=-4, gap_open=-4, gap_extend=-2)

    @classmethod
    def unit(cls) -> "ScoringScheme":
        """Unit-cost edit distance viewed as a score (match 0, edits -1)."""
        return cls(match=0, substitution=-1, gap_open=0, gap_extend=-1)

    def gap_cost(self, length: int) -> int:
        """Score contribution of one gap of ``length`` characters."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.gap_open + length * self.gap_extend


@dataclass(frozen=True)
class TracebackConfig:
    """Priority order GenASM-TB uses when several bitvectors show a 0.

    ``affine`` keeps the gap-extension checks ahead of everything else (the
    paper's affine-gap mimicry); with ``affine=False`` the extend cases are
    treated like their open counterparts, yielding pure unit-cost behaviour.
    """

    order: tuple[TracebackCase, ...] = DEFAULT_ORDER
    affine: bool = True

    def __post_init__(self) -> None:
        if set(self.order) != set(TracebackCase):
            raise ValueError("traceback order must contain each case exactly once")
        if len(self.order) != len(TracebackCase):
            raise ValueError("traceback order must not repeat cases")

    @classmethod
    def from_scoring(cls, scheme: ScoringScheme) -> "TracebackConfig":
        """Derive the check order from a scoring scheme (Section 6).

        Error cases are sorted from lowest penalty to highest: "if
        substitutions have a greater penalty than gap openings, we should
        check for the substitution case after checking the insertion-open
        and deletion-open cases."
        """
        open_penalty = scheme.gap_open + scheme.gap_extend
        if scheme.substitution >= open_penalty:
            error_cases = (
                TracebackCase.SUBSTITUTION,
                TracebackCase.INSERTION_OPEN,
                TracebackCase.DELETION_OPEN,
            )
        else:
            error_cases = (
                TracebackCase.INSERTION_OPEN,
                TracebackCase.DELETION_OPEN,
                TracebackCase.SUBSTITUTION,
            )
        order = (
            TracebackCase.INSERTION_EXTEND,
            TracebackCase.DELETION_EXTEND,
            TracebackCase.MATCH,
        ) + error_cases
        return cls(order=order, affine=True)
