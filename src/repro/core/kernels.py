"""Plain-int kernel ABI between the pure GenASM kernels and native code.

PR 3 shaped GenASM-TB as a precompiled opcode program over plain-int state
precisely so the inner loops could later be compiled. This module is that
boundary: it lowers the Python-level types (str sequences, Alphabet,
mask dicts, TracebackConfig programs) into the flat representation the
compiled extension ``repro.core._native`` consumes — byte strings of symbol
codes, packed little-endian uint64 mask rows, and opcode byte strings — and
lifts the results back into the exact objects the pure kernels produce.

Every entry point degrades gracefully: when the extension is not built, or
a particular call falls outside what the C kernels handle (patterns longer
than one 64-bit word for the window kernels, alphabets that cannot be coded
into bytes, non-latin-1 sequences), the wrappers return ``None`` and the
caller runs the pure path instead. Correctness therefore never depends on
the build; the extension is throughput only, and the conformance +
Hypothesis parity suites pin it bit-identical to the pure reference.

Encoding scheme (shared with ``_native.c``):

* alphabet symbols map to codes ``0 .. len(symbols) - 1`` in symbol order;
* the wildcard and every other non-symbol character map to the sentinel
  code ``len(symbols)``, whose mask row is all-ones ("matches nothing") —
  the same value ``masks.get(ch, all_ones)`` yields in the pure kernels;
* pattern characters outside the alphabet (wildcard excepted) cannot be
  coded at all — the pure kernels raise for those, so the wrappers fall
  back rather than replicate the raise lazily per window.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

from repro.core.bitap import BitapMatch, pattern_bitmasks
from repro.core.genasm_dc import SeneEdgeDerivation, WindowUnalignableError
from repro.core.genasm_tb import TracebackError, WindowTraceback
from repro.sequences.alphabet import DNA, Alphabet

try:  # pragma: no cover - exercised via native_available() in both states
    from repro.core import _native
except ImportError as exc:  # pragma: no cover
    _native = None  # type: ignore[assignment]
    _IMPORT_ERROR: str | None = str(exc)
else:  # pragma: no cover
    _IMPORT_ERROR = None

WORD_BITS = 64

#: Same starting error budget as AlignmentEngine.run_dc_windows' default,
#: so the native align loop retries budgets exactly like the generic loop.
DEFAULT_INITIAL_BUDGET = 8

#: Failure kinds align_pair reports (numerically matched with _native.c).
_STATUS_NO_PROGRESS = 1
_STATUS_PAST_END = 2
_STATUS_DEAD_END = 3
_STATUS_UNALIGNABLE = 4


def native_available() -> bool:
    """Whether the compiled extension imported successfully."""
    return _native is not None


def native_unavailable_reason() -> str | None:
    """Why :func:`native_available` is False (None when it is True)."""
    if _native is not None:
        return None
    return (
        "compiled extension repro.core._native is not built — run "
        "`python setup.py build_ext --inplace` (import failed: "
        f"{_IMPORT_ERROR})"
    )


# ----------------------------------------------------------------------
# Codec: str sequences -> byte strings of symbol codes
# ----------------------------------------------------------------------

@lru_cache(maxsize=16)
def _codec(alphabet: Alphabet) -> tuple[bytes, int] | None:
    """256-entry translate table and symbol count, or None if uncodable.

    The table maps each latin-1 byte to its symbol code; every byte that is
    not an alphabet symbol becomes the all-ones sentinel ``len(symbols)``.
    Alphabets with non-latin-1 symbols or more than 254 symbols cannot use
    the byte codec and take the pure path.
    """
    n_symbols = len(alphabet.symbols)
    if not 1 <= n_symbols <= 254:
        return None
    if any(ord(ch) > 255 for ch in alphabet.symbols):
        return None
    table = bytearray([n_symbols]) * 256
    for code, ch in enumerate(alphabet.symbols):
        table[ord(ch)] = code
    return bytes(table), n_symbols


@lru_cache(maxsize=16)
def _alphabet_chars(alphabet: Alphabet) -> frozenset[str]:
    chars = set(alphabet.symbols)
    if alphabet.wildcard is not None:
        chars.add(alphabet.wildcard)
    return frozenset(chars)


def _encode_text(text: str, table: bytes) -> bytes | None:
    """Text codes, or None when the text cannot ride the byte codec.

    Any character is legal in a text (unknown ones match nothing), so the
    only failure is a non-latin-1 character the table cannot index.
    """
    try:
        raw = text.encode("latin-1")
    except UnicodeEncodeError:
        return None
    return raw.translate(table)


def _encode_pattern(
    pattern: str, alphabet: Alphabet, table: bytes
) -> bytes | None:
    """Pattern codes, or None when the pure kernels must handle the pattern.

    Unlike texts, patterns reject characters outside the alphabet
    (``pattern_bitmasks`` raises); rather than replicate that raise at the
    exact window the pure aligner would reach, callers fall back to pure
    for the whole job when the pattern is not cleanly codable.
    """
    if not set(pattern) <= _alphabet_chars(alphabet):
        return None
    try:
        raw = pattern.encode("latin-1")
    except UnicodeEncodeError:  # pragma: no cover - subset check passed
        return None
    return raw.translate(table)


# ----------------------------------------------------------------------
# Bitap scan
# ----------------------------------------------------------------------

def native_scan(
    text: str,
    pattern: str,
    k: int,
    *,
    alphabet: Alphabet = DNA,
    first_match_only: bool = False,
) -> list[BitapMatch] | None:
    """Multiword Bitap scan in C; ``bitap_scan`` parity.

    Returns None when this pair cannot run natively (extension missing,
    uncodable alphabet or text) — the caller falls back to the pure scan.
    Raises exactly like the pure scan for invalid ``k`` or pattern.
    """
    if _native is None:
        return None
    codec = _codec(alphabet)
    if codec is None:
        return None
    if k < 0:
        raise ValueError("edit distance threshold k must be non-negative")
    table, n_symbols = codec
    masks = pattern_bitmasks(pattern, alphabet)  # raises like the pure scan
    text_codes = _encode_text(text, table)
    if text_codes is None:
        return None
    m = len(pattern)
    words = (m + WORD_BITS - 1) // WORD_BITS
    row_bytes = words * 8
    all_ones = (1 << m) - 1
    rows = bytearray()
    for symbol in alphabet.symbols:
        rows += masks[symbol].to_bytes(row_bytes, "little")
    rows += all_ones.to_bytes(row_bytes, "little")  # the sentinel row
    hits = _native.scan(
        text_codes, bytes(rows), n_symbols + 1, words, m, k,
        bool(first_match_only),
    )
    return [BitapMatch(start=start, distance=distance) for start, distance in hits]


# ----------------------------------------------------------------------
# GenASM-DC windows
# ----------------------------------------------------------------------

@dataclass
class NativeWindow(SeneEdgeDerivation):
    """A SENE window whose ``R`` history lives in the extension's packed bytes.

    ``history`` is ``(text_length + 1) * (k + 1)`` little-endian uint64s:
    row ``i`` is ``R`` after text iteration ``i`` and row ``text_length`` is
    the initial all-ones state — the same layout ``SeneWindowBitvectors.r``
    stores as nested lists. The traceback normally never unpacks it: the
    ``native_traceback`` hook walks the bytes directly in C. The lazy
    ``r_rows`` / ``_r_row`` accessors exist for the generic walk (fallback
    when the extension is absent after pickling) and for the parity suites
    that diff edge vectors against the reference representation.
    """

    text: str
    pattern: str
    k: int
    edit_distance: int
    history: bytes
    alphabet: Alphabet = field(default=DNA, repr=False, compare=False)
    _masks: dict[str, int] | None = field(
        default=None, repr=False, compare=False
    )
    _rows: list[list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    def _ensure_masks(self) -> dict[str, int]:
        if self._masks is None:
            self._masks = pattern_bitmasks(self.pattern, self.alphabet)
        return self._masks

    def _r_row(self, text_index: int) -> list[int]:
        return self._unpacked()[text_index]

    def r_rows(self, limit: int | None = None) -> list[list[int]]:
        """The ``R`` history as Python ints (generic-TB + parity hook)."""
        return self._unpacked()

    def _unpacked(self) -> list[list[int]]:
        if self._rows is None:
            kk = self.k + 1
            n_rows = len(self.text) + 1
            values = struct.unpack(f"<{n_rows * kk}Q", self.history)
            self._rows = [
                list(values[i * kk : (i + 1) * kk]) for i in range(n_rows)
            ]
        return self._rows

    def native_traceback(
        self, consume_limit: int, program: Sequence[int]
    ) -> WindowTraceback | None:
        """Walk the traceback in C; ``traceback_window`` dispatches here.

        Returns None when the walk cannot run natively (extension absent —
        e.g. this window was unpickled where the build is missing), letting
        the generic opcode loop take over on the unpacked history.
        """
        if _native is None:
            return None
        codec = _codec(self.alphabet)
        if codec is None:  # pragma: no cover - window came from this codec
            return None
        table, n_symbols = codec
        pattern_codes = _encode_pattern(self.pattern, self.alphabet, table)
        if pattern_codes is None:  # pragma: no cover - as above
            return None
        text_codes = _encode_text(self.text, table)
        if text_codes is None:  # pragma: no cover - as above
            return None
        ops, text_consumed, pattern_consumed, errors_used = _native.traceback(
            self.history, text_codes, pattern_codes, n_symbols, self.k,
            self.edit_distance, consume_limit, bytes(program),
        )
        if ops is None:
            raise TracebackError(
                f"traceback dead end at textI={text_consumed} "
                f"patternI={pattern_consumed} errors={errors_used}"
            )
        return WindowTraceback(
            ops=ops,
            text_consumed=text_consumed,
            pattern_consumed=pattern_consumed,
            errors_used=errors_used,
        )


def native_dc_window(
    text: str,
    pattern: str,
    *,
    alphabet: Alphabet = DNA,
    initial_budget: int = DEFAULT_INITIAL_BUDGET,
) -> NativeWindow | None:
    """Run GenASM-DC for one window in C; ``run_dc_window`` parity (SENE).

    Returns None when the window cannot run natively (extension missing,
    pattern longer than one word, uncodable alphabet/sequences) — the
    caller falls back to the pure kernel. Raises exactly like the pure
    kernel for empty inputs and unalignable windows.
    """
    if _native is None:
        return None
    if not pattern:
        raise ValueError("window pattern must be non-empty")
    if not text:
        raise WindowUnalignableError("window text is empty")
    m = len(pattern)
    if m > WORD_BITS:
        return None
    codec = _codec(alphabet)
    if codec is None:
        return None
    table, n_symbols = codec
    pattern_codes = _encode_pattern(pattern, alphabet, table)
    if pattern_codes is None:
        return None
    text_codes = _encode_text(text, table)
    if text_codes is None:
        return None
    result = _native.dc_window(
        text_codes, pattern_codes, n_symbols, initial_budget
    )
    if result is None:
        raise WindowUnalignableError(
            f"window unalignable at k={m} "
            f"(text {len(text)} chars, pattern {m} chars)"
        )
    edit_distance, k_used, history = result
    return NativeWindow(
        text=text,
        pattern=pattern,
        k=k_used,
        edit_distance=edit_distance,
        history=history,
        alphabet=alphabet,
    )


# ----------------------------------------------------------------------
# Whole-pair windowed align loop
# ----------------------------------------------------------------------

def native_align_pair(
    text: str,
    pattern: str,
    *,
    alphabet: Alphabet = DNA,
    window_size: int,
    overlap: int,
    program: Sequence[int],
    initial_budget: int = DEFAULT_INITIAL_BUDGET,
) -> tuple[str, int] | None:
    """Run the whole windowed DC + TB loop for one pair in C.

    Returns ``(expanded_cigar_ops, text_consumed)`` — the inputs
    ``GenAsmAligner.align_batch`` turns into an Alignment — or None when
    the pair cannot run natively (extension missing, window wider than one
    word, uncodable alphabet/sequences), in which case the caller must run
    the generic window loop. Raises the same exceptions with the same
    messages as the generic loop for no-progress / past-end / dead-end /
    unalignable windows.
    """
    if _native is None:
        return None
    if not pattern or window_size > WORD_BITS:
        return None
    codec = _codec(alphabet)
    if codec is None:
        return None
    table, n_symbols = codec
    pattern_codes = _encode_pattern(pattern, alphabet, table)
    if pattern_codes is None:
        return None
    text_codes = _encode_text(text, table)
    if text_codes is None:
        return None
    result = _native.align_pair(
        text_codes, pattern_codes, n_symbols, window_size, overlap,
        initial_budget, bytes(program),
    )
    if len(result) == 2:
        return result
    status, a, b, c = result
    if status == _STATUS_NO_PROGRESS:
        raise TracebackError(
            f"window made no progress (curText={a}, curPattern={b})"
        )
    if status == _STATUS_PAST_END:
        raise TracebackError("window consumed past the end of the text")
    if status == _STATUS_DEAD_END:
        raise TracebackError(
            f"traceback dead end at textI={a} patternI={b} errors={c}"
        )
    # _STATUS_UNALIGNABLE: reconstruct the failing window's dimensions the
    # way the generic loop sliced them (budget has reached the sub-pattern
    # length when run_dc_window gives up).
    sub_n = min(len(text) - a, window_size)
    sub_m = min(len(pattern) - b, window_size)
    raise WindowUnalignableError(
        f"window unalignable at k={sub_m} "
        f"(text {sub_n} chars, pattern {sub_m} chars)"
    )
