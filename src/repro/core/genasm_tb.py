"""GenASM-TB: the Bitap-compatible traceback (Algorithm 2, Section 6).

Starting from the MSB of the window's ``R[editDist]`` bitvector, the
traceback follows a chain of 0s toward the LSB, reverting the bitwise
operations that produced them:

* **match** — a 0 in the match bitvector consumes one text and one pattern
  character and keeps the error count (``<x, y, z> -> <x-1, y+1, z>``);
* **substitution** — consumes both and decrements the errors
  (``<x-1, y+1, z-1>``);
* **insertion** — the inserted character is absent from the text: consumes
  only a pattern character (``<x-1, y, z-1>``);
* **deletion** — the deleted character is absent from the pattern: consumes
  only a text character (``<x, y+1, z-1>``).

The priority among cases is configurable (:class:`TracebackConfig`); the
paper's default checks gap *extensions* first to mimic the affine gap model.

The chain-of-0s invariant (a 0 in ``R[d]`` guarantees a 0 in at least one
intermediate bitvector, whose reversal lands on another 0 of the appropriate
``R``) means a well-formed window can never dead-end; we still detect that
case and raise, because silently emitting a wrong alignment would be worse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.genasm_dc import WindowBitvectors
from repro.core.scoring import TracebackCase, TracebackConfig


class TracebackError(RuntimeError):
    """Raised if no traceback case applies — indicates a DC/TB bug."""


@dataclass(frozen=True)
class WindowTraceback:
    """Result of tracing one window.

    Attributes
    ----------
    ops:
        Expanded CIGAR characters for this window, in alignment order.
    text_consumed, pattern_consumed:
        How far the window advanced each sequence (Algorithm 2 lines 31-32
        use these to position the next window).
    errors_used:
        Edits consumed in this window (its contribution to the total
        edit distance).
    """

    ops: str
    text_consumed: int
    pattern_consumed: int
    errors_used: int


def traceback_window(
    window: WindowBitvectors,
    *,
    consume_limit: int,
    config: TracebackConfig | None = None,
) -> WindowTraceback:
    """Run Algorithm 2's inner loop on one window.

    Parameters
    ----------
    consume_limit:
        ``W - O``: the traceback stops once this many characters of either
        sequence are consumed, so consecutive windows overlap by ``O``
        characters and the merged output stays accurate (Section 6).
    config:
        Case priority order; defaults to the paper's Algorithm 2 order.
    """
    if consume_limit <= 0:
        raise ValueError("consume_limit must be positive")
    if config is None:
        config = TracebackConfig()

    m = window.pattern_length
    n = window.text_length
    pattern_index = m - 1
    text_index = 0
    cur_error = window.edit_distance
    text_consumed = 0
    pattern_consumed = 0
    errors_used = 0
    prev = ""
    ops: list[str] = []

    while text_consumed < consume_limit and pattern_consumed < consume_limit:
        if pattern_index < 0 or text_index >= n:
            break
        case = _pick_case(window, config, text_index, cur_error, pattern_index, prev)
        if case is None:
            raise TracebackError(
                f"traceback dead end at textI={text_index} "
                f"patternI={pattern_index} errors={cur_error}"
            )
        if case is TracebackCase.MATCH:
            ops.append("M")
            prev = "M"
            text_index += 1
            text_consumed += 1
            pattern_index -= 1
            pattern_consumed += 1
        elif case is TracebackCase.SUBSTITUTION:
            ops.append("S")
            prev = "S"
            cur_error -= 1
            errors_used += 1
            text_index += 1
            text_consumed += 1
            pattern_index -= 1
            pattern_consumed += 1
        elif case in (TracebackCase.INSERTION_OPEN, TracebackCase.INSERTION_EXTEND):
            ops.append("I")
            prev = "I"
            cur_error -= 1
            errors_used += 1
            pattern_index -= 1
            pattern_consumed += 1
        else:  # deletion open / extend
            ops.append("D")
            prev = "D"
            cur_error -= 1
            errors_used += 1
            text_index += 1
            text_consumed += 1

    return WindowTraceback(
        ops="".join(ops),
        text_consumed=text_consumed,
        pattern_consumed=pattern_consumed,
        errors_used=errors_used,
    )


def _pick_case(
    window: WindowBitvectors,
    config: TracebackConfig,
    text_index: int,
    cur_error: int,
    pattern_index: int,
    prev: str,
) -> TracebackCase | None:
    """First case in priority order whose bitvector shows a 0 here."""
    for case in config.order:
        if case is TracebackCase.MATCH:
            if window.match_bit(text_index, cur_error, pattern_index) == 0:
                return case
            continue
        if cur_error <= 0:
            continue  # error cases need budget remaining
        if case is TracebackCase.INSERTION_EXTEND:
            if not config.affine or prev != "I":
                continue
            if window.insertion_bit(text_index, cur_error, pattern_index) == 0:
                return case
        elif case is TracebackCase.DELETION_EXTEND:
            if not config.affine or prev != "D":
                continue
            if window.deletion_bit(text_index, cur_error, pattern_index) == 0:
                return case
        elif case is TracebackCase.SUBSTITUTION:
            if window.substitution_bit(text_index, cur_error, pattern_index) == 0:
                return case
        elif case is TracebackCase.INSERTION_OPEN:
            if window.insertion_bit(text_index, cur_error, pattern_index) == 0:
                return case
        elif case is TracebackCase.DELETION_OPEN:
            if window.deletion_bit(text_index, cur_error, pattern_index) == 0:
                return case
    return None
