"""GenASM-TB: the Bitap-compatible traceback (Algorithm 2, Section 6).

Starting from the MSB of the window's ``R[editDist]`` bitvector, the
traceback follows a chain of 0s toward the LSB, reverting the bitwise
operations that produced them:

* **match** — a 0 in the match bitvector consumes one text and one pattern
  character and keeps the error count (``<x, y, z> -> <x-1, y+1, z>``);
* **substitution** — consumes both and decrements the errors
  (``<x-1, y+1, z-1>``);
* **insertion** — the inserted character is absent from the text: consumes
  only a pattern character (``<x-1, y, z-1>``);
* **deletion** — the deleted character is absent from the pattern: consumes
  only a text character (``<x, y+1, z-1>``).

The priority among cases is configurable (:class:`TracebackConfig`); the
paper's default checks gap *extensions* first to mimic the affine gap model.

The inner loop is representation-agnostic and allocation-light: the case
priority order is precompiled once per config into a tuple of integer
opcodes (cached), the window's state is pulled into plain Python lists once
up front (the SENE ``R`` history plus per-text pattern masks, or the legacy
explicit edge stores), whole ``(M, S, I, D)`` bitvectors for the current
``(text iteration, error count)`` cell are derived inline with a couple of
shifts, and every case check is a single AND against the current
pattern-position bit. No per-bit (or even per-step) dataclass method calls
survive on the hot path; the windows' ``edge_vectors`` accessor remains the
cold-path / parity surface.

The chain-of-0s invariant (a 0 in ``R[d]`` guarantees a 0 in at least one
intermediate bitvector, whose reversal lands on another 0 of the appropriate
``R``) means a well-formed window can never dead-end; we still detect that
case and raise, because silently emitting a wrong alignment would be worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.genasm_dc import WindowData
from repro.core.scoring import TracebackCase, TracebackConfig

#: Integer opcodes the compiled priority program dispatches on.
_MATCH = 0
_SUBSTITUTION = 1
_INSERTION_OPEN = 2
_DELETION_OPEN = 3
_INSERTION_EXTEND = 4
_DELETION_EXTEND = 5

_CASE_OPCODE = {
    TracebackCase.MATCH: _MATCH,
    TracebackCase.SUBSTITUTION: _SUBSTITUTION,
    TracebackCase.INSERTION_OPEN: _INSERTION_OPEN,
    TracebackCase.DELETION_OPEN: _DELETION_OPEN,
    TracebackCase.INSERTION_EXTEND: _INSERTION_EXTEND,
    TracebackCase.DELETION_EXTEND: _DELETION_EXTEND,
}


class TracebackError(RuntimeError):
    """Raised if no traceback case applies — indicates a DC/TB bug."""


@dataclass(frozen=True)
class WindowTraceback:
    """Result of tracing one window.

    Attributes
    ----------
    ops:
        Expanded CIGAR characters for this window, in alignment order.
    text_consumed, pattern_consumed:
        How far the window advanced each sequence (Algorithm 2 lines 31-32
        use these to position the next window).
    errors_used:
        Edits consumed in this window (its contribution to the total
        edit distance).
    """

    ops: str
    text_consumed: int
    pattern_consumed: int
    errors_used: int


@lru_cache(maxsize=64)
def _compile_order(
    order: tuple[TracebackCase, ...], affine: bool
) -> tuple[int, ...]:
    """Lower a config's case priority into a tuple of integer opcodes.

    With ``affine=False`` the gap-extension entries vanish from the program
    entirely (the open entries later in the order cover those cells), which
    matches the previous behaviour of skipping them per step — just decided
    once instead of per iteration.
    """
    program = []
    for case in order:
        if not affine and case in (
            TracebackCase.INSERTION_EXTEND,
            TracebackCase.DELETION_EXTEND,
        ):
            continue
        program.append(_CASE_OPCODE[case])
    return tuple(program)


def traceback_window(
    window: WindowData,
    *,
    consume_limit: int,
    config: TracebackConfig | None = None,
) -> WindowTraceback:
    """Run Algorithm 2's inner loop on one window.

    Parameters
    ----------
    window:
        Any window representation exposing ``edge_vectors`` — the scalar
        SENE or edge-store windows from :mod:`repro.core.genasm_dc`, or the
        packed uint64 windows the batched engine produces.
    consume_limit:
        ``W - O``: the traceback stops once this many characters of either
        sequence are consumed, so consecutive windows overlap by ``O``
        characters and the merged output stays accurate (Section 6).
    config:
        Case priority order; defaults to the paper's Algorithm 2 order.
    """
    if consume_limit <= 0:
        raise ValueError("consume_limit must be positive")
    if config is None:
        config = TracebackConfig()
    program = _compile_order(config.order, config.affine)

    # Windows that carry a compiled walk (the native engine's packed-history
    # windows) run the opcode program in C; a None return means the native
    # path cannot take this window and the generic loop below applies.
    native = getattr(window, "native_traceback", None)
    if native is not None:
        result = native(consume_limit, program)
        if result is not None:
            return result

    m = window.pattern_length
    n = window.text_length
    all_ones = (1 << m) - 1

    # Materialize the window state as plain Python lists up front, so the
    # step loop below is nothing but int ops and list indexing. SENE-style
    # windows (scalar or packed) hand over their R history and per-text
    # pattern masks; the legacy representation hands over its three edge
    # stores and the loop reads them directly instead of deriving.
    r_rows = getattr(window, "r_rows", None)
    if r_rows is not None:
        sene = True
        # Every step that advances text_index also consumes a text
        # character, so a consume-limited trace never reads history rows
        # past consume_limit + 1 (nor text masks past consume_limit).
        limit = min(n, consume_limit) + 2
        r = r_rows(limit)
        pms = window.text_masks(limit - 1)
        match_store = insertion_store = deletion_store = None
    else:
        sene = False
        r = pms = None
        match_store = window.match
        insertion_store = window.insertion
        deletion_store = window.deletion

    pattern_index = m - 1
    pattern_bit = 1 << pattern_index
    text_index = 0
    cur_error = window.edit_distance
    text_consumed = 0
    pattern_consumed = 0
    errors_used = 0
    prev = ""
    ops: list[str] = []

    while text_consumed < consume_limit and pattern_consumed < consume_limit:
        if pattern_index < 0 or text_index >= n:
            break
        # Edge vectors for the current (text_index, cur_error) cell; every
        # step moves one of the two coordinates, so they are per-step.
        if sene:
            row_after = r[text_index + 1]
            mvec = ((row_after[cur_error] << 1) | pms[text_index]) & all_ones
            if cur_error:
                dvec = row_after[cur_error - 1]
                svec = (dvec << 1) & all_ones
                ivec = (r[text_index][cur_error - 1] << 1) & all_ones
            else:
                svec = ivec = dvec = all_ones
        else:
            mvec = match_store[text_index][cur_error]
            if cur_error:
                dvec = deletion_store[text_index][cur_error]
                svec = (dvec << 1) & all_ones
                ivec = insertion_store[text_index][cur_error]
            else:
                svec = ivec = dvec = all_ones
        picked = -1
        for opcode in program:
            if opcode == _MATCH:
                if not mvec & pattern_bit:
                    picked = _MATCH
                    break
            elif cur_error <= 0:
                continue  # error cases need budget remaining
            elif opcode == _SUBSTITUTION:
                if not svec & pattern_bit:
                    picked = _SUBSTITUTION
                    break
            elif opcode == _INSERTION_OPEN:
                if not ivec & pattern_bit:
                    picked = _INSERTION_OPEN
                    break
            elif opcode == _DELETION_OPEN:
                if not dvec & pattern_bit:
                    picked = _DELETION_OPEN
                    break
            elif opcode == _INSERTION_EXTEND:
                if prev == "I" and not ivec & pattern_bit:
                    picked = _INSERTION_EXTEND
                    break
            else:  # _DELETION_EXTEND
                if prev == "D" and not dvec & pattern_bit:
                    picked = _DELETION_EXTEND
                    break
        if picked < 0:
            raise TracebackError(
                f"traceback dead end at textI={text_index} "
                f"patternI={pattern_index} errors={cur_error}"
            )
        if picked == _MATCH:
            ops.append("M")
            prev = "M"
            text_index += 1
            text_consumed += 1
            pattern_index -= 1
            pattern_bit >>= 1
            pattern_consumed += 1
        elif picked == _SUBSTITUTION:
            ops.append("S")
            prev = "S"
            cur_error -= 1
            errors_used += 1
            text_index += 1
            text_consumed += 1
            pattern_index -= 1
            pattern_bit >>= 1
            pattern_consumed += 1
        elif picked in (_INSERTION_OPEN, _INSERTION_EXTEND):
            ops.append("I")
            prev = "I"
            cur_error -= 1
            errors_used += 1
            pattern_index -= 1
            pattern_bit >>= 1
            pattern_consumed += 1
        else:  # deletion open / extend
            ops.append("D")
            prev = "D"
            cur_error -= 1
            errors_used += 1
            text_index += 1
            text_consumed += 1

    return WindowTraceback(
        ops="".join(ops),
        text_consumed=text_consumed,
        pattern_consumed=pattern_consumed,
        errors_used=errors_used,
    )
