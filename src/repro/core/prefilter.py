"""GenASM as a pre-alignment filter (Sections 8 and 10.3).

In the pre-alignment filtering step of short-read mapping, candidate
(read, reference-region) pairs from seeding are tested for similarity before
paying for full alignment. GenASM-DC alone suffices: it computes the actual
semi-global edit distance (not an approximation like Shouji's), and the pair
is accepted only if that distance is within the user-defined threshold.

Because Bitap matching is semi-global, a deletion at the first pattern
position is absorbed by the free text prefix — the paper's footnote 4 — so
the filter's distance can be one lower than the true global edit distance.
The consequences match the paper: a near-zero (but non-zero) false-accept
rate and an exactly-zero false-reject rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.engine.registry import get_engine
from repro.sequences.alphabet import DNA, Alphabet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.registry import AlignmentEngine


@dataclass(frozen=True)
class FilterDecision:
    """Outcome for one candidate pair.

    ``distance`` is the filter's computed semi-global edit distance, or
    ``None`` when it exceeds the threshold (the scan stops at ``k``).
    """

    accepted: bool
    distance: int | None


class GenAsmFilter:
    """Edit-distance pre-alignment filter backed by GenASM-DC.

    Parameters
    ----------
    threshold:
        Maximum number of edits for a pair to be considered similar — the
        ``E`` of the ASM problem statement (Section 2.2).
    engine:
        Compute backend for the Bitap scans (instance, registered name, or
        None for the process default). All backends are bit-identical.
    """

    def __init__(
        self,
        threshold: int,
        *,
        alphabet: Alphabet = DNA,
        engine: "AlignmentEngine | str | None" = None,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.alphabet = alphabet
        self.engine = get_engine(engine)

    def decide(self, reference: str, read: str) -> FilterDecision:
        """Compute the filter distance and the accept/reject decision."""
        return self.decide_batch([(reference, read)])[0]

    def decide_batch(
        self, pairs: Sequence[tuple[str, str]]
    ) -> list[FilterDecision]:
        """Decide every (reference, read) pair, batching the Bitap scans."""
        decisions, scan_indices, scan_pairs = self._split_trivial(
            pairs,
            empty_read=FilterDecision(accepted=True, distance=0),
            empty_reference=FilterDecision(accepted=False, distance=None),
        )
        if scan_pairs:
            distances = self.engine.edit_distance_batch(
                scan_pairs, self.threshold, alphabet=self.alphabet
            )
            for i, distance in zip(scan_indices, distances):
                decisions[i] = FilterDecision(
                    accepted=distance is not None, distance=distance
                )
        return decisions

    def accepts(self, reference: str, read: str) -> bool:
        """True when the pair should proceed to full read alignment."""
        return self.accepts_batch([(reference, read)])[0]

    def accepts_batch(self, pairs: Sequence[tuple[str, str]]) -> list[bool]:
        """Accept/reject every pair; cheaper than :meth:`decide_batch`.

        Any single location within the threshold accepts a pair, so the
        scan stops at each pair's first match instead of computing the true
        minimum distance across all locations.
        """
        verdicts, scan_indices, scan_pairs = self._split_trivial(
            pairs, empty_read=True, empty_reference=False
        )
        if scan_pairs:
            scans = self.engine.scan_batch(
                scan_pairs,
                self.threshold,
                alphabet=self.alphabet,
                first_match_only=True,
            )
            for i, matches in zip(scan_indices, scans):
                verdicts[i] = bool(matches)
        return verdicts

    @staticmethod
    def _split_trivial(
        pairs: Sequence[tuple[str, str]], *, empty_read, empty_reference
    ) -> tuple[list, list[int], list[tuple[str, str]]]:
        """Settle degenerate pairs up front; route the rest to a scan.

        An empty read is trivially similar (``empty_read`` result) and an
        empty reference can match nothing (``empty_reference`` result) —
        the precedence the scalar filter always had. Returns the partially
        filled result list plus the indices and pairs still needing a scan.
        """
        results: list = [None] * len(pairs)
        scan_indices: list[int] = []
        scan_pairs: list[tuple[str, str]] = []
        for i, (reference, read) in enumerate(pairs):
            if not read:
                results[i] = empty_read
            elif not reference:
                results[i] = empty_reference
            else:
                scan_indices.append(i)
                scan_pairs.append((reference, read))
        return results, scan_indices, scan_pairs

    def filter_pairs(
        self, pairs: list[tuple[str, str]]
    ) -> list[FilterDecision]:
        """Batched convenience for experiment drivers."""
        return self.decide_batch(pairs)
