"""GenASM as a pre-alignment filter (Sections 8 and 10.3).

In the pre-alignment filtering step of short-read mapping, candidate
(read, reference-region) pairs from seeding are tested for similarity before
paying for full alignment. GenASM-DC alone suffices: it computes the actual
semi-global edit distance (not an approximation like Shouji's), and the pair
is accepted only if that distance is within the user-defined threshold.

Because Bitap matching is semi-global, a deletion at the first pattern
position is absorbed by the free text prefix — the paper's footnote 4 — so
the filter's distance can be one lower than the true global edit distance.
The consequences match the paper: a near-zero (but non-zero) false-accept
rate and an exactly-zero false-reject rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitap import bitap_edit_distance
from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class FilterDecision:
    """Outcome for one candidate pair.

    ``distance`` is the filter's computed semi-global edit distance, or
    ``None`` when it exceeds the threshold (the scan stops at ``k``).
    """

    accepted: bool
    distance: int | None


class GenAsmFilter:
    """Edit-distance pre-alignment filter backed by GenASM-DC.

    Parameters
    ----------
    threshold:
        Maximum number of edits for a pair to be considered similar — the
        ``E`` of the ASM problem statement (Section 2.2).
    """

    def __init__(self, threshold: int, *, alphabet: Alphabet = DNA) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.alphabet = alphabet

    def decide(self, reference: str, read: str) -> FilterDecision:
        """Compute the filter distance and the accept/reject decision."""
        if not read:
            return FilterDecision(accepted=True, distance=0)
        if not reference:
            return FilterDecision(accepted=False, distance=None)
        distance = bitap_edit_distance(
            reference, read, self.threshold, alphabet=self.alphabet
        )
        return FilterDecision(accepted=distance is not None, distance=distance)

    def accepts(self, reference: str, read: str) -> bool:
        """True when the pair should proceed to full read alignment."""
        return self.decide(reference, read).accepted

    def filter_pairs(
        self, pairs: list[tuple[str, str]]
    ) -> list[FilterDecision]:
        """Vectorized convenience for experiment drivers."""
        return [self.decide(reference, read) for reference, read in pairs]
