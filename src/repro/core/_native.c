/* Native GenASM kernels: the Bitap scan and the GenASM DC+TB inner loops.
 *
 * This module is the compiled half of the plain-int kernel ABI described in
 * repro/core/kernels.py.  The Python side owns every policy decision —
 * alphabet validation, representation selection, error types, fallbacks —
 * and hands this module nothing but byte strings of symbol codes, packed
 * little-endian uint64 mask tables, and integer parameters.  Each function
 * is a line-for-line port of the corresponding pure-Python kernel
 * (bitap_scan, _dc_fixed_k / run_dc_window's budget loop, and
 * traceback_window's opcode dispatch), so results are bit-identical by
 * construction and pinned by the conformance + Hypothesis parity suites.
 *
 * Layout conventions shared with kernels.py:
 *   - symbol codes: one byte per character; codes < n_symbols are alphabet
 *     symbols in alphabet order, code n_symbols is the shared
 *     wildcard / out-of-alphabet fallback (all-ones mask, "matches nothing");
 *   - packed masks: rows of `words` uint64 each, word 0 least significant;
 *   - DC history: (n + 1) rows of (k + 1) uint64; row i is R after text
 *     iteration i, row n is the initial all-ones state (the SENE layout of
 *     SeneWindowBitvectors.r, single-word only: m <= 64);
 *   - traceback programs: one byte per opcode, matching genasm_tb's
 *     _MATCH .. _DELETION_EXTEND constants (0..5).
 *
 * The GIL is released around every O(n * k) scan loop and around the whole
 * per-pair align loop, so thread-pooled servers overlap native kernels.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <limits.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define WORD_BITS 64
#define MAX_SYMBOLS 255 /* codes are bytes; one value is the fallback */

/* Opcodes, numerically identical to repro.core.genasm_tb. */
enum {
    OP_MATCH = 0,
    OP_SUBSTITUTION = 1,
    OP_INSERTION_OPEN = 2,
    OP_DELETION_OPEN = 3,
    OP_INSERTION_EXTEND = 4,
    OP_DELETION_EXTEND = 5,
};

static inline uint64_t
ones_mask(int m)
{
    return (m >= WORD_BITS) ? ~(uint64_t)0 : (((uint64_t)1 << m) - 1);
}

/* ------------------------------------------------------------------ */
/* Multiword Bitap scan (bitap_scan parity, any pattern length)        */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t start;
    int distance;
} ScanMatch;

/* Core loop; returns match count, or -1 when a text code is out of range
 * (bad_index then holds the offending position). Runs without the GIL. */
static Py_ssize_t
scan_core(const uint8_t *text, Py_ssize_t n, const uint64_t *mask_rows,
          Py_ssize_t n_rows, Py_ssize_t words, int m, Py_ssize_t k,
          int first_match_only, uint64_t *r, uint64_t *old_r,
          ScanMatch *out, Py_ssize_t *bad_index)
{
    const uint64_t top_mask =
        (m % WORD_BITS == 0) ? ~(uint64_t)0
                             : (((uint64_t)1 << (m % WORD_BITS)) - 1);
    const Py_ssize_t top = words - 1;
    const uint64_t msb_bit = (uint64_t)1 << ((m - 1) % WORD_BITS);
    Py_ssize_t found = 0;

    for (Py_ssize_t d = 0; d <= k; d++)
        for (Py_ssize_t w = 0; w < words; w++)
            r[d * words + w] = (w == top) ? top_mask : ~(uint64_t)0;

    for (Py_ssize_t i = n - 1; i >= 0; i--) {
        if (text[i] >= n_rows) {
            *bad_index = i;
            return -1;
        }
        const uint64_t *pm = mask_rows + (Py_ssize_t)text[i] * words;
        uint64_t *swap = old_r;
        old_r = r;
        r = swap;

        /* r[0] = ((old_r[0] << 1) | pm) & all_ones */
        {
            const uint64_t *o = old_r;
            uint64_t *c = r;
            uint64_t carry = 0;
            for (Py_ssize_t w = 0; w < words; w++) {
                uint64_t v = (o[w] << 1) | carry;
                carry = o[w] >> (WORD_BITS - 1);
                c[w] = v | pm[w];
            }
            c[top] &= top_mask;
        }
        for (Py_ssize_t d = 1; d <= k; d++) {
            const uint64_t *od1 = old_r + (d - 1) * words;
            const uint64_t *od = old_r + d * words;
            const uint64_t *cd1 = r + (d - 1) * words;
            uint64_t *c = r + d * words;
            uint64_t carry_s = 0, carry_i = 0, carry_m = 0;
            for (Py_ssize_t w = 0; w < words; w++) {
                uint64_t deletion = od1[w];
                uint64_t substitution = (od1[w] << 1) | carry_s;
                carry_s = od1[w] >> (WORD_BITS - 1);
                uint64_t insertion = (cd1[w] << 1) | carry_i;
                carry_i = cd1[w] >> (WORD_BITS - 1);
                uint64_t match = ((od[w] << 1) | carry_m) | pm[w];
                carry_m = od[w] >> (WORD_BITS - 1);
                c[w] = deletion & substitution & insertion & match;
            }
            c[top] &= top_mask;
        }
        for (Py_ssize_t d = 0; d <= k; d++) {
            if (!(r[d * words + top] & msb_bit)) {
                out[found].start = i;
                out[found].distance = (int)d;
                found++;
                break;
            }
        }
        if (found && first_match_only)
            break;
    }
    return found;
}

static PyObject *
py_scan(PyObject *self, PyObject *args)
{
    Py_buffer text, masks;
    Py_ssize_t n_rows, words, m, k;
    int first_match_only;

    if (!PyArg_ParseTuple(args, "y*y*nnnnp", &text, &masks, &n_rows, &words,
                          &m, &k, &first_match_only))
        return NULL;

    PyObject *result = NULL;
    uint64_t *rbuf = NULL;
    ScanMatch *matches = NULL;

    if (m < 1 || m > (Py_ssize_t)INT_MAX) {
        PyErr_SetString(PyExc_ValueError, "pattern length out of range");
        goto done;
    }
    if (k < 0) {
        PyErr_SetString(PyExc_ValueError, "k must be non-negative");
        goto done;
    }
    if (words != (m + WORD_BITS - 1) / WORD_BITS) {
        PyErr_SetString(PyExc_ValueError, "word count does not match m");
        goto done;
    }
    if (n_rows < 1 || masks.len != n_rows * words * 8) {
        PyErr_SetString(PyExc_ValueError, "mask table size mismatch");
        goto done;
    }

    const Py_ssize_t n = text.len;
    rbuf = (uint64_t *)malloc((size_t)(2 * (k + 1) * words) * sizeof(uint64_t));
    matches = (ScanMatch *)malloc((size_t)(n > 0 ? n : 1) * sizeof(ScanMatch));
    if (rbuf == NULL || matches == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    Py_ssize_t found, bad_index = -1;
    Py_BEGIN_ALLOW_THREADS
    found = scan_core((const uint8_t *)text.buf, n,
                      (const uint64_t *)masks.buf, n_rows, words, (int)m, k,
                      first_match_only, rbuf, rbuf + (k + 1) * words, matches,
                      &bad_index);
    Py_END_ALLOW_THREADS

    if (found < 0) {
        PyErr_Format(PyExc_ValueError,
                     "text code at position %zd out of mask-table range",
                     bad_index);
        goto done;
    }
    result = PyList_New(found);
    if (result == NULL)
        goto done;
    for (Py_ssize_t idx = 0; idx < found; idx++) {
        PyObject *pair = Py_BuildValue("(ni)", matches[idx].start,
                                       matches[idx].distance);
        if (pair == NULL) {
            Py_CLEAR(result);
            goto done;
        }
        PyList_SET_ITEM(result, idx, pair);
    }

done:
    free(rbuf);
    free(matches);
    PyBuffer_Release(&text);
    PyBuffer_Release(&masks);
    return result;
}

/* ------------------------------------------------------------------ */
/* Single-word GenASM-DC with SENE history (_dc_fixed_k parity)        */
/* ------------------------------------------------------------------ */

/* Per-symbol single-word masks from pattern codes (pattern_bitmasks
 * parity: codes >= n_symbols are wildcard/unknown and leave all rows 1s;
 * the fallback row n_symbols stays all-ones). */
static void
build_masks(const uint8_t *pattern, Py_ssize_t m, Py_ssize_t n_symbols,
            uint64_t *masks)
{
    const uint64_t ones = ones_mask((int)m);
    for (Py_ssize_t s = 0; s <= n_symbols; s++)
        masks[s] = ones;
    for (Py_ssize_t j = 0; j < m; j++) {
        const uint8_t code = pattern[j];
        if (code < n_symbols)
            masks[code] &= ~((uint64_t)1 << (m - 1 - j));
    }
}

/* One fixed-budget DC pass writing the full R history; returns 1 and the
 * window edit distance on a hit, 0 on a miss. history must hold
 * (n + 1) * (k + 1) words. */
static int
dc_fixed_k(const uint8_t *text, Py_ssize_t n, const uint64_t *masks,
           Py_ssize_t m, Py_ssize_t k, uint64_t *history, int *edit_distance)
{
    const uint64_t ones = ones_mask((int)m);
    const uint64_t msb = (uint64_t)1 << (m - 1);
    const Py_ssize_t kk = k + 1;

    uint64_t *initial = history + n * kk;
    for (Py_ssize_t d = 0; d <= k; d++)
        initial[d] = ones;
    for (Py_ssize_t i = n - 1; i >= 0; i--) {
        const uint64_t pm = masks[text[i]];
        const uint64_t *old = history + (i + 1) * kk;
        uint64_t *cur = history + i * kk;
        cur[0] = ((old[0] << 1) | pm) & ones;
        for (Py_ssize_t d = 1; d <= k; d++) {
            const uint64_t deletion = old[d - 1];
            const uint64_t substitution = (old[d - 1] << 1) & ones;
            const uint64_t insertion = (cur[d - 1] << 1) & ones;
            const uint64_t match = ((old[d] << 1) | pm) & ones;
            cur[d] = deletion & substitution & insertion & match;
        }
    }
    for (Py_ssize_t d = 0; d <= k; d++) {
        if (!(history[d] & msb)) {
            *edit_distance = (int)d;
            return 1;
        }
    }
    return 0;
}

/* run_dc_window's doubling-budget loop over dc_fixed_k. Writes into a
 * caller buffer sized for k = m; returns the budget that hit (the window's
 * k), or -1 when unalignable even at k = m. */
static Py_ssize_t
dc_window_core(const uint8_t *text, Py_ssize_t n, const uint64_t *masks,
               Py_ssize_t m, Py_ssize_t initial_budget, uint64_t *history,
               int *edit_distance)
{
    Py_ssize_t budget = initial_budget;
    if (budget < 1)
        budget = 1;
    if (budget > m)
        budget = m;
    for (;;) {
        if (dc_fixed_k(text, n, masks, m, budget, history, edit_distance))
            return budget;
        if (budget >= m)
            return -1;
        budget *= 2;
        if (budget > m)
            budget = m;
    }
}

static PyObject *
py_dc_window(PyObject *self, PyObject *args)
{
    Py_buffer text, pattern;
    Py_ssize_t n_symbols, initial_budget;

    if (!PyArg_ParseTuple(args, "y*y*nn", &text, &pattern, &n_symbols,
                          &initial_budget))
        return NULL;

    PyObject *result = NULL;
    uint64_t *history = NULL;
    const Py_ssize_t n = text.len;
    const Py_ssize_t m = pattern.len;

    if (m < 1 || m > WORD_BITS) {
        PyErr_SetString(PyExc_ValueError,
                        "pattern length must be in [1, 64] for the "
                        "single-word DC kernel");
        goto done;
    }
    if (n < 1) {
        PyErr_SetString(PyExc_ValueError, "window text must be non-empty");
        goto done;
    }
    if (n_symbols < 1 || n_symbols > MAX_SYMBOLS - 1) {
        PyErr_SetString(PyExc_ValueError, "n_symbols out of range");
        goto done;
    }

    /* Allocate for the worst-case budget (k = m) so the doubling loop
     * reuses one buffer; the hit's (n + 1) * (k + 1) prefix is what ships
     * back to Python. */
    history =
        (uint64_t *)malloc((size_t)((n + 1) * (m + 1)) * sizeof(uint64_t));
    if (history == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    uint64_t masks[MAX_SYMBOLS + 1];
    int edit_distance = 0;
    Py_ssize_t k_used;
    Py_BEGIN_ALLOW_THREADS
    build_masks((const uint8_t *)pattern.buf, m, n_symbols, masks);
    k_used = dc_window_core((const uint8_t *)text.buf, n, masks, m,
                            initial_budget, history, &edit_distance);
    Py_END_ALLOW_THREADS

    if (k_used < 0) {
        result = Py_None;
        Py_INCREF(result);
        goto done;
    }
    PyObject *packed = PyBytes_FromStringAndSize(
        (const char *)history,
        (Py_ssize_t)((n + 1) * (k_used + 1)) * (Py_ssize_t)sizeof(uint64_t));
    if (packed == NULL)
        goto done;
    result = Py_BuildValue("(inN)", edit_distance, k_used, packed);

done:
    free(history);
    PyBuffer_Release(&text);
    PyBuffer_Release(&pattern);
    return result;
}

/* ------------------------------------------------------------------ */
/* Traceback walk (traceback_window parity, SENE single-word)          */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t text_consumed;
    Py_ssize_t pattern_consumed;
    Py_ssize_t errors_used;
    /* dead-end diagnostics (valid when the walk returns -1) */
    Py_ssize_t dead_text_index;
    Py_ssize_t dead_pattern_index;
    Py_ssize_t dead_errors;
} TbState;

/* The opcode-program walk; appends expanded CIGAR chars to ops and returns
 * their count, or -1 on a dead end (impossible for well-formed history —
 * surfaced as TracebackError by the Python side, exactly like the pure
 * kernel). ops must hold at least 2 * consume_limit chars. */
static Py_ssize_t
tb_core(const uint64_t *history, Py_ssize_t kk, const uint8_t *text,
        Py_ssize_t n, const uint64_t *masks, Py_ssize_t m, int edit_distance,
        Py_ssize_t consume_limit, const uint8_t *program,
        Py_ssize_t program_len, char *ops, TbState *state)
{
    const uint64_t ones = ones_mask((int)m);
    Py_ssize_t pattern_index = m - 1;
    uint64_t pattern_bit = (uint64_t)1 << pattern_index;
    Py_ssize_t text_index = 0;
    Py_ssize_t cur_error = edit_distance;
    Py_ssize_t text_consumed = 0, pattern_consumed = 0, errors_used = 0;
    char prev = 0;
    Py_ssize_t out = 0;

    while (text_consumed < consume_limit && pattern_consumed < consume_limit) {
        if (pattern_index < 0 || text_index >= n)
            break;
        const uint64_t *row_after = history + (text_index + 1) * kk;
        const uint64_t mvec =
            ((row_after[cur_error] << 1) | masks[text[text_index]]) & ones;
        uint64_t svec, ivec, dvec;
        if (cur_error) {
            dvec = row_after[cur_error - 1];
            svec = (dvec << 1) & ones;
            ivec = (history[text_index * kk + cur_error - 1] << 1) & ones;
        } else {
            svec = ivec = dvec = ones;
        }
        int picked = -1;
        for (Py_ssize_t p = 0; p < program_len; p++) {
            const uint8_t opcode = program[p];
            if (opcode == OP_MATCH) {
                if (!(mvec & pattern_bit)) {
                    picked = OP_MATCH;
                    break;
                }
            } else if (cur_error <= 0) {
                continue; /* error cases need budget remaining */
            } else if (opcode == OP_SUBSTITUTION) {
                if (!(svec & pattern_bit)) {
                    picked = OP_SUBSTITUTION;
                    break;
                }
            } else if (opcode == OP_INSERTION_OPEN) {
                if (!(ivec & pattern_bit)) {
                    picked = OP_INSERTION_OPEN;
                    break;
                }
            } else if (opcode == OP_DELETION_OPEN) {
                if (!(dvec & pattern_bit)) {
                    picked = OP_DELETION_OPEN;
                    break;
                }
            } else if (opcode == OP_INSERTION_EXTEND) {
                if (prev == 'I' && !(ivec & pattern_bit)) {
                    picked = OP_INSERTION_EXTEND;
                    break;
                }
            } else { /* OP_DELETION_EXTEND */
                if (prev == 'D' && !(dvec & pattern_bit)) {
                    picked = OP_DELETION_EXTEND;
                    break;
                }
            }
        }
        if (picked < 0) {
            state->dead_text_index = text_index;
            state->dead_pattern_index = pattern_index;
            state->dead_errors = cur_error;
            return -1;
        }
        if (picked == OP_MATCH) {
            ops[out++] = 'M';
            prev = 'M';
            text_index++;
            text_consumed++;
            pattern_index--;
            pattern_bit >>= 1;
            pattern_consumed++;
        } else if (picked == OP_SUBSTITUTION) {
            ops[out++] = 'S';
            prev = 'S';
            cur_error--;
            errors_used++;
            text_index++;
            text_consumed++;
            pattern_index--;
            pattern_bit >>= 1;
            pattern_consumed++;
        } else if (picked == OP_INSERTION_OPEN ||
                   picked == OP_INSERTION_EXTEND) {
            ops[out++] = 'I';
            prev = 'I';
            cur_error--;
            errors_used++;
            pattern_index--;
            pattern_bit >>= 1;
            pattern_consumed++;
        } else { /* deletion open / extend */
            ops[out++] = 'D';
            prev = 'D';
            cur_error--;
            errors_used++;
            text_index++;
            text_consumed++;
        }
    }
    state->text_consumed = text_consumed;
    state->pattern_consumed = pattern_consumed;
    state->errors_used = errors_used;
    return out;
}

static PyObject *
py_traceback(PyObject *self, PyObject *args)
{
    Py_buffer history, text, pattern, program;
    Py_ssize_t n_symbols, k, edit_distance, consume_limit;

    if (!PyArg_ParseTuple(args, "y*y*y*nnnny*", &history, &text, &pattern,
                          &n_symbols, &k, &edit_distance, &consume_limit,
                          &program))
        return NULL;

    PyObject *result = NULL;
    char *ops = NULL;
    const Py_ssize_t n = text.len;
    const Py_ssize_t m = pattern.len;

    if (m < 1 || m > WORD_BITS) {
        PyErr_SetString(PyExc_ValueError,
                        "pattern length must be in [1, 64] for the "
                        "single-word traceback kernel");
        goto done;
    }
    if (consume_limit <= 0) {
        PyErr_SetString(PyExc_ValueError, "consume_limit must be positive");
        goto done;
    }
    if (k < 0 || edit_distance < 0 || edit_distance > k) {
        PyErr_SetString(PyExc_ValueError, "edit distance outside [0, k]");
        goto done;
    }
    if (n_symbols < 1 || n_symbols > MAX_SYMBOLS - 1) {
        PyErr_SetString(PyExc_ValueError, "n_symbols out of range");
        goto done;
    }
    if (history.len != (n + 1) * (k + 1) * (Py_ssize_t)sizeof(uint64_t)) {
        PyErr_SetString(PyExc_ValueError, "history size mismatch");
        goto done;
    }

    ops = (char *)malloc((size_t)(2 * consume_limit + 1));
    if (ops == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    uint64_t masks[MAX_SYMBOLS + 1];
    TbState state;
    memset(&state, 0, sizeof(state));
    Py_ssize_t out;
    Py_BEGIN_ALLOW_THREADS
    build_masks((const uint8_t *)pattern.buf, m, n_symbols, masks);
    out = tb_core((const uint64_t *)history.buf, k + 1,
                  (const uint8_t *)text.buf, n, masks, m, (int)edit_distance,
                  consume_limit, (const uint8_t *)program.buf, program.len,
                  ops, &state);
    Py_END_ALLOW_THREADS

    if (out < 0) {
        /* Dead end: ship the diagnostics; kernels.py raises TracebackError
         * with the pure kernel's message. */
        result = Py_BuildValue("(Onnn)", Py_None, state.dead_text_index,
                               state.dead_pattern_index, state.dead_errors);
        goto done;
    }
    result = Py_BuildValue("(s#nnn)", ops, out, state.text_consumed,
                           state.pattern_consumed, state.errors_used);

done:
    free(ops);
    PyBuffer_Release(&history);
    PyBuffer_Release(&text);
    PyBuffer_Release(&pattern);
    PyBuffer_Release(&program);
    return result;
}

/* ------------------------------------------------------------------ */
/* Whole-pair windowed align loop (GenAsmAligner.align_batch parity)   */
/* ------------------------------------------------------------------ */

/* Failure kinds for the align loop; kernels.py maps them onto the same
 * exception types and messages the pure aligner raises. */
enum {
    ALIGN_OK = 0,
    ALIGN_NO_PROGRESS = 1,
    ALIGN_PAST_END = 2,
    ALIGN_DEAD_END = 3,
    ALIGN_UNALIGNABLE = 4,
};

static int
align_core(const uint8_t *text, Py_ssize_t n, const uint8_t *pattern,
           Py_ssize_t m, Py_ssize_t n_symbols, Py_ssize_t window_size,
           Py_ssize_t overlap, Py_ssize_t initial_budget,
           const uint8_t *program, Py_ssize_t program_len, uint64_t *history,
           uint64_t *masks, char *ops, Py_ssize_t *ops_len,
           Py_ssize_t *text_consumed_out, Py_ssize_t *fail_a,
           Py_ssize_t *fail_b, Py_ssize_t *fail_c)
{
    const Py_ssize_t consume_limit = window_size - overlap;
    Py_ssize_t cur_text = 0, cur_pattern = 0, out = 0;

    while (cur_pattern < m) {
        if (cur_text >= n) {
            /* Text exhausted: every remaining pattern character is an
             * insertion relative to the reference. */
            while (cur_pattern < m) {
                ops[out++] = 'I';
                cur_pattern++;
            }
            break;
        }
        const uint8_t *sub_text = text + cur_text;
        const Py_ssize_t sn =
            (n - cur_text < window_size) ? n - cur_text : window_size;
        const uint8_t *sub_pattern = pattern + cur_pattern;
        const Py_ssize_t sm =
            (m - cur_pattern < window_size) ? m - cur_pattern : window_size;

        build_masks(sub_pattern, sm, n_symbols, masks);
        int edit_distance = 0;
        const Py_ssize_t k_used = dc_window_core(
            sub_text, sn, masks, sm, initial_budget, history, &edit_distance);
        if (k_used < 0) {
            *fail_a = cur_text;
            *fail_b = cur_pattern;
            return ALIGN_UNALIGNABLE;
        }

        TbState state;
        memset(&state, 0, sizeof(state));
        const Py_ssize_t produced =
            tb_core(history, k_used + 1, sub_text, sn, masks, sm,
                    edit_distance, consume_limit, program, program_len,
                    ops + out, &state);
        if (produced < 0) {
            /* Window-local coordinates: the pure TracebackError reports
             * where inside the window the walk died. */
            *fail_a = state.dead_text_index;
            *fail_b = state.dead_pattern_index;
            *fail_c = state.dead_errors;
            return ALIGN_DEAD_END;
        }
        if (state.text_consumed == 0 && state.pattern_consumed == 0) {
            *fail_a = cur_text;
            *fail_b = cur_pattern;
            return ALIGN_NO_PROGRESS;
        }
        out += produced;
        cur_pattern += state.pattern_consumed;
        cur_text += state.text_consumed;
        if (cur_text > n) {
            *fail_a = cur_text;
            *fail_b = cur_pattern;
            return ALIGN_PAST_END;
        }
    }
    *ops_len = out;
    *text_consumed_out = cur_text;
    return ALIGN_OK;
}

static PyObject *
py_align_pair(PyObject *self, PyObject *args)
{
    Py_buffer text, pattern, program;
    Py_ssize_t n_symbols, window_size, overlap, initial_budget;

    if (!PyArg_ParseTuple(args, "y*y*nnnny*", &text, &pattern, &n_symbols,
                          &window_size, &overlap, &initial_budget, &program))
        return NULL;

    PyObject *result = NULL;
    char *ops = NULL;
    uint64_t *history = NULL;
    const Py_ssize_t n = text.len;
    const Py_ssize_t m = pattern.len;

    if (m < 1) {
        PyErr_SetString(PyExc_ValueError, "pattern must be non-empty");
        goto done;
    }
    if (window_size < 1 || window_size > WORD_BITS) {
        PyErr_SetString(PyExc_ValueError,
                        "window_size must be in [1, 64] for the single-word "
                        "align kernel");
        goto done;
    }
    if (overlap < 0 || overlap >= window_size) {
        PyErr_SetString(PyExc_ValueError,
                        "overlap must satisfy 0 <= O < W");
        goto done;
    }
    if (n_symbols < 1 || n_symbols > MAX_SYMBOLS - 1) {
        PyErr_SetString(PyExc_ValueError, "n_symbols out of range");
        goto done;
    }

    /* Every loop round consumes >= 1 of text or pattern, text consumption
     * is bounded by n (past-end fails), pattern consumption by m. */
    ops = (char *)malloc((size_t)(n + m + 2 * window_size + 2));
    history = (uint64_t *)malloc(
        (size_t)((window_size + 1) * (window_size + 1)) * sizeof(uint64_t));
    if (ops == NULL || history == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    uint64_t masks[MAX_SYMBOLS + 1];
    Py_ssize_t ops_len = 0, text_consumed = 0;
    Py_ssize_t fail_a = 0, fail_b = 0, fail_c = 0;
    int status;
    Py_BEGIN_ALLOW_THREADS
    status = align_core((const uint8_t *)text.buf, n,
                        (const uint8_t *)pattern.buf, m, n_symbols,
                        window_size, overlap, initial_budget,
                        (const uint8_t *)program.buf, program.len, history,
                        masks, ops, &ops_len, &text_consumed, &fail_a,
                        &fail_b, &fail_c);
    Py_END_ALLOW_THREADS

    if (status == ALIGN_OK)
        result = Py_BuildValue("(s#n)", ops, ops_len, text_consumed);
    else
        result = Py_BuildValue("(innn)", status, fail_a, fail_b, fail_c);

done:
    free(ops);
    free(history);
    PyBuffer_Release(&text);
    PyBuffer_Release(&pattern);
    PyBuffer_Release(&program);
    return result;
}

/* ------------------------------------------------------------------ */

static PyMethodDef native_methods[] = {
    {"scan", py_scan, METH_VARARGS,
     "scan(text_codes, mask_rows, n_rows, words, m, k, first_match_only)\n"
     "-> list[(start, distance)] — multiword Bitap scan (bitap_scan "
     "parity)."},
    {"dc_window", py_dc_window, METH_VARARGS,
     "dc_window(text_codes, pattern_codes, n_symbols, initial_budget)\n"
     "-> (edit_distance, k, history_bytes) | None — single-word GenASM-DC "
     "with SENE history and doubling budget (run_dc_window parity)."},
    {"traceback", py_traceback, METH_VARARGS,
     "traceback(history, text_codes, pattern_codes, n_symbols, k, "
     "edit_distance, consume_limit, program)\n"
     "-> (ops, text_consumed, pattern_consumed, errors_used) on success, "
     "(None, text_index, pattern_index, errors) on a dead end."},
    {"align_pair", py_align_pair, METH_VARARGS,
     "align_pair(text_codes, pattern_codes, n_symbols, window_size, "
     "overlap, initial_budget, program)\n"
     "-> (ops, text_consumed) on success, (status, a, b, c) on failure — "
     "the whole windowed DC+TB loop for one pair."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._native",
    "Compiled GenASM kernels (Bitap scan, DC, traceback, windowed align).\n"
    "Internal ABI — use repro.core.kernels / the \"native\" engine instead.",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}
