"""CIGAR strings: the traceback output format (Sections 2.1 and 6).

The optimal alignment is "defined using a CIGAR string, which shows the
sequence and position of each match, substitution, insertion, and deletion
for the read with respect to the selected mapping location of the reference."

Internally GenASM-TB emits one operation character per step; :class:`Cigar`
stores that expanded form and renders the run-length-encoded string. We use
``M`` (match), ``S`` (substitution — rendered ``X`` in SAM extended CIGAR),
``I`` (read character absent from the reference), ``D`` (reference character
absent from the read).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.scoring import ScoringScheme

_VALID_OPS = frozenset("MSID")
_CIGAR_TOKEN = re.compile(r"(\d+)([MSIDX=])")

#: SAM extended-CIGAR spelling of our internal op codes.
_SAM_OP = {"M": "=", "S": "X", "I": "I", "D": "D"}
_FROM_SAM_OP = {"=": "M", "X": "S", "M": "M", "S": "S", "I": "I", "D": "D"}


@dataclass(frozen=True)
class Cigar:
    """An alignment transcript as a sequence of per-character operations."""

    ops: str

    def __post_init__(self) -> None:
        invalid = set(self.ops) - _VALID_OPS
        if invalid:
            raise ValueError(f"invalid CIGAR ops: {sorted(invalid)}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Cigar":
        """Parse a run-length CIGAR like ``"3M1S2M"`` or SAM ``"3=1X2="``."""
        if not text:
            return cls("")
        pos = 0
        expanded: list[str] = []
        for token in _CIGAR_TOKEN.finditer(text):
            if token.start() != pos:
                raise ValueError(f"malformed CIGAR near {text[pos:]!r}")
            count, op = int(token.group(1)), token.group(2)
            expanded.append(_FROM_SAM_OP[op] * count)
            pos = token.end()
        if pos != len(text):
            raise ValueError(f"malformed CIGAR near {text[pos:]!r}")
        return cls("".join(expanded))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return "".join(f"{count}{op}" for op, count in self.runs())

    def to_sam(self) -> str:
        """Extended-CIGAR rendering with ``=``/``X`` per the SAM spec."""
        return "".join(f"{count}{_SAM_OP[op]}" for op, count in self.runs())

    def runs(self) -> Iterator[tuple[str, int]]:
        """Yield (op, run_length) pairs."""
        if not self.ops:
            return
        current = self.ops[0]
        count = 0
        for op in self.ops:
            if op == current:
                count += 1
            else:
                yield current, count
                current, count = op, 1
        yield current, count

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    @property
    def edit_distance(self) -> int:
        """Number of non-match operations — the alignment's edit count."""
        return sum(1 for op in self.ops if op != "M")

    @property
    def matches(self) -> int:
        return self.ops.count("M")

    @property
    def reference_length(self) -> int:
        """Reference characters consumed (M, S, D consume text)."""
        return sum(1 for op in self.ops if op in "MSD")

    @property
    def query_length(self) -> int:
        """Query characters consumed (M, S, I consume pattern)."""
        return sum(1 for op in self.ops if op in "MSI")

    def score(self, scheme: ScoringScheme) -> int:
        """Alignment score under an affine-gap scheme (Section 2.2).

        Each maximal run of I or D is one gap costing
        ``gap_open + length * gap_extend``.
        """
        total = 0
        for op, count in self.runs():
            if op == "M":
                total += scheme.match * count
            elif op == "S":
                total += scheme.substitution * count
            else:
                total += scheme.gap_cost(count)
        return total

    # ------------------------------------------------------------------
    # Validation against the actual sequences
    # ------------------------------------------------------------------
    def is_valid_for(self, reference: str, query: str) -> bool:
        """Check the transcript is consistent with the two sequences.

        Requires that the CIGAR consumes the full query; the reference may
        have unconsumed trailing characters (semi-global alignment).
        """
        ti = qi = 0
        for op in self.ops:
            if op == "M":
                if ti >= len(reference) or qi >= len(query):
                    return False
                if reference[ti] != query[qi]:
                    return False
                ti, qi = ti + 1, qi + 1
            elif op == "S":
                if ti >= len(reference) or qi >= len(query):
                    return False
                if reference[ti] == query[qi]:
                    return False
                ti, qi = ti + 1, qi + 1
            elif op == "I":
                if qi >= len(query):
                    return False
                qi += 1
            else:  # "D"
                if ti >= len(reference):
                    return False
                ti += 1
        return qi == len(query)

    def concat(self, other: "Cigar") -> "Cigar":
        """Merge two window transcripts (Section 6 window merging)."""
        return Cigar(self.ops + other.ops)


def concat_all(parts: Iterable[Cigar]) -> Cigar:
    """Merge the per-window partial traceback outputs into the full CIGAR."""
    return Cigar("".join(part.ops for part in parts))
