"""Multi-word bitvectors: the paper's long-read enabler, modelled faithfully.

Baseline Bitap limits the query length to the machine word because status
bitvectors must be shifted as single words (Section 3.1). GenASM-DC stores a
bitvector in ``ceil(m / w)`` words and chains shifts through saved carry bits
(Section 5): "the bit shifted out (MSB) of word i-1 needs to be stored
separately before performing the shift on word i-1. Then, that saved bit
needs to be loaded as the least significant bit (LSB) of word i."

:class:`MultiWordBitVector` reproduces exactly that word-by-word mechanism so
the hardware model charges the right number of per-word operations, while the
software fast path elsewhere uses Python's arbitrary-precision integers.
Property tests assert the two semantics agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MultiWordBitVector:
    """An ``m``-bit vector stored as least-significant-word-first words.

    Parameters
    ----------
    length:
        Number of live bits ``m``.
    word_size:
        Hardware word width ``w`` (64 in the paper's configuration).
    words:
        ``ceil(m / w)`` integers, each holding ``word_size`` bits,
        least-significant word first.
    """

    length: int
    word_size: int
    words: list[int]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, length: int, word_size: int = 64) -> "MultiWordBitVector":
        """All-zero vector (every position a match, in Bitap's encoding)."""
        cls._check_shape(length, word_size)
        return cls(length, word_size, [0] * _word_count(length, word_size))

    @classmethod
    def ones(cls, length: int, word_size: int = 64) -> "MultiWordBitVector":
        """All-one vector — Bitap's initial 'no partial match' state."""
        cls._check_shape(length, word_size)
        vec = cls.zeros(length, word_size)
        full = (1 << word_size) - 1
        for i in range(len(vec.words)):
            vec.words[i] = full
        vec._mask_top()
        return vec

    @classmethod
    def from_int(
        cls, value: int, length: int, word_size: int = 64
    ) -> "MultiWordBitVector":
        """Split an integer's low ``length`` bits into words."""
        cls._check_shape(length, word_size)
        if value < 0:
            raise ValueError("bitvector value must be non-negative")
        vec = cls.zeros(length, word_size)
        mask = (1 << word_size) - 1
        for i in range(len(vec.words)):
            vec.words[i] = (value >> (i * word_size)) & mask
        vec._mask_top()
        return vec

    @staticmethod
    def _check_shape(length: int, word_size: int) -> None:
        if length <= 0:
            raise ValueError("bitvector length must be positive")
        if word_size <= 0:
            raise ValueError("word size must be positive")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def to_int(self) -> int:
        """Recombine the words into a single integer."""
        value = 0
        for i, word in enumerate(self.words):
            value |= word << (i * self.word_size)
        return value

    def bit(self, index: int) -> int:
        """Bit at position ``index`` (0 = LSB)."""
        if not 0 <= index < self.length:
            raise IndexError(f"bit index {index} out of range [0, {self.length})")
        word, offset = divmod(index, self.word_size)
        return (self.words[word] >> offset) & 1

    @property
    def msb(self) -> int:
        """The most significant *live* bit — Bitap's match flag."""
        return self.bit(self.length - 1)

    @property
    def word_count(self) -> int:
        return len(self.words)

    # ------------------------------------------------------------------
    # Bitap operations (in-place; return self for chaining)
    # ------------------------------------------------------------------
    def shift_left(self) -> "MultiWordBitVector":
        """Shift left by one using the paper's carry-bit chaining.

        Word ``i``'s shifted-out MSB is saved and loaded as word ``i+1``'s
        new LSB, exactly as Section 5 describes for the hardware. The final
        carry (the vector's live MSB) is discarded, matching a single-word
        shift that drops the top bit.
        """
        carry = 0
        top = self.word_size - 1
        full = (1 << self.word_size) - 1
        for i in range(len(self.words)):
            shifted_out = (self.words[i] >> top) & 1
            self.words[i] = ((self.words[i] << 1) & full) | carry
            carry = shifted_out
        self._mask_top()
        return self

    def or_with(self, other: "MultiWordBitVector") -> "MultiWordBitVector":
        """Word-wise OR (used to fold the pattern bitmask in)."""
        self._check_compatible(other)
        for i in range(len(self.words)):
            self.words[i] |= other.words[i]
        return self

    def and_with(self, other: "MultiWordBitVector") -> "MultiWordBitVector":
        """Word-wise AND (used to combine the D/S/I/M intermediates)."""
        self._check_compatible(other)
        for i in range(len(self.words)):
            self.words[i] &= other.words[i]
        return self

    def copy(self) -> "MultiWordBitVector":
        return MultiWordBitVector(self.length, self.word_size, list(self.words))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "MultiWordBitVector") -> None:
        if self.length != other.length or self.word_size != other.word_size:
            raise ValueError(
                "bitvector shape mismatch: "
                f"({self.length},{self.word_size}) vs "
                f"({other.length},{other.word_size})"
            )

    def _mask_top(self) -> None:
        """Clear bits above ``length`` in the top word."""
        live = self.length - (len(self.words) - 1) * self.word_size
        self.words[-1] &= (1 << live) - 1


def _word_count(length: int, word_size: int) -> int:
    return (length + word_size - 1) // word_size


def words_needed(length: int, word_size: int = 64) -> int:
    """Words required for an ``length``-bit vector — the dm/we of Section 5."""
    MultiWordBitVector._check_shape(length, word_size)
    return _word_count(length, word_size)
