"""GenASM as an edit distance calculator (Sections 8 and 10.4).

Edit (Levenshtein) distance is Bitap's original job, but GenASM computes it
through the same windowed DC + TB machinery as alignment so that arbitrary
sequence lengths fit in the accelerator's fixed SRAM budget: "GenASM-DC and
GenASM-TB work together to find the minimum edit distance in a fast and
memory-efficient way, but the traceback output is not generated or reported
by default (though it can optionally be enabled)."

Under the windowed scheme the result is exact for the paths the greedy
window traceback explores; as in the paper, it is an upper bound that equals
the true distance in the overwhelming majority of cases (the same accuracy
discussion as Section 10.2's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aligner import DEFAULT_OVERLAP, DEFAULT_WINDOW_SIZE, GenAsmAligner
from repro.core.cigar import Cigar
from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class EditDistanceResult:
    """Distance plus the optional traceback output.

    ``cigar`` is None unless traceback reporting was requested, matching the
    accelerator's default of not writing the CIGAR to memory for this use
    case.
    """

    distance: int
    cigar: Cigar | None


def genasm_edit_distance(
    sequence_a: str,
    sequence_b: str,
    *,
    window_size: int = DEFAULT_WINDOW_SIZE,
    overlap: int = DEFAULT_OVERLAP,
    report_cigar: bool = False,
    alphabet: Alphabet = DNA,
) -> EditDistanceResult:
    """Edit distance between two arbitrary-length sequences.

    ``sequence_a`` plays the text role and ``sequence_b`` the pattern role;
    trailing unconsumed text characters are charged as deletions so the
    result reflects the full global transformation between the sequences.
    """
    if not sequence_b:
        return EditDistanceResult(
            distance=len(sequence_a),
            cigar=Cigar("D" * len(sequence_a)) if report_cigar else None,
        )
    if not sequence_a:
        return EditDistanceResult(
            distance=len(sequence_b),
            cigar=Cigar("I" * len(sequence_b)) if report_cigar else None,
        )

    aligner = GenAsmAligner(
        window_size=window_size, overlap=overlap, alphabet=alphabet
    )
    alignment = aligner.align(sequence_a, sequence_b)
    trailing = len(sequence_a) - alignment.text_consumed
    distance = alignment.edit_distance + trailing
    cigar = None
    if report_cigar:
        cigar = Cigar(alignment.cigar.ops + "D" * trailing)
    return EditDistanceResult(distance=distance, cigar=cigar)
