"""Baseline Bitap algorithm (Algorithm 1 of the paper).

Bitap computes the minimum edit distance between a reference *text* and a
query *pattern* with at most ``k`` errors, using only shifts, ORs and ANDs.
The text is scanned from its last character to its first; when the most
significant bit of status bitvector ``R[d]`` becomes 0 at text iteration
``i``, the pattern matches a region *starting* at text position ``i`` with at
most ``d`` edits (semi-global matching: text outside the matched region is
free).

Two implementations are provided:

* :func:`bitap_scan` — the software fast path on Python integers, usable for
  arbitrary pattern lengths (this already incorporates GenASM's "long read
  support" modification, since Python integers are effectively multi-word);
* :func:`bitap_scan_multiword` — the word-accurate version using
  :class:`~repro.core.bitvector.MultiWordBitVector`, mirroring what the
  hardware executes. Property tests assert both agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitvector import MultiWordBitVector
from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class BitapMatch:
    """A semi-global match: pattern found at ``text[start:]`` with ``distance`` edits."""

    start: int
    distance: int


def pattern_bitmasks(pattern: str, alphabet: Alphabet = DNA) -> dict[str, int]:
    """Pre-process the pattern into per-symbol bitmasks (Algorithm 1 line 4).

    Bit ``m-1-j`` of ``PM[a]`` is 0 iff ``pattern[j] == a``; all other bits
    are 1 ("0 means match in the Bitap algorithm"). The MSB therefore
    corresponds to the first pattern character, matching Figure 3 where
    pattern ``CTGA`` yields ``PM(C) = 0111``.
    """
    m = len(pattern)
    if m == 0:
        raise ValueError("pattern must be non-empty")
    all_ones = (1 << m) - 1
    masks = {symbol: all_ones for symbol in alphabet.symbols}
    for j, ch in enumerate(pattern):
        if ch not in masks:
            if ch == alphabet.wildcard:
                continue  # wildcard in pattern matches nothing: leave 1s
            raise ValueError(f"pattern symbol {ch!r} not in alphabet")
        masks[ch] &= ~(1 << (m - 1 - j)) & all_ones
    if alphabet.wildcard is not None:
        masks[alphabet.wildcard] = all_ones  # wildcard in text matches nothing
    return masks


def bitap_scan(
    text: str,
    pattern: str,
    k: int,
    *,
    alphabet: Alphabet = DNA,
    first_match_only: bool = False,
) -> list[BitapMatch]:
    """Run Algorithm 1, returning every (start, distance) match found.

    For each text position where some ``R[d]`` has MSB 0, the *smallest* such
    ``d`` is reported. Matches are returned in scan order, i.e. from the end
    of the text toward the start, as the algorithm discovers them.

    Parameters
    ----------
    k:
        Edit distance threshold; ``k = 0`` finds exact matches.
    first_match_only:
        Stop at the first (right-most) match; used by the pre-alignment
        filter where any location within threshold accepts the pair.
    """
    if k < 0:
        raise ValueError("edit distance threshold k must be non-negative")
    m = len(pattern)
    n = len(text)
    masks = pattern_bitmasks(pattern, alphabet)
    all_ones = (1 << m) - 1
    msb_mask = 1 << (m - 1)

    r = [all_ones] * (k + 1)
    matches: list[BitapMatch] = []
    for i in range(n - 1, -1, -1):
        cur_pm = masks.get(text[i], all_ones)
        old_r = r
        r = [0] * (k + 1)
        r[0] = ((old_r[0] << 1) | cur_pm) & all_ones
        for d in range(1, k + 1):
            deletion = old_r[d - 1]
            substitution = (old_r[d - 1] << 1) & all_ones
            insertion = (r[d - 1] << 1) & all_ones
            match = ((old_r[d] << 1) | cur_pm) & all_ones
            r[d] = deletion & substitution & insertion & match
        for d in range(k + 1):
            if not r[d] & msb_mask:
                matches.append(BitapMatch(start=i, distance=d))
                break
        if matches and first_match_only:
            break
    return matches


def bitap_edit_distance(
    text: str,
    pattern: str,
    k: int,
    *,
    alphabet: Alphabet = DNA,
) -> int | None:
    """Minimum semi-global edit distance of ``pattern`` within ``text``.

    Returns ``None`` if no match exists within ``k`` errors. This is the
    quantity the GenASM pre-alignment filter thresholds (Section 10.3); note
    the paper's documented quirk that a deletion at the first pattern
    position is absorbed by the free text prefix, so the result can be one
    lower than the true global edit distance.
    """
    matches = bitap_scan(text, pattern, k, alphabet=alphabet)
    if not matches:
        return None
    return min(match.distance for match in matches)


def bitap_scan_multiword(
    text: str,
    pattern: str,
    k: int,
    *,
    word_size: int = 64,
    alphabet: Alphabet = DNA,
    first_match_only: bool = False,
) -> list[BitapMatch]:
    """Word-accurate Bitap using the multi-word carry-chaining of Section 5.

    Semantically identical to :func:`bitap_scan`, including the
    ``first_match_only`` early exit the pre-alignment filter relies on;
    exists so tests can verify the multi-word mechanism (and so the hardware
    model's operation counts rest on code that demonstrably computes the
    right thing).
    """
    if k < 0:
        raise ValueError("edit distance threshold k must be non-negative")
    m = len(pattern)
    n = len(text)
    int_masks = pattern_bitmasks(pattern, alphabet)
    masks = {
        symbol: MultiWordBitVector.from_int(value, m, word_size)
        for symbol, value in int_masks.items()
    }
    fallback = MultiWordBitVector.ones(m, word_size)

    r = [MultiWordBitVector.ones(m, word_size) for _ in range(k + 1)]
    matches: list[BitapMatch] = []
    for i in range(n - 1, -1, -1):
        cur_pm = masks.get(text[i], fallback)
        old_r = [vec.copy() for vec in r]
        r[0] = old_r[0].copy().shift_left().or_with(cur_pm)
        for d in range(1, k + 1):
            deletion = old_r[d - 1].copy()
            substitution = old_r[d - 1].copy().shift_left()
            insertion = r[d - 1].copy().shift_left()
            match = old_r[d].copy().shift_left().or_with(cur_pm)
            r[d] = deletion.and_with(substitution).and_with(insertion).and_with(match)
        for d in range(k + 1):
            if r[d].msb == 0:
                matches.append(BitapMatch(start=i, distance=d))
                break
        if matches and first_match_only:
            break
    return matches
