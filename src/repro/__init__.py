"""repro — a reproduction of GenASM (MICRO 2020).

GenASM is an approximate string matching (ASM) acceleration framework for
genome sequence analysis, built on an enhanced Bitap algorithm with the first
Bitap-compatible traceback. This package reproduces the paper end to end:

* :mod:`repro.core` — GenASM-DC, GenASM-TB, the windowed aligner, and the
  derived pre-alignment filter and edit-distance use cases;
* :mod:`repro.sequences` — alphabets, synthetic genomes, read simulators;
* :mod:`repro.baselines` — the comparators the paper evaluates against
  (DP aligners, Myers/Edlib, Shouji, GACT, ...);
* :mod:`repro.hardware` — the systolic-array accelerator model, SRAMs,
  vault-level parallelism, and the analytical performance/area/power models;
* :mod:`repro.mapping` — a full read-mapping pipeline (index, seed, filter,
  align) hosting GenASM as its alignment step;
* :mod:`repro.serving` — the asyncio alignment server that batches many
  concurrent requests into few large engine calls (with adaptive flush
  windows), the replicated cluster router over N such servers
  (replica-aware load shedding, pluggable dispatch policies, mergeable
  latency histograms), plus the stdlib HTTP/JSON network front that
  mounts either;
* :mod:`repro.eval` — datasets, metrics, and one experiment driver per
  table/figure in the paper's evaluation.
"""

from repro.core import (
    Alignment,
    Cigar,
    GenAsmAligner,
    GenAsmFilter,
    ScoringScheme,
    TracebackConfig,
    bitap_edit_distance,
    bitap_scan,
    genasm_align,
    genasm_edit_distance,
)
from repro.engine import (
    AlignmentEngine,
    BatchedEngine,
    EngineInfo,
    PurePythonEngine,
    ShardedEngine,
    available_engines,
    engine_info,
    get_engine,
    register_engine,
)
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    AlignmentServer,
    JobManager,
    LatencyHistogram,
    ServerClosedError,
    ServingStats,
    serve_http,
)

__version__ = "1.9.0"

__all__ = [
    "Alignment",
    "AlignmentCluster",
    "AlignmentEngine",
    "AlignmentHTTPServer",
    "AlignmentServer",
    "BatchedEngine",
    "Cigar",
    "EngineInfo",
    "GenAsmAligner",
    "GenAsmFilter",
    "JobManager",
    "LatencyHistogram",
    "PurePythonEngine",
    "ScoringScheme",
    "ServerClosedError",
    "ServingStats",
    "ShardedEngine",
    "TracebackConfig",
    "__version__",
    "available_engines",
    "bitap_edit_distance",
    "bitap_scan",
    "engine_info",
    "genasm_align",
    "genasm_edit_distance",
    "get_engine",
    "register_engine",
    "serve_http",
]
