"""Replicated serving: a health-aware router over N alignment servers.

GenASM gets its throughput from many independent ASM units working in
parallel; the serving-layer analogue is many :class:`AlignmentServer`
replicas — each with its *own* engine instance (its own process pool,
scratch arrays, eventually its own device) — behind one router.
:class:`AlignmentCluster` is that router. It exposes the same request
surface as a single server (``scan`` / ``edit_distance`` / ``align`` /
``map_read``), so the HTTP front and every other caller mounts a cluster
exactly like a server, and adds three things a single server cannot have:

**Pluggable dispatch.** A :class:`RoutingPolicy` picks the replica for
each request from the currently *eligible* ones: ``round_robin`` (fair,
oblivious), ``least_in_flight`` (join-the-shortest-queue), and
``latency_ewma`` (each replica scored by its smoothed observed latency,
scaled by its queue depth — a degraded replica prices itself out of
rotation within a few requests). Policies register by name via
:func:`register_policy`, so new ones plug in without touching the router.

**Replica-aware load shedding.** A replica that is saturated (all
``max_pending`` slots taken), draining, stopped, or cooling down after
consecutive failures is simply *skipped* — the request goes elsewhere.
Only when **every** live replica is saturated does the cluster shed, and
the :class:`ClusterSaturatedError` it raises carries a ``retry_after``
computed from the replicas' observed flush windows and service-time EWMAs
(the soonest any replica expects to free capacity), not a constant.

**Failure containment.** An engine exception marks the replica as failing
(exponential cooldown after consecutive failures) and the request is
retried on a different replica — engine calls are pure functions of their
payload, so a retry can never duplicate an effect, and every submitted
request is answered exactly once: with the first successful result, or
with the last error once no replica remains to try. A replica can be
drained mid-flight (:meth:`AlignmentCluster.drain_replica`): it stops
receiving new work immediately, finishes what it holds, and its in-flight
requests complete normally.

Per-replica latency lands in mergeable log-bucket histograms
(:mod:`repro.serving.histogram`), so ``/v1/stats`` reports true
cluster-wide p50/p90/p99 as well as per-replica percentiles without any
sample buffers.

On top of that static core sits the *elastic* layer. ``hedge=True``
duplicates a request stuck past the p99-derived :meth:`hedge_delay`
onto a second replica and answers with whichever lands first (the
loser's queued entry is cancelled before its engine sees it — "tied
requests" from the tail-at-scale playbook). :meth:`add_replica` regrows
the cluster from its stored construction recipe, which together with
:meth:`drain_replica` gives :class:`~repro.serving.autoscaler.\
ClusterAutoscaler` its two actuators. The ``consistent_hash`` policy
routes by request content digest so each replica's private result cache
(``cache=True``) holds a disjoint arc of the key space.
"""

from __future__ import annotations

import asyncio
import logging
import time
from abc import ABC, abstractmethod
from bisect import bisect_left
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Sequence

from repro.engine.registry import create_engine
from repro.serving.cache import CacheStats, request_digest
from repro.serving.histogram import LatencyHistogram
from repro.serving.observability import (
    EventRateLimiter,
    MetricFamily,
    current_trace,
    get_logger,
    log_event,
)
from repro.serving.qos import DeadlineExceededError
from repro.serving.server import AlignmentServer, ServerClosedError, ServingStats

_LOGGER = get_logger("cluster")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aligner import Alignment
    from repro.core.bitap import BitapMatch
    from repro.engine.registry import AlignmentEngine
    from repro.mapping.pipeline import MappingResult, ReadMapper


class ClusterSaturatedError(RuntimeError):
    """Every live replica is at capacity; retry after ``retry_after`` s.

    The HTTP front maps this to ``503`` with a ``Retry-After`` header
    carrying the hint.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class Replica:
    """One :class:`AlignmentServer` behind the router, plus its telemetry.

    The router never looks inside the server; everything it needs for
    dispatch — queue depth, saturation, smoothed latency, failure state —
    lives here or on the server's public surface.
    """

    def __init__(
        self,
        name: str,
        server: AlignmentServer,
        *,
        latency_smoothing: float = 0.25,
        failure_cooldown: float = 0.25,
    ) -> None:
        self.name = name
        self.server = server
        if server.name == "server":
            # Spans and metric series from this server should carry the
            # replica name; an explicitly named server keeps its name.
            server.name = name
        self.latency = LatencyHistogram()
        self.ewma_latency: float | None = None
        self.latency_smoothing = latency_smoothing
        self.failure_cooldown = failure_cooldown
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.consecutive_failures = 0
        self.cooldown_until = 0.0
        self.draining = False
        self.stopped = False

    @property
    def live(self) -> bool:
        """Whether this replica may still be offered new work at all."""
        return not self.draining and not self.stopped

    def eligible(self, now: float) -> bool:
        """Whether the router may dispatch to this replica right now."""
        return self.live and not self.server.saturated and now >= self.cooldown_until

    @property
    def state(self) -> str:
        """Human-readable state for health and stats payloads."""
        if self.stopped:
            return "stopped"
        if self.draining:
            return "draining"
        if time.monotonic() < self.cooldown_until:
            return "cooldown"
        if self.server.saturated:
            return "saturated"
        return "up"

    def record_success(self, seconds: float) -> None:
        self.completed += 1
        self.consecutive_failures = 0
        self.cooldown_until = 0.0
        self.latency.record(seconds)
        if self.ewma_latency is None:
            self.ewma_latency = seconds
        else:
            alpha = self.latency_smoothing
            self.ewma_latency = alpha * seconds + (1.0 - alpha) * self.ewma_latency

    def record_failure(self, now: float) -> None:
        """Count one engine failure and back off exponentially.

        The cooldown doubles per consecutive failure (capped at 16x), so a
        replica whose engine is throwing gets probed at a decaying rate
        instead of eating a retry from every request.
        """
        self.failed += 1
        self.consecutive_failures += 1
        backoff = min(2 ** (self.consecutive_failures - 1), 16)
        self.cooldown_until = now + self.failure_cooldown * backoff

    def to_dict(self) -> dict[str, Any]:
        """Per-replica block of the cluster's ``/v1/stats`` payload."""
        return {
            "name": self.name,
            "state": self.state,
            "engine": self.server.engine_name,
            "pending": self.server.pending,
            "in_flight": self.server.in_flight,
            "saturated": self.server.saturated,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "latency": self.latency.to_dict(),
            "serving": self.server.stats.to_dict(),
        }


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class RoutingPolicy(ABC):
    """Picks one replica from the eligible candidates for each request."""

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"

    #: Whether the router should compute a per-request content key and
    #: dispatch through :meth:`select_keyed`. Key computation hashes the
    #: full payload, so it is skipped for the policies that ignore it.
    needs_key: ClassVar[bool] = False

    @abstractmethod
    def select(self, candidates: Sequence[Replica]) -> Replica:
        """Choose from ``candidates`` (never empty, all eligible)."""

    def select_keyed(
        self, candidates: Sequence[Replica], key: str | None
    ) -> Replica:
        """Key-aware dispatch hook; the default ignores the key.

        Key-affine policies (``consistent_hash``) override this; every
        load-based policy inherits the key-oblivious :meth:`select`.
        """
        del key
        return self.select(candidates)


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the eligible replicas in order — fair and oblivious."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, candidates: Sequence[Replica]) -> Replica:
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


class LeastInFlightPolicy(RoundRobinPolicy):
    """Join the shortest queue; ties broken round-robin."""

    name = "least_in_flight"

    def select(self, candidates: Sequence[Replica]) -> Replica:
        depth = min(c.server.in_flight for c in candidates)
        shortest = [c for c in candidates if c.server.in_flight == depth]
        return super().select(shortest)


class LatencyEwmaPolicy(RoundRobinPolicy):
    """Score replicas by smoothed latency scaled by queue depth.

    A replica's expected cost is roughly its per-request latency times the
    work already ahead of a new arrival, so the score is
    ``ewma_latency * (1 + in_flight)``. Replicas with no observations yet
    score zero — optimistically cheap — so every replica gets probed and
    earns a real EWMA; a degraded replica's score then keeps it out of
    rotation until the others grow queues long enough to make it the
    cheaper option again.
    """

    name = "latency_ewma"

    def select(self, candidates: Sequence[Replica]) -> Replica:
        def score(replica: Replica) -> float:
            if replica.ewma_latency is None:
                return 0.0
            return replica.ewma_latency * (1 + replica.server.in_flight)

        best = min(score(c) for c in candidates)
        cheapest = [c for c in candidates if score(c) == best]
        return super().select(cheapest)


class ConsistentHashPolicy(RoutingPolicy):
    """Route each request by its content digest on a consistent-hash ring.

    Every replica owns ``vnodes`` pseudo-random points on a 64-bit ring;
    a request's digest hashes to a ring position and is served by the
    replica owning the next point clockwise. Two properties make this
    the natural partner of the per-replica result cache:

    * **Affinity** — equal request content always lands on the same
      replica (while the eligible set is stable), so a cached key's
      entry lives on exactly one replica and the cluster's aggregate
      cache behaves like one cache of N times the budget instead of N
      copies of the same hot keys.
    * **Minimal rebalance** — when a replica drains (or saturates out of
      the candidate set), only the keys on *its* arcs remap; every other
      key keeps its replica and its warm cache entries. A modulo hash
      would reshuffle nearly everything on every membership change.

    Keyless selections (a policy user outside the router) fall back to
    round-robin.
    """

    name = "consistent_hash"
    needs_key = True

    #: Ring points per replica: enough that each replica's share of the
    #: key space concentrates near 1/N (vnode count evens out the arcs).
    DEFAULT_VNODES = 64

    def __init__(self, *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._cursor = 0
        # Ring cache, rebuilt only when the candidate name set changes.
        self._ring_names: frozenset[str] = frozenset()
        self._points: list[int] = []
        self._owners: list[str] = []

    @staticmethod
    def _hash(data: str) -> int:
        return int.from_bytes(
            blake2b(data.encode(), digest_size=8).digest(), "big"
        )

    def _rebuild(self, names: frozenset[str]) -> None:
        ring = sorted(
            (self._hash(f"{name}#{vnode}"), name)
            for name in names
            for vnode in range(self.vnodes)
        )
        self._points = [point for point, _ in ring]
        self._owners = [name for _, name in ring]
        self._ring_names = names

    def select(self, candidates: Sequence[Replica]) -> Replica:
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice

    def select_keyed(
        self, candidates: Sequence[Replica], key: str | None
    ) -> Replica:
        if key is None:
            return self.select(candidates)
        by_name = {candidate.name: candidate for candidate in candidates}
        names = frozenset(by_name)
        if names != self._ring_names:
            self._rebuild(names)
        index = bisect_left(self._points, self._hash(key))
        if index == len(self._points):
            index = 0  # wrap: past the last point is the first point
        return by_name[self._owners[index]]


ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {}


def register_policy(policy_cls: type[RoutingPolicy]) -> type[RoutingPolicy]:
    """Register a policy class under its ``name`` (usable as a decorator)."""
    if not policy_cls.name or policy_cls.name == RoutingPolicy.name:
        raise ValueError(f"{policy_cls.__name__} must define a concrete name")
    ROUTING_POLICIES[policy_cls.name] = policy_cls
    return policy_cls


for _cls in (
    RoundRobinPolicy,
    LeastInFlightPolicy,
    LatencyEwmaPolicy,
    ConsistentHashPolicy,
):
    register_policy(_cls)


def make_policy(spec: RoutingPolicy | str) -> RoutingPolicy:
    """Resolve ``spec`` to a policy instance (name or ready instance)."""
    if isinstance(spec, RoutingPolicy):
        return spec
    policy_cls = ROUTING_POLICIES.get(spec)
    if policy_cls is None:
        raise ValueError(
            f"unknown routing policy {spec!r}; "
            f"registered: {sorted(ROUTING_POLICIES)}"
        )
    return policy_cls()


# ----------------------------------------------------------------------
# The cluster router
# ----------------------------------------------------------------------
class AlignmentCluster:
    """Router fronting N :class:`AlignmentServer` replicas.

    Parameters
    ----------
    replicas:
        How many replicas to build (ignored when ``servers`` is given).
        Each gets a **fresh** engine instance via
        :func:`repro.engine.registry.create_engine`.
    servers:
        Pre-built servers to front instead — the caller owns their
        configuration; every other construction knob is then rejected.
    engine:
        Engine *name* (or None for the environment default) constructed
        fresh per replica. Pass an instance only via ``engine_factory``
        or ``servers`` — a shared instance defeats replication.
    engine_factory:
        ``f(replica_index) -> engine`` for heterogeneous replicas (e.g.
        one sharded + one batched, or injected test doubles).
    mapper / mapper_factory:
        A :class:`~repro.mapping.pipeline.ReadMapper` template for
        ``map_read`` requests, or a per-replica factory. A template
        mapper is rebuilt per replica from its
        :meth:`~repro.mapping.pipeline.ReadMapper.shard_spec` over the
        replica's private engine (genome/index shared, engine state not);
        mappers with custom callables are not spec-representable and
        stay shared across replicas — use ``mapper_factory`` for those.
    policy:
        Routing policy name or instance (default ``least_in_flight``).
        ``consistent_hash`` routes by request content so each key's
        cache entry is replica-affine.
    failure_cooldown:
        Base seconds a replica sits out after an engine failure (doubled
        per consecutive failure, capped at 16x).
    max_attempts:
        Replicas tried per request before giving up (default: all).
    hedge:
        Duplicate a request that has been in flight longer than the
        p99-derived :meth:`hedge_delay` onto a second replica and answer
        with whichever result lands first (the loser is cancelled, its
        queued work dropped before the engine sees it). Tames the tail a
        slow replica inflicts at the cost of a small amount of duplicate
        work on the slowest ~1% of requests.
    hedge_quantile:
        Latency quantile deriving the hedge delay (default 0.99: only
        the slowest ~1% of requests hedge once histograms are warm).
    trace:
        Record routing spans (per-replica ``attempt``, ``hedge_wait``)
        into the submitting context's current trace, and enable span
        recording on every replica server. Off by default; the HTTP
        front switches it on via :meth:`enable_tracing`.
    min_hedge_delay, max_hedge_delay:
        Clamp bounds (seconds) for :meth:`hedge_delay`; the max is also
        the delay used before any latency has been observed.
    **server_kwargs:
        Forwarded to every built :class:`AlignmentServer`
        (``batch_size=``, ``flush_interval=``, ``max_pending=``,
        ``cache=``, ``adaptive_flush=``, ...). ``cache=True`` gives each
        replica a *private* content-addressed result cache — pair it
        with ``policy="consistent_hash"`` so every key is cached on
        exactly one replica.
    """

    def __init__(
        self,
        *,
        replicas: int = 2,
        servers: Sequence[AlignmentServer] | None = None,
        engine: "str | None" = None,
        engine_factory: "Callable[[int], AlignmentEngine] | None" = None,
        mapper: "ReadMapper | None" = None,
        mapper_factory: "Callable[[int], ReadMapper] | None" = None,
        policy: RoutingPolicy | str = "least_in_flight",
        failure_cooldown: float = 0.25,
        max_attempts: int | None = None,
        hedge: bool = False,
        hedge_quantile: float = 0.99,
        min_hedge_delay: float = 0.001,
        max_hedge_delay: float = 1.0,
        trace: bool = False,
        **server_kwargs: Any,
    ) -> None:
        if not 0.0 < hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if min_hedge_delay < 0:
            raise ValueError("min_hedge_delay must be non-negative")
        if max_hedge_delay < min_hedge_delay:
            raise ValueError(
                "max_hedge_delay must be at least min_hedge_delay"
            )
        if servers is not None:
            if engine is not None or engine_factory or mapper or mapper_factory:
                raise ValueError(
                    "pass either pre-built servers or construction knobs, "
                    "not both"
                )
            if server_kwargs:
                raise ValueError(
                    "server kwargs apply only when the cluster builds its "
                    "own replicas"
                )
            built = list(servers)
            if not built:
                raise ValueError("servers must be non-empty")
            self._buildable = False
        else:
            if replicas < 1:
                raise ValueError("replicas must be at least 1")
            if engine is not None and engine_factory is not None:
                raise ValueError("pass engine or engine_factory, not both")
            if engine is not None and not isinstance(engine, str):
                # One instance shared by N concurrently-flushing worker
                # threads is the exact hazard this class exists to
                # prevent; make it an immediate error, not a data race.
                raise ValueError(
                    "engine must be a backend name; pass instances via "
                    "engine_factory (one per replica) or servers"
                )
            self._buildable = True
        # The construction recipe is retained so the autoscaler (or any
        # caller) can add_replica() later with the same per-replica
        # freshness guarantees as construction time.
        self._engine_spec = engine
        self._engine_factory = engine_factory
        self._mapper_template = mapper
        self._mapper_factory = mapper_factory
        self._server_kwargs = dict(server_kwargs)
        self._failure_cooldown = failure_cooldown
        self.trace = bool(server_kwargs.get("trace", False)) or trace
        if self._buildable:
            built = [self._build_server(index) for index in range(replicas)]
        self._replicas = [
            Replica(
                f"replica-{index}",
                server,
                failure_cooldown=failure_cooldown,
            )
            for index, server in enumerate(built)
        ]
        self._next_index = len(built)
        self._policy = make_policy(policy)
        self.max_attempts = max_attempts
        self.hedge = hedge
        self.hedge_quantile = hedge_quantile
        self.min_hedge_delay = min_hedge_delay
        self.max_hedge_delay = max_hedge_delay
        self._autoscaler: Any = None
        self._closed = False
        self.shed = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self._events = EventRateLimiter()
        if self.trace:
            self.enable_tracing(True)

    def _build_server(self, index: int) -> AlignmentServer:
        """One fresh replica server from the stored construction recipe."""
        if self._engine_factory is not None:
            replica_engine: Any = self._engine_factory(index)
        elif self._engine_spec is None and self._mapper_template is not None:
            # Derive the engine from the mapper's spec, but still one
            # fresh instance per replica: a name (or None) must not
            # collapse onto the shared get_engine singleton across
            # concurrently-flushing replicas. An engine *instance* on
            # the mapper passes through — the caller already chose to
            # share it, like the mapper itself.
            replica_engine = create_engine(self._mapper_template.engine)
        else:
            replica_engine = create_engine(self._engine_spec)
        if self._mapper_factory is not None:
            replica_mapper = self._mapper_factory(index)
        elif self._mapper_template is not None:
            # Rebuild a private mapper per replica over the replica's
            # private engine (via MapperSpec), so map flushes from N
            # worker threads never race on one mapper/engine. Mappers
            # with custom callables are not spec-representable and stay
            # shared — the same in-process fallback the sharded mapper
            # uses; prefer mapper_factory for those.
            spec = self._mapper_template.shard_spec()
            replica_mapper = (
                spec.build(replica_engine)
                if spec is not None
                else self._mapper_template
            )
        else:
            replica_mapper = None
        kwargs = dict(self._server_kwargs)
        kwargs.setdefault("trace", self.trace)
        return AlignmentServer(
            engine=replica_engine,
            mapper=replica_mapper,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Request entry points (mirror AlignmentServer)
    # ------------------------------------------------------------------
    async def scan(
        self,
        text: str,
        pattern: str,
        k: int,
        *,
        first_match_only: bool = False,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> "list[BitapMatch]":
        """Bitap-scan one (text, pattern) pair on some replica."""
        return await self._submit(
            "scan",
            (text, pattern, k),
            {"first_match_only": first_match_only},
            tenant=tenant,
            deadline=deadline,
        )

    async def edit_distance(
        self,
        text: str,
        pattern: str,
        k: int,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> int | None:
        """Minimum semi-global edit distance (None above ``k``)."""
        return await self._submit(
            "edit_distance",
            (text, pattern, k),
            {},
            tenant=tenant,
            deadline=deadline,
        )

    async def align(
        self,
        text: str,
        pattern: str,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> "Alignment":
        """Full GenASM alignment of one pair on some replica."""
        return await self._submit(
            "align", (text, pattern), {}, tenant=tenant, deadline=deadline
        )

    async def map_read(
        self,
        name: str,
        read: str,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> "MappingResult":
        """Map one read through some replica's attached mapper."""
        if self.mapper is None:
            raise RuntimeError(
                "map_read requires a cluster constructed with mapper=..."
            )
        return await self._submit(
            "map_read", (name, read), {}, tenant=tenant, deadline=deadline
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _select(
        self,
        tried: set[int],
        *,
        require_mapper: bool = False,
        key: str | None = None,
    ) -> Replica | None:
        """Pick the next replica to try, or None when none can take work.

        Preference order: policy choice among fully eligible replicas;
        failing that, the cooling-down replica whose cooldown ends
        soonest (a half-open probe — shedding while unsaturated capacity
        exists, even suspect capacity, would be premature).
        ``require_mapper`` restricts the pool to replicas that can serve
        ``map_read`` at all — a mapper-less replica answering one with a
        RuntimeError is a routing mistake, not a replica failure.
        ``key`` is the request's content digest for key-affine policies.
        """
        now = time.monotonic()

        def routable(replica: Replica) -> bool:
            if id(replica) in tried:
                return False
            return not require_mapper or replica.server.mapper is not None

        candidates = [
            r for r in self._replicas if routable(r) and r.eligible(now)
        ]
        if candidates:
            return self._policy.select_keyed(candidates, key)
        cooling = [
            r
            for r in self._replicas
            if routable(r) and r.live and not r.server.saturated
        ]
        if cooling:
            return min(cooling, key=lambda r: r.cooldown_until)
        return None

    def _routing_key(self, method: str, args: tuple, kwargs: dict) -> str | None:
        """Content digest for key-affine policies (None when unused)."""
        if not self._policy.needs_key:
            return None
        return request_digest(method, args, tuple(sorted(kwargs.items())))

    def hedge_delay(self) -> float:
        """Seconds an in-flight request waits before being hedged.

        Derived from the ``hedge_quantile`` (default p99) of per-replica
        latency — but the **minimum** across replicas, not the merged
        quantile: the merged histogram is poisoned by exactly the slow
        replica hedging exists to escape, while the fastest replica's
        p99 answers the question that matters — "could some replica have
        answered by now?". Clamped to the configured bounds; before any
        latency is observed the max bound applies (hedge rarely until
        the histograms know better).
        """
        per_replica = [
            quantile
            for replica in self._replicas
            if replica.live
            for quantile in (replica.latency.quantile(self.hedge_quantile),)
            if quantile is not None
        ]
        if not per_replica:
            return self.max_hedge_delay
        return min(
            self.max_hedge_delay, max(self.min_hedge_delay, min(per_replica))
        )

    async def _submit(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> Any:
        if self._closed:
            raise ServerClosedError("cluster is stopped")
        # The routing key is computed from content only: tenancy and
        # deadline are request *metadata*, and folding them in would
        # scatter identical payloads across consistent-hash arcs (and
        # their replica-affine cache entries) per caller.
        key = self._routing_key(method, args, kwargs)
        if tenant is not None or deadline is not None:
            # Tenant context rides the kwargs through every retry and
            # hedge attempt below — the same identity lands on whichever
            # replica answers. Admission was already charged (once) at
            # the network front, so a hedge duplicate or a retry can
            # never double-charge the tenant's bucket.
            kwargs = dict(kwargs, tenant=tenant, deadline=deadline)
        used: set[int] = set()
        if not self.hedge or len(self._replicas) < 2:
            return await self._attempt_chain(method, args, kwargs, key, used)
        return await self._submit_hedged(method, args, kwargs, key, used)

    async def _attempt_chain(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        key: str | None,
        used: set[int],
    ) -> Any:
        """The retry loop: try replicas until one answers or none remain.

        Every replica actually dispatched to is recorded in ``used`` so
        a concurrent hedge can aim elsewhere.
        """
        tried: set[int] = set()
        budget = (
            self.max_attempts
            if self.max_attempts is not None
            else len(self._replicas)
        )
        last_error: Exception | None = None
        require_mapper = method == "map_read"
        trace = current_trace() if self.trace else None
        while budget > 0:
            replica = self._select(
                tried, require_mapper=require_mapper, key=key
            )
            if replica is None:
                break
            budget -= 1
            replica.dispatched += 1
            used.add(id(replica))
            # One span per attempt: a retried request shows its full
            # replica itinerary, each hop with its own outcome.
            span = (
                trace.begin("attempt", replica=replica.name, method=method)
                if trace is not None
                else None
            )
            started = time.monotonic()
            try:
                result = await getattr(replica.server, method)(*args, **kwargs)
            except asyncio.CancelledError:
                if span is not None:
                    span.finish("cancelled")
                raise
            except ServerClosedError:
                # Raced a drain/stop of that server: it never accepted the
                # request, so trying elsewhere cannot duplicate anything.
                if span is not None:
                    span.finish("rerouted")
                replica.stopped = True
                tried.add(id(replica))
                self.retries += 1
                continue
            except ValueError:
                # Input rejections (bad symbols, negative k, ...) are the
                # *request's* fault: every replica would refuse it the
                # same way. Surface it untouched — no failure recorded,
                # no retry burned.
                if span is not None:
                    span.finish("rejected")
                raise
            except DeadlineExceededError:
                # The request ran out of *its own* time budget while
                # queued — the replica did nothing wrong, and a retry
                # would arrive even later. Surface it untouched.
                if span is not None:
                    span.finish("expired")
                raise
            except Exception as exc:  # noqa: BLE001 - judged per replica
                # Engine calls are pure functions of the payload; the
                # failed replica produced no result, so a retry on a
                # different replica still answers the request exactly once.
                if span is not None:
                    span.finish("failed")
                replica.record_failure(time.monotonic())
                tried.add(id(replica))
                last_error = exc
                if (
                    self._select(
                        tried, require_mapper=require_mapper, key=key
                    )
                    is None
                ):
                    raise
                self.retries += 1
                continue
            if span is not None:
                span.finish("ok")
            replica.record_success(time.monotonic() - started)
            return result
        if last_error is not None:
            raise last_error
        live = [r for r in self._replicas if r.live]
        if not live:
            raise ServerClosedError("every replica is draining or stopped")
        if require_mapper and not any(
            r.server.mapper is not None for r in live
        ):
            # Terminal, not retryable: no amount of waiting gives a
            # mapper-less replica a mapper. A 503 here would have
            # clients Retry-After forever.
            raise RuntimeError(
                "no live replica has a mapper to serve map_read"
            )
        self.shed += 1
        log_event(
            _LOGGER,
            "cluster.shed",
            level=logging.WARNING,
            trace_id=trace.trace_id if trace is not None else None,
            limiter=self._events,
            live_replicas=len(live),
            retry_after=self.suggested_retry_after(),
        )
        raise ClusterSaturatedError(
            f"all {len(live)} replicas are at capacity",
            retry_after=self.suggested_retry_after(),
        )

    async def _submit_hedged(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        key: str | None,
        used: set[int],
    ) -> Any:
        """Primary attempt plus a delayed duplicate; first answer wins.

        The primary retry chain is authoritative: the hedge never
        surfaces an error and never burns the primary's retries. The
        losing side is cancelled — its queued entry is dropped before
        its server flushes it, and a result that raced past cancellation
        is discarded, so no request is ever answered twice.
        """
        trace = current_trace() if self.trace else None
        primary = asyncio.ensure_future(
            self._attempt_chain(method, args, kwargs, key, used)
        )
        try:
            done, _ = await asyncio.wait({primary}, timeout=self.hedge_delay())
            if done:
                return primary.result()
            # hedge_wait: the window between firing the duplicate and
            # the race being decided — the cost the tail paid for a
            # second chance.
            hedge_span = (
                trace.begin("hedge_wait", method=method)
                if trace is not None
                else None
            )
            log_event(
                _LOGGER,
                "cluster.hedge",
                trace_id=trace.trace_id if trace is not None else None,
                limiter=self._events,
                method=method,
                delay=self.hedge_delay(),
            )
            hedge = asyncio.ensure_future(
                self._hedge_once(method, args, kwargs, key, set(used))
            )
        except asyncio.CancelledError:
            await self._reap(primary)
            raise
        try:
            await asyncio.wait(
                {primary, hedge}, return_when=asyncio.FIRST_COMPLETED
            )
            if primary.done():
                # Primary is authoritative whenever it has finished —
                # even if the hedge finished in the same event-loop step.
                await self._reap(hedge)
                if hedge_span is not None:
                    hedge_span.finish("primary_won")
                return primary.result()
            hedge_won, result = await hedge
            if hedge_won:
                self.hedge_wins += 1
                await self._reap(primary)
                if hedge_span is not None:
                    hedge_span.finish("hedge_won")
                return result
            # The hedge could not help (no spare replica, or it failed);
            # the primary remains the request's one answer.
            if hedge_span is not None:
                hedge_span.finish("hedge_lost")
            return await primary
        except asyncio.CancelledError:
            await self._reap(primary)
            await self._reap(hedge)
            if hedge_span is not None:
                hedge_span.finish("cancelled")
            raise

    async def _hedge_once(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        key: str | None,
        avoid: set[int],
    ) -> tuple[bool, Any]:
        """One duplicate attempt on a replica the primary has not used.

        Returns ``(True, result)`` on success, ``(False, None)`` when no
        spare replica exists or the spare failed — never an exception
        (short of cancellation), so a doomed hedge cannot preempt the
        primary's real answer or error.
        """
        require_mapper = method == "map_read"
        replica = self._select(avoid, require_mapper=require_mapper, key=key)
        if replica is None:
            return False, None
        self.hedges += 1
        replica.dispatched += 1
        trace = current_trace() if self.trace else None
        # The duplicate's own attempt span, tagged hedge=True; when the
        # primary wins the reap cancels this task and the span closes
        # "cancelled" — the loser stays visible in the breakdown.
        span = (
            trace.begin(
                "attempt", replica=replica.name, method=method, hedge=True
            )
            if trace is not None
            else None
        )
        started = time.monotonic()
        try:
            result = await getattr(replica.server, method)(*args, **kwargs)
        except asyncio.CancelledError:
            if span is not None:
                span.finish("cancelled")
            raise
        except ServerClosedError:
            if span is not None:
                span.finish("rerouted")
            replica.stopped = True
            return False, None
        except ValueError:
            # Input rejection: the primary will surface the same error;
            # cooling the replica for a poison request would be wrong.
            if span is not None:
                span.finish("rejected")
            return False, None
        except DeadlineExceededError:
            # The duplicate's queued copy outlived the request's budget;
            # the primary is the authoritative answer (or expiry).
            if span is not None:
                span.finish("expired")
            return False, None
        except Exception:  # noqa: BLE001 - primary is authoritative
            if span is not None:
                span.finish("failed")
            replica.record_failure(time.monotonic())
            return False, None
        if span is not None:
            span.finish("ok")
        replica.record_success(time.monotonic() - started)
        return True, result

    @staticmethod
    async def _reap(task: "asyncio.Task[Any]") -> None:
        """Cancel (if still running) and silence one raced sibling task.

        The loser of a hedge race must be awaited — an abandoned task
        would leak "exception was never retrieved" noise — but whatever
        it produced is discarded: exactly one answer surfaces.
        """
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        except Exception:  # noqa: BLE001 - loser's outcome is discarded
            pass

    # ------------------------------------------------------------------
    # Capacity and lifecycle
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> Sequence[Replica]:
        """The replicas behind the router (read-only view)."""
        return tuple(self._replicas)

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy instance in use."""
        return self._policy

    @property
    def pending(self) -> int:
        """Requests queued (not yet flushed) across all replicas."""
        return sum(r.server.pending for r in self._replicas)

    @property
    def in_flight(self) -> int:
        """Requests holding a slot on any replica."""
        return sum(r.server.in_flight for r in self._replicas)

    @property
    def max_pending(self) -> int:
        """Total pending slots across live replicas."""
        return sum(r.server.max_pending for r in self._replicas if r.live)

    @property
    def saturated(self) -> bool:
        """True when no live replica has a free slot — shed, don't queue."""
        live = [r for r in self._replicas if r.live]
        return all(r.server.saturated for r in live) if live else True

    @property
    def engine_name(self) -> str:
        """Composite backend name, e.g. ``cluster(2x pure)``."""
        names = [r.server.engine_name for r in self._replicas]
        if len(set(names)) == 1:
            return f"cluster({len(names)}x {names[0]})"
        return f"cluster({', '.join(names)})"

    @property
    def mapper(self) -> "ReadMapper | None":
        """A mapper capable of serving ``map_read`` right now.

        Only *live* replicas count: once every mapper-bearing replica is
        drained, ``map_read`` is unservable and callers (the HTTP front's
        ``/v1/map`` pre-check) should see that as "no mapper", not queue
        behind capacity that cannot help.
        """
        for replica in self._replicas:
            if replica.live and replica.server.mapper is not None:
                return replica.server.mapper
        return None

    @property
    def stats(self) -> ServingStats:
        """Replica serving stats merged into one (histograms pooled)."""
        merged = ServingStats()
        for replica in self._replicas:
            merged.merge(replica.server.stats)
        return merged

    @property
    def cache_stats(self) -> "CacheStats | None":
        """Replica cache counters summed cluster-wide (None if uncached)."""
        merged: CacheStats | None = None
        for replica in self._replicas:
            cache = replica.server.cache
            if cache is None:
                continue
            if merged is None:
                merged = CacheStats()
            merged.merge(cache.stats)
        return merged

    def suggested_retry_after(self) -> float:
        """Soonest any live replica expects to free capacity, seconds."""
        live = [r for r in self._replicas if r.live]
        if not live:
            return 1.0
        return min(r.server.suggested_retry_after() for r in live)

    def health_payload(self) -> dict[str, Any]:
        """Liveness/load fields for ``GET /healthz``."""
        return {
            "engine": self.engine_name,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "saturated": self.saturated,
            "replicas": [
                {
                    "name": r.name,
                    "state": r.state,
                    "in_flight": r.server.in_flight,
                    "saturated": r.server.saturated,
                }
                for r in self._replicas
            ],
        }

    def stats_payload(self) -> dict[str, Any]:
        """Cluster-wide and per-replica blocks for ``GET /v1/stats``."""
        payload: dict[str, Any] = {
            "engine": self.engine_name,
            "cluster": {
                "policy": self._policy.name,
                "replicas": len(self._replicas),
                "live": sum(1 for r in self._replicas if r.live),
                "shed": self.shed,
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
            },
            "serving": self.stats.to_dict(),
            "replicas": [r.to_dict() for r in self._replicas],
        }
        if self.hedge:
            payload["hedging"] = {
                "enabled": True,
                "quantile": self.hedge_quantile,
                "delay_ms": self.hedge_delay() * 1000.0,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
            }
        cache_stats = self.cache_stats
        if cache_stats is not None:
            payload["cache"] = cache_stats.to_dict()
        if self._autoscaler is not None:
            payload["autoscaler"] = self._autoscaler.to_dict()
        return payload

    def _resolve(self, which: int | str) -> Replica:
        if isinstance(which, int):
            return self._replicas[which]
        for replica in self._replicas:
            if replica.name == which:
                return replica
        raise KeyError(f"no replica named {which!r}")

    async def drain_replica(self, which: int | str) -> None:
        """Take one replica out of rotation and drain it cleanly.

        New requests stop routing to it immediately; whatever it holds is
        flushed and answered; then its server (and private engine) shuts
        down. Idempotent.
        """
        replica = self._resolve(which)
        replica.draining = True
        await replica.server.stop()
        replica.stopped = True

    def add_replica(self, *, server: AlignmentServer | None = None) -> Replica:
        """Grow the cluster by one replica, in rotation immediately.

        Without ``server`` the cluster rebuilds from its own recipe —
        the same engine spec/factory, mapper template, and server kwargs
        the constructor used — so an autoscaler can add capacity without
        knowing how the cluster was put together. Clusters built from
        pre-made ``servers=`` have no recipe and require an explicit
        ``server``.
        """
        if self._closed:
            raise ServerClosedError("cluster is stopped")
        if server is None:
            if not self._buildable:
                raise RuntimeError(
                    "cluster was built from pre-made servers; pass server= "
                    "to add_replica"
                )
            server = self._build_server(self._next_index)
        replica = Replica(
            f"replica-{self._next_index}",
            server,
            failure_cooldown=self._failure_cooldown,
        )
        self._next_index += 1
        self._replicas.append(replica)
        return replica

    def attach_autoscaler(self, scaler: Any) -> None:
        """Surface ``scaler.to_dict()`` under ``autoscaler`` in stats."""
        self._autoscaler = scaler

    def enable_tracing(self, enabled: bool = True) -> None:
        """Switch span recording on/off, here and on every replica.

        Replicas added later inherit the setting — the construction
        recipe reads the live flag.
        """
        self.trace = enabled
        for replica in self._replicas:
            replica.server.enable_tracing(enabled)

    def collect_metrics(self) -> list[MetricFamily]:
        """Metric families for the cluster (registry collector surface).

        Iterates the replica list at scrape time, so series appear and
        disappear as the autoscaler grows and drains the cluster; the
        attached autoscaler's own families ride along.
        """
        membership = MetricFamily(
            "genasm_cluster_replicas",
            "gauge",
            "Replica count by liveness.",
        )
        membership.add(len(self._replicas), state="total")
        membership.add(
            sum(1 for r in self._replicas if r.live), state="live"
        )
        events = MetricFamily(
            "genasm_cluster_events_total",
            "counter",
            "Routing events: sheds, retries, hedges, hedge wins.",
        )
        for kind, value in (
            ("shed", self.shed),
            ("retry", self.retries),
            ("hedge", self.hedges),
            ("hedge_win", self.hedge_wins),
        ):
            events.add(value, kind=kind)
        dispatch = MetricFamily(
            "genasm_cluster_replica_requests_total",
            "counter",
            "Per-replica dispatch outcomes seen by the router.",
        )
        latency = MetricFamily(
            "genasm_cluster_replica_latency_seconds",
            "histogram",
            "Router-observed per-replica request latency.",
        )
        families = [membership, events, dispatch, latency]
        for replica in self._replicas:
            for outcome, value in (
                ("dispatched", replica.dispatched),
                ("completed", replica.completed),
                ("failed", replica.failed),
            ):
                dispatch.add(value, replica=replica.name, outcome=outcome)
            latency.add_histogram(replica.latency, replica=replica.name)
            families.extend(replica.server.collect_metrics())
        if self._autoscaler is not None:
            autoscaler_metrics = getattr(
                self._autoscaler, "collect_metrics", None
            )
            if autoscaler_metrics is not None:
                families.extend(autoscaler_metrics())
        return families

    async def stop(self) -> None:
        """Drain every replica concurrently; reject later submissions."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.draining = True
        await asyncio.gather(*(r.server.stop() for r in self._replicas))
        for replica in self._replicas:
            replica.stopped = True

    async def __aenter__(self) -> "AlignmentCluster":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()
