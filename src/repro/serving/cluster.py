"""Replicated serving: a health-aware router over N alignment servers.

GenASM gets its throughput from many independent ASM units working in
parallel; the serving-layer analogue is many :class:`AlignmentServer`
replicas — each with its *own* engine instance (its own process pool,
scratch arrays, eventually its own device) — behind one router.
:class:`AlignmentCluster` is that router. It exposes the same request
surface as a single server (``scan`` / ``edit_distance`` / ``align`` /
``map_read``), so the HTTP front and every other caller mounts a cluster
exactly like a server, and adds three things a single server cannot have:

**Pluggable dispatch.** A :class:`RoutingPolicy` picks the replica for
each request from the currently *eligible* ones: ``round_robin`` (fair,
oblivious), ``least_in_flight`` (join-the-shortest-queue), and
``latency_ewma`` (each replica scored by its smoothed observed latency,
scaled by its queue depth — a degraded replica prices itself out of
rotation within a few requests). Policies register by name via
:func:`register_policy`, so new ones plug in without touching the router.

**Replica-aware load shedding.** A replica that is saturated (all
``max_pending`` slots taken), draining, stopped, or cooling down after
consecutive failures is simply *skipped* — the request goes elsewhere.
Only when **every** live replica is saturated does the cluster shed, and
the :class:`ClusterSaturatedError` it raises carries a ``retry_after``
computed from the replicas' observed flush windows and service-time EWMAs
(the soonest any replica expects to free capacity), not a constant.

**Failure containment.** An engine exception marks the replica as failing
(exponential cooldown after consecutive failures) and the request is
retried on a different replica — engine calls are pure functions of their
payload, so a retry can never duplicate an effect, and every submitted
request is answered exactly once: with the first successful result, or
with the last error once no replica remains to try. A replica can be
drained mid-flight (:meth:`AlignmentCluster.drain_replica`): it stops
receiving new work immediately, finishes what it holds, and its in-flight
requests complete normally.

Per-replica latency lands in mergeable log-bucket histograms
(:mod:`repro.serving.histogram`), so ``/v1/stats`` reports true
cluster-wide p50/p90/p99 as well as per-replica percentiles without any
sample buffers.
"""

from __future__ import annotations

import asyncio
import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Sequence

from repro.engine.registry import create_engine
from repro.serving.histogram import LatencyHistogram
from repro.serving.server import AlignmentServer, ServerClosedError, ServingStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aligner import Alignment
    from repro.core.bitap import BitapMatch
    from repro.engine.registry import AlignmentEngine
    from repro.mapping.pipeline import MappingResult, ReadMapper


class ClusterSaturatedError(RuntimeError):
    """Every live replica is at capacity; retry after ``retry_after`` s.

    The HTTP front maps this to ``503`` with a ``Retry-After`` header
    carrying the hint.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class Replica:
    """One :class:`AlignmentServer` behind the router, plus its telemetry.

    The router never looks inside the server; everything it needs for
    dispatch — queue depth, saturation, smoothed latency, failure state —
    lives here or on the server's public surface.
    """

    def __init__(
        self,
        name: str,
        server: AlignmentServer,
        *,
        latency_smoothing: float = 0.25,
        failure_cooldown: float = 0.25,
    ) -> None:
        self.name = name
        self.server = server
        self.latency = LatencyHistogram()
        self.ewma_latency: float | None = None
        self.latency_smoothing = latency_smoothing
        self.failure_cooldown = failure_cooldown
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.consecutive_failures = 0
        self.cooldown_until = 0.0
        self.draining = False
        self.stopped = False

    @property
    def live(self) -> bool:
        """Whether this replica may still be offered new work at all."""
        return not self.draining and not self.stopped

    def eligible(self, now: float) -> bool:
        """Whether the router may dispatch to this replica right now."""
        return self.live and not self.server.saturated and now >= self.cooldown_until

    @property
    def state(self) -> str:
        """Human-readable state for health and stats payloads."""
        if self.stopped:
            return "stopped"
        if self.draining:
            return "draining"
        if time.monotonic() < self.cooldown_until:
            return "cooldown"
        if self.server.saturated:
            return "saturated"
        return "up"

    def record_success(self, seconds: float) -> None:
        self.completed += 1
        self.consecutive_failures = 0
        self.cooldown_until = 0.0
        self.latency.record(seconds)
        if self.ewma_latency is None:
            self.ewma_latency = seconds
        else:
            alpha = self.latency_smoothing
            self.ewma_latency = alpha * seconds + (1.0 - alpha) * self.ewma_latency

    def record_failure(self, now: float) -> None:
        """Count one engine failure and back off exponentially.

        The cooldown doubles per consecutive failure (capped at 16x), so a
        replica whose engine is throwing gets probed at a decaying rate
        instead of eating a retry from every request.
        """
        self.failed += 1
        self.consecutive_failures += 1
        backoff = min(2 ** (self.consecutive_failures - 1), 16)
        self.cooldown_until = now + self.failure_cooldown * backoff

    def to_dict(self) -> dict[str, Any]:
        """Per-replica block of the cluster's ``/v1/stats`` payload."""
        return {
            "name": self.name,
            "state": self.state,
            "engine": self.server.engine_name,
            "pending": self.server.pending,
            "in_flight": self.server.in_flight,
            "saturated": self.server.saturated,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "latency": self.latency.to_dict(),
            "serving": self.server.stats.to_dict(),
        }


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class RoutingPolicy(ABC):
    """Picks one replica from the eligible candidates for each request."""

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def select(self, candidates: Sequence[Replica]) -> Replica:
        """Choose from ``candidates`` (never empty, all eligible)."""


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the eligible replicas in order — fair and oblivious."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, candidates: Sequence[Replica]) -> Replica:
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


class LeastInFlightPolicy(RoundRobinPolicy):
    """Join the shortest queue; ties broken round-robin."""

    name = "least_in_flight"

    def select(self, candidates: Sequence[Replica]) -> Replica:
        depth = min(c.server.in_flight for c in candidates)
        shortest = [c for c in candidates if c.server.in_flight == depth]
        return super().select(shortest)


class LatencyEwmaPolicy(RoundRobinPolicy):
    """Score replicas by smoothed latency scaled by queue depth.

    A replica's expected cost is roughly its per-request latency times the
    work already ahead of a new arrival, so the score is
    ``ewma_latency * (1 + in_flight)``. Replicas with no observations yet
    score zero — optimistically cheap — so every replica gets probed and
    earns a real EWMA; a degraded replica's score then keeps it out of
    rotation until the others grow queues long enough to make it the
    cheaper option again.
    """

    name = "latency_ewma"

    def select(self, candidates: Sequence[Replica]) -> Replica:
        def score(replica: Replica) -> float:
            if replica.ewma_latency is None:
                return 0.0
            return replica.ewma_latency * (1 + replica.server.in_flight)

        best = min(score(c) for c in candidates)
        cheapest = [c for c in candidates if score(c) == best]
        return super().select(cheapest)


ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {}


def register_policy(policy_cls: type[RoutingPolicy]) -> type[RoutingPolicy]:
    """Register a policy class under its ``name`` (usable as a decorator)."""
    if not policy_cls.name or policy_cls.name == RoutingPolicy.name:
        raise ValueError(f"{policy_cls.__name__} must define a concrete name")
    ROUTING_POLICIES[policy_cls.name] = policy_cls
    return policy_cls


for _cls in (RoundRobinPolicy, LeastInFlightPolicy, LatencyEwmaPolicy):
    register_policy(_cls)


def make_policy(spec: RoutingPolicy | str) -> RoutingPolicy:
    """Resolve ``spec`` to a policy instance (name or ready instance)."""
    if isinstance(spec, RoutingPolicy):
        return spec
    policy_cls = ROUTING_POLICIES.get(spec)
    if policy_cls is None:
        raise ValueError(
            f"unknown routing policy {spec!r}; "
            f"registered: {sorted(ROUTING_POLICIES)}"
        )
    return policy_cls()


# ----------------------------------------------------------------------
# The cluster router
# ----------------------------------------------------------------------
class AlignmentCluster:
    """Router fronting N :class:`AlignmentServer` replicas.

    Parameters
    ----------
    replicas:
        How many replicas to build (ignored when ``servers`` is given).
        Each gets a **fresh** engine instance via
        :func:`repro.engine.registry.create_engine`.
    servers:
        Pre-built servers to front instead — the caller owns their
        configuration; every other construction knob is then rejected.
    engine:
        Engine *name* (or None for the environment default) constructed
        fresh per replica. Pass an instance only via ``engine_factory``
        or ``servers`` — a shared instance defeats replication.
    engine_factory:
        ``f(replica_index) -> engine`` for heterogeneous replicas (e.g.
        one sharded + one batched, or injected test doubles).
    mapper / mapper_factory:
        A :class:`~repro.mapping.pipeline.ReadMapper` template for
        ``map_read`` requests, or a per-replica factory. A template
        mapper is rebuilt per replica from its
        :meth:`~repro.mapping.pipeline.ReadMapper.shard_spec` over the
        replica's private engine (genome/index shared, engine state not);
        mappers with custom callables are not spec-representable and
        stay shared across replicas — use ``mapper_factory`` for those.
    policy:
        Routing policy name or instance (default ``least_in_flight``).
    failure_cooldown:
        Base seconds a replica sits out after an engine failure (doubled
        per consecutive failure, capped at 16x).
    max_attempts:
        Replicas tried per request before giving up (default: all).
    **server_kwargs:
        Forwarded to every built :class:`AlignmentServer`
        (``batch_size=``, ``flush_interval=``, ``max_pending=``,
        ``adaptive_flush=``, ...).
    """

    def __init__(
        self,
        *,
        replicas: int = 2,
        servers: Sequence[AlignmentServer] | None = None,
        engine: "str | None" = None,
        engine_factory: "Callable[[int], AlignmentEngine] | None" = None,
        mapper: "ReadMapper | None" = None,
        mapper_factory: "Callable[[int], ReadMapper] | None" = None,
        policy: RoutingPolicy | str = "least_in_flight",
        failure_cooldown: float = 0.25,
        max_attempts: int | None = None,
        **server_kwargs: Any,
    ) -> None:
        if servers is not None:
            if engine is not None or engine_factory or mapper or mapper_factory:
                raise ValueError(
                    "pass either pre-built servers or construction knobs, "
                    "not both"
                )
            if server_kwargs:
                raise ValueError(
                    "server kwargs apply only when the cluster builds its "
                    "own replicas"
                )
            built = list(servers)
            if not built:
                raise ValueError("servers must be non-empty")
        else:
            if replicas < 1:
                raise ValueError("replicas must be at least 1")
            if engine is not None and engine_factory is not None:
                raise ValueError("pass engine or engine_factory, not both")
            if engine is not None and not isinstance(engine, str):
                # One instance shared by N concurrently-flushing worker
                # threads is the exact hazard this class exists to
                # prevent; make it an immediate error, not a data race.
                raise ValueError(
                    "engine must be a backend name; pass instances via "
                    "engine_factory (one per replica) or servers"
                )
            built = []
            for index in range(replicas):
                if engine_factory is not None:
                    replica_engine: Any = engine_factory(index)
                elif engine is None and mapper is not None:
                    # Derive the engine from the mapper's spec, but still
                    # one fresh instance per replica: a name (or None)
                    # must not collapse onto the shared get_engine
                    # singleton across concurrently-flushing replicas.
                    # An engine *instance* on the mapper passes through —
                    # the caller already chose to share it, like the
                    # mapper itself.
                    replica_engine = create_engine(mapper.engine)
                else:
                    replica_engine = create_engine(engine)
                if mapper_factory is not None:
                    replica_mapper = mapper_factory(index)
                elif mapper is not None:
                    # Rebuild a private mapper per replica over the
                    # replica's private engine (via MapperSpec), so map
                    # flushes from N worker threads never race on one
                    # mapper/engine. Mappers with custom callables are
                    # not spec-representable and stay shared — the same
                    # in-process fallback the sharded mapper uses; prefer
                    # mapper_factory for those.
                    spec = mapper.shard_spec()
                    replica_mapper = (
                        spec.build(replica_engine)
                        if spec is not None
                        else mapper
                    )
                else:
                    replica_mapper = None
                built.append(
                    AlignmentServer(
                        engine=replica_engine,
                        mapper=replica_mapper,
                        **server_kwargs,
                    )
                )
        self._replicas = [
            Replica(
                f"replica-{index}",
                server,
                failure_cooldown=failure_cooldown,
            )
            for index, server in enumerate(built)
        ]
        self._policy = make_policy(policy)
        self.max_attempts = max_attempts
        self._closed = False
        self.shed = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Request entry points (mirror AlignmentServer)
    # ------------------------------------------------------------------
    async def scan(
        self,
        text: str,
        pattern: str,
        k: int,
        *,
        first_match_only: bool = False,
    ) -> "list[BitapMatch]":
        """Bitap-scan one (text, pattern) pair on some replica."""
        return await self._submit(
            "scan", (text, pattern, k), {"first_match_only": first_match_only}
        )

    async def edit_distance(
        self, text: str, pattern: str, k: int
    ) -> int | None:
        """Minimum semi-global edit distance (None above ``k``)."""
        return await self._submit("edit_distance", (text, pattern, k), {})

    async def align(self, text: str, pattern: str) -> "Alignment":
        """Full GenASM alignment of one pair on some replica."""
        return await self._submit("align", (text, pattern), {})

    async def map_read(self, name: str, read: str) -> "MappingResult":
        """Map one read through some replica's attached mapper."""
        if self.mapper is None:
            raise RuntimeError(
                "map_read requires a cluster constructed with mapper=..."
            )
        return await self._submit("map_read", (name, read), {})

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _select(
        self, tried: set[int], *, require_mapper: bool = False
    ) -> Replica | None:
        """Pick the next replica to try, or None when none can take work.

        Preference order: policy choice among fully eligible replicas;
        failing that, the cooling-down replica whose cooldown ends
        soonest (a half-open probe — shedding while unsaturated capacity
        exists, even suspect capacity, would be premature).
        ``require_mapper`` restricts the pool to replicas that can serve
        ``map_read`` at all — a mapper-less replica answering one with a
        RuntimeError is a routing mistake, not a replica failure.
        """
        now = time.monotonic()

        def routable(replica: Replica) -> bool:
            if id(replica) in tried:
                return False
            return not require_mapper or replica.server.mapper is not None

        candidates = [
            r for r in self._replicas if routable(r) and r.eligible(now)
        ]
        if candidates:
            return self._policy.select(candidates)
        cooling = [
            r
            for r in self._replicas
            if routable(r) and r.live and not r.server.saturated
        ]
        if cooling:
            return min(cooling, key=lambda r: r.cooldown_until)
        return None

    async def _submit(self, method: str, args: tuple, kwargs: dict) -> Any:
        if self._closed:
            raise ServerClosedError("cluster is stopped")
        tried: set[int] = set()
        budget = (
            self.max_attempts
            if self.max_attempts is not None
            else len(self._replicas)
        )
        last_error: Exception | None = None
        require_mapper = method == "map_read"
        while budget > 0:
            replica = self._select(tried, require_mapper=require_mapper)
            if replica is None:
                break
            budget -= 1
            replica.dispatched += 1
            started = time.monotonic()
            try:
                result = await getattr(replica.server, method)(*args, **kwargs)
            except asyncio.CancelledError:
                raise
            except ServerClosedError:
                # Raced a drain/stop of that server: it never accepted the
                # request, so trying elsewhere cannot duplicate anything.
                replica.stopped = True
                tried.add(id(replica))
                self.retries += 1
                continue
            except ValueError:
                # Input rejections (bad symbols, negative k, ...) are the
                # *request's* fault: every replica would refuse it the
                # same way. Surface it untouched — no failure recorded,
                # no retry burned.
                raise
            except Exception as exc:  # noqa: BLE001 - judged per replica
                # Engine calls are pure functions of the payload; the
                # failed replica produced no result, so a retry on a
                # different replica still answers the request exactly once.
                replica.record_failure(time.monotonic())
                tried.add(id(replica))
                last_error = exc
                if self._select(tried, require_mapper=require_mapper) is None:
                    raise
                self.retries += 1
                continue
            replica.record_success(time.monotonic() - started)
            return result
        if last_error is not None:
            raise last_error
        live = [r for r in self._replicas if r.live]
        if not live:
            raise ServerClosedError("every replica is draining or stopped")
        if require_mapper and not any(
            r.server.mapper is not None for r in live
        ):
            # Terminal, not retryable: no amount of waiting gives a
            # mapper-less replica a mapper. A 503 here would have
            # clients Retry-After forever.
            raise RuntimeError(
                "no live replica has a mapper to serve map_read"
            )
        self.shed += 1
        raise ClusterSaturatedError(
            f"all {len(live)} replicas are at capacity",
            retry_after=self.suggested_retry_after(),
        )

    # ------------------------------------------------------------------
    # Capacity and lifecycle
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> Sequence[Replica]:
        """The replicas behind the router (read-only view)."""
        return tuple(self._replicas)

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy instance in use."""
        return self._policy

    @property
    def pending(self) -> int:
        """Requests queued (not yet flushed) across all replicas."""
        return sum(r.server.pending for r in self._replicas)

    @property
    def in_flight(self) -> int:
        """Requests holding a slot on any replica."""
        return sum(r.server.in_flight for r in self._replicas)

    @property
    def max_pending(self) -> int:
        """Total pending slots across live replicas."""
        return sum(r.server.max_pending for r in self._replicas if r.live)

    @property
    def saturated(self) -> bool:
        """True when no live replica has a free slot — shed, don't queue."""
        live = [r for r in self._replicas if r.live]
        return all(r.server.saturated for r in live) if live else True

    @property
    def engine_name(self) -> str:
        """Composite backend name, e.g. ``cluster(2x pure)``."""
        names = [r.server.engine_name for r in self._replicas]
        if len(set(names)) == 1:
            return f"cluster({len(names)}x {names[0]})"
        return f"cluster({', '.join(names)})"

    @property
    def mapper(self) -> "ReadMapper | None":
        """A mapper capable of serving ``map_read`` right now.

        Only *live* replicas count: once every mapper-bearing replica is
        drained, ``map_read`` is unservable and callers (the HTTP front's
        ``/v1/map`` pre-check) should see that as "no mapper", not queue
        behind capacity that cannot help.
        """
        for replica in self._replicas:
            if replica.live and replica.server.mapper is not None:
                return replica.server.mapper
        return None

    @property
    def stats(self) -> ServingStats:
        """Replica serving stats merged into one (histograms pooled)."""
        merged = ServingStats()
        for replica in self._replicas:
            merged.merge(replica.server.stats)
        return merged

    def suggested_retry_after(self) -> float:
        """Soonest any live replica expects to free capacity, seconds."""
        live = [r for r in self._replicas if r.live]
        if not live:
            return 1.0
        return min(r.server.suggested_retry_after() for r in live)

    def health_payload(self) -> dict[str, Any]:
        """Liveness/load fields for ``GET /healthz``."""
        return {
            "engine": self.engine_name,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "saturated": self.saturated,
            "replicas": [
                {
                    "name": r.name,
                    "state": r.state,
                    "in_flight": r.server.in_flight,
                    "saturated": r.server.saturated,
                }
                for r in self._replicas
            ],
        }

    def stats_payload(self) -> dict[str, Any]:
        """Cluster-wide and per-replica blocks for ``GET /v1/stats``."""
        return {
            "engine": self.engine_name,
            "cluster": {
                "policy": self._policy.name,
                "replicas": len(self._replicas),
                "live": sum(1 for r in self._replicas if r.live),
                "shed": self.shed,
                "retries": self.retries,
            },
            "serving": self.stats.to_dict(),
            "replicas": [r.to_dict() for r in self._replicas],
        }

    def _resolve(self, which: int | str) -> Replica:
        if isinstance(which, int):
            return self._replicas[which]
        for replica in self._replicas:
            if replica.name == which:
                return replica
        raise KeyError(f"no replica named {which!r}")

    async def drain_replica(self, which: int | str) -> None:
        """Take one replica out of rotation and drain it cleanly.

        New requests stop routing to it immediately; whatever it holds is
        flushed and answered; then its server (and private engine) shuts
        down. Idempotent.
        """
        replica = self._resolve(which)
        replica.draining = True
        await replica.server.stop()
        replica.stopped = True

    async def stop(self) -> None:
        """Drain every replica concurrently; reject later submissions."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.draining = True
        await asyncio.gather(*(r.server.stop() for r in self._replicas))
        for replica in self._replicas:
            replica.stopped = True

    async def __aenter__(self) -> "AlignmentCluster":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()
