"""Closed-loop replica autoscaling for :class:`AlignmentCluster`.

The cluster already *exposes* every signal a capacity controller needs —
shed counts, mergeable latency histograms, per-replica queue depths —
and, as of the elastic layer, both actuators: :meth:`AlignmentCluster.\
add_replica` (regrow from the stored construction recipe) and
:meth:`AlignmentCluster.drain_replica` (graceful scale-down).
:class:`ClusterAutoscaler` closes the loop.

Each control tick takes a *window* of observations (sheds since the last
tick; the p99 of latencies recorded since the last tick, via histogram
snapshot subtraction — a lifetime p99 would take minutes to reflect a
load spike; a smoothed utilization of the pending-slot budget) and
applies ordered rules:

1. **Scale up** when the window shed more requests than
   ``shed_tolerance``, or its p99 exceeded ``target_p99_ms``, or smoothed
   utilization exceeded ``scale_up_utilization`` — any one suffices
   (shedding is the loudest signal and is checked first).
2. **Scale down** when smoothed utilization fell below
   ``scale_down_utilization`` *and nothing argued for scaling up* —
   draining the least-loaded live replica, so the work it must finish
   before leaving is minimal.
3. Otherwise **hold**.

Actions respect ``min_replicas``/``max_replicas`` bounds and a
``cooldown`` between consecutive actions (capacity just added needs time
to show up in the signals; reacting to the pre-action window again would
oscillate). Every tick appends an :class:`AutoscalerDecision` to a
bounded decision log that :meth:`to_dict` surfaces under the cluster's
``/v1/stats`` — the convergence trace ``bench_elastic`` plots, and the
first thing to read when capacity did something surprising.

The loop itself is a plain asyncio task (:meth:`start` / :meth:`stop`),
but every piece is callable synchronously — :meth:`evaluate` with an
injected clock in tests, :meth:`step` once from a bench — so control
behaviour is testable without sleeping through real cooldowns.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.serving.observability import (
    EventRateLimiter,
    MetricFamily,
    MetricsRegistry,
    get_logger,
    log_event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.cluster import AlignmentCluster
    from repro.serving.histogram import LatencyHistogram

_LOGGER = get_logger("autoscaler")


@dataclass
class AutoscalerDecision:
    """One control-tick verdict: what was done, on which evidence."""

    at: float
    action: str  # "scale_up" | "scale_down" | "hold"
    reason: str
    replicas: int
    live: int
    shed_delta: int = 0
    window_p99_ms: float | None = None
    utilization: float = 0.0
    #: Endpoint whose window p99 drove the latency signal (None when the
    #: signal came from the replica-wide histogram).
    p99_endpoint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Wire form for the decision log in ``/v1/stats``."""
        return {
            "at": self.at,
            "action": self.action,
            "reason": self.reason,
            "replicas": self.replicas,
            "live": self.live,
            "shed_delta": self.shed_delta,
            "window_p99_ms": self.window_p99_ms,
            "utilization": self.utilization,
            "p99_endpoint": self.p99_endpoint,
        }


@dataclass
class _Window:
    """Signals measured over one control interval."""

    shed_delta: int = 0
    p99_ms: float | None = None
    #: Endpoint the p99 came from (None for the replica-wide fallback).
    p99_endpoint: str | None = None
    utilization: float = 0.0
    smoothed_utilization: float = 0.0
    samples: int = 0
    live: int = 0


class ClusterAutoscaler:
    """Threshold controller growing/shrinking an ``AlignmentCluster``.

    Parameters
    ----------
    cluster:
        The cluster to control. Must be able to :meth:`add_replica` from
        its own recipe (built from construction knobs, not pre-made
        ``servers=``) for scale-up to work.
    min_replicas, max_replicas:
        Inclusive bounds on *live* replicas. Scale-down never drains
        below the floor; scale-up never grows past the ceiling.
    interval:
        Seconds between control ticks when :meth:`run` drives the loop.
    cooldown:
        Minimum seconds between consecutive scale actions. Holds are
        free; actions taken while their predecessor's capacity change is
        still propagating through the signals cause oscillation.
    target_p99_ms:
        Window p99 (milliseconds) above which the cluster is considered
        too slow. None disables the latency rule.
    shed_tolerance:
        Sheds per window tolerated before scaling up (default 0: any
        shedding is an immediate capacity failure).
    scale_up_utilization, scale_down_utilization:
        Smoothed pending-slot utilization thresholds for growing and
        shrinking.
    utilization_smoothing:
        EWMA factor applied to the instantaneous utilization sample each
        tick (higher = reacts faster, oscillates easier).
    decision_log_size:
        Ticks kept in the decision log surfaced via :meth:`to_dict`.
    registry:
        Optional :class:`~repro.serving.observability.MetricsRegistry`
        whose ``latency_family`` histograms drive the latency rule
        **per endpoint**: the window p99 becomes the worst endpoint's
        p99, so a burst of cheap ``/v1/scan`` traffic cannot dilute a
        degraded ``/v1/align`` tail into looking healthy. Without a
        registry (or before the family has series) the replica-wide
        histogram is the fallback signal.
    latency_family:
        Histogram family name read from ``registry`` (default: the HTTP
        front's per-endpoint request-duration family).
    """

    def __init__(
        self,
        cluster: "AlignmentCluster",
        *,
        min_replicas: int = 1,
        max_replicas: int = 8,
        interval: float = 1.0,
        cooldown: float = 5.0,
        target_p99_ms: float | None = None,
        shed_tolerance: int = 0,
        scale_up_utilization: float = 0.75,
        scale_down_utilization: float = 0.25,
        utilization_smoothing: float = 0.3,
        decision_log_size: int = 64,
        registry: "MetricsRegistry | None" = None,
        latency_family: str = "genasm_http_request_duration_seconds",
    ) -> None:
        if min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be at least min_replicas")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if not 0.0 < utilization_smoothing <= 1.0:
            raise ValueError("utilization_smoothing must be in (0, 1]")
        if not 0.0 <= scale_down_utilization < scale_up_utilization <= 1.0:
            raise ValueError(
                "need 0 <= scale_down_utilization < scale_up_utilization <= 1"
            )
        self.cluster = cluster
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval = interval
        self.cooldown = cooldown
        self.target_p99_ms = target_p99_ms
        self.shed_tolerance = shed_tolerance
        self.scale_up_utilization = scale_up_utilization
        self.scale_down_utilization = scale_down_utilization
        self.utilization_smoothing = utilization_smoothing
        self.decisions: "deque[AutoscalerDecision]" = deque(
            maxlen=decision_log_size
        )
        self.scale_ups = 0
        self.scale_downs = 0
        self.registry = registry
        self.latency_family = latency_family
        self._last_shed = cluster.shed
        self._latency_mark: "LatencyHistogram" = (
            cluster.stats.latency.snapshot()
        )
        #: Per-endpoint snapshot marks for windowed registry histograms,
        #: keyed by the family sample's sorted label tuple.
        self._endpoint_marks: dict[tuple, "LatencyHistogram"] = {}
        self._events = EventRateLimiter()
        self._smoothed_utilization = 0.0
        self._last_action_at: float | None = None
        self._pending_drain: Any = None
        self._task: "asyncio.Task[None] | None" = None
        cluster.attach_autoscaler(self)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def observe(self) -> _Window:
        """Measure one control window and advance the marks.

        Sheds and latency are *deltas* since the previous call (lifetime
        aggregates answer "how has it been", not "how is it now");
        utilization is an instantaneous sample folded into the EWMA.
        """
        window = _Window()
        shed = self.cluster.shed
        window.shed_delta = shed - self._last_shed
        self._last_shed = shed

        p99, endpoint, samples = self._windowed_p99()
        window.samples = samples
        window.p99_ms = None if p99 is None else p99 * 1000.0
        window.p99_endpoint = endpoint

        budget = self.cluster.max_pending
        load = self.cluster.pending + self.cluster.in_flight
        window.utilization = (load / budget) if budget else 1.0
        alpha = self.utilization_smoothing
        self._smoothed_utilization = (
            alpha * window.utilization
            + (1.0 - alpha) * self._smoothed_utilization
        )
        window.smoothed_utilization = self._smoothed_utilization
        window.live = sum(1 for r in self.cluster.replicas if r.live)
        return window

    def _windowed_p99(self) -> tuple[float | None, str | None, int]:
        """``(p99_seconds, endpoint, window_samples)`` for this tick.

        With a registry: the window p99 of **each** series in the
        configured latency family, and the worst one wins — per-endpoint
        resolution means a flood of fast ``/v1/scan`` samples cannot
        pull a degraded ``/v1/align`` p99 back under target, which is
        exactly what happens when all endpoints share one histogram.
        Falls back to the cluster-wide histogram when no registry is
        attached or the family has no series yet.
        """
        if self.registry is not None:
            histograms = self.registry.histogram_objects(self.latency_family)
            if histograms:
                worst: float | None = None
                worst_endpoint: str | None = None
                samples = 0
                for labels, histogram in histograms.items():
                    mark = self._endpoint_marks.get(labels)
                    windowed = (
                        histogram.since(mark)
                        if mark is not None
                        else histogram
                    )
                    self._endpoint_marks[labels] = histogram.snapshot()
                    samples += windowed.count
                    p99 = windowed.quantile(0.99)
                    if p99 is not None and (worst is None or p99 > worst):
                        worst = p99
                        worst_endpoint = dict(labels).get(
                            "endpoint", "/".join(v for _, v in labels)
                        )
                # Keep the replica-wide mark advancing so a later
                # fallback window starts now, not at attach time.
                self._latency_mark = self.cluster.stats.latency.snapshot()
                return worst, worst_endpoint, samples
        latency = self.cluster.stats.latency
        windowed = latency.since(self._latency_mark)
        self._latency_mark = latency.snapshot()
        return windowed.quantile(0.99), None, windowed.count

    def _in_cooldown(self, now: float) -> bool:
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.cooldown
        )

    def _wants_up(self, window: _Window) -> str | None:
        """The first scale-up trigger the window crossed, or None."""
        if window.shed_delta > self.shed_tolerance:
            return (
                f"shed {window.shed_delta} requests in window "
                f"(tolerance {self.shed_tolerance})"
            )
        if (
            self.target_p99_ms is not None
            and window.p99_ms is not None
            and window.p99_ms > self.target_p99_ms
        ):
            where = (
                f" on {window.p99_endpoint}"
                if window.p99_endpoint is not None
                else ""
            )
            return (
                f"window p99 {window.p99_ms:.1f}ms{where} over target "
                f"{self.target_p99_ms:.1f}ms"
            )
        if window.smoothed_utilization > self.scale_up_utilization:
            return (
                f"utilization {window.smoothed_utilization:.2f} over "
                f"{self.scale_up_utilization:.2f}"
            )
        return None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def evaluate(self, now: float | None = None) -> AutoscalerDecision:
        """Run one control tick: observe, decide, act, log.

        Synchronous by design — scale-up (``add_replica``) is
        synchronous, and scale-down only *marks* the chosen replica as
        draining here, handing the actual (await-able) drain to
        :meth:`step`. Injectable ``now`` lets tests walk through
        cooldowns without sleeping.
        """
        if now is None:
            now = time.monotonic()
        window = self.observe()
        decision = self._decide(window, now)
        self.decisions.append(decision)
        return decision

    def _decide(self, window: _Window, now: float) -> AutoscalerDecision:
        def verdict(action: str, reason: str) -> AutoscalerDecision:
            decision = AutoscalerDecision(
                at=now,
                action=action,
                reason=reason,
                replicas=len(self.cluster.replicas),
                live=window.live,
                shed_delta=window.shed_delta,
                window_p99_ms=window.p99_ms,
                utilization=window.smoothed_utilization,
                p99_endpoint=window.p99_endpoint,
            )
            if action != "hold":
                log_event(
                    _LOGGER,
                    f"autoscaler.{action}",
                    limiter=self._events,
                    limit_key=action,
                    reason=reason,
                    replicas=decision.replicas,
                    live=decision.live,
                    shed_delta=decision.shed_delta,
                    window_p99_ms=decision.window_p99_ms,
                    utilization=decision.utilization,
                )
            return decision

        up_reason = self._wants_up(window)
        if self._in_cooldown(now):
            return verdict(
                "hold", "cooldown" + (f" (pending: {up_reason})" if up_reason else "")
            )
        if up_reason is not None:
            if window.live >= self.max_replicas:
                return verdict(
                    "hold", f"at max_replicas={self.max_replicas}: {up_reason}"
                )
            try:
                self.cluster.add_replica()
            except RuntimeError as exc:
                # A recipe-less (servers=) cluster cannot grow itself;
                # log the refusal instead of crashing the control loop.
                return verdict("hold", f"cannot scale up: {exc}")
            self.scale_ups += 1
            self._last_action_at = now
            return verdict("scale_up", up_reason)
        if (
            window.smoothed_utilization < self.scale_down_utilization
            and window.live > self.min_replicas
        ):
            victim = self._least_loaded()
            if victim is not None:
                victim.draining = True  # step()/the caller completes the drain
                self._pending_drain = victim
                self.scale_downs += 1
                self._last_action_at = now
                return verdict(
                    "scale_down",
                    f"utilization {window.smoothed_utilization:.2f} under "
                    f"{self.scale_down_utilization:.2f}; draining "
                    f"{victim.name}",
                )
        return verdict("hold", "signals within bounds")

    def _least_loaded(self) -> Any:
        live = [r for r in self.cluster.replicas if r.live]
        if len(live) <= self.min_replicas:
            return None
        return min(
            live, key=lambda r: (r.server.in_flight, r.server.pending)
        )

    async def step(self, now: float | None = None) -> AutoscalerDecision:
        """One async control tick: evaluate, then finish any drain."""
        self._pending_drain = None
        decision = self.evaluate(now)
        victim = self._pending_drain
        self._pending_drain = None
        if victim is not None:
            await self.cluster.drain_replica(victim.name)
        return decision

    async def run(self) -> None:
        """Tick every ``interval`` seconds until cancelled."""
        try:
            while True:
                await asyncio.sleep(self.interval)
                await self.step()
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            pass

    def start(self) -> None:
        """Spawn the control loop on the running event loop. Idempotent."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        """Cancel the control loop and wait for it to exit. Idempotent."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def collect_metrics(self) -> list[MetricFamily]:
        """Metric families for this controller (registry surface)."""
        actions = MetricFamily(
            "genasm_autoscaler_actions_total",
            "counter",
            "Scale actions taken since start.",
        )
        actions.add(self.scale_ups, action="scale_up")
        actions.add(self.scale_downs, action="scale_down")
        decisions = MetricFamily(
            "genasm_autoscaler_decisions_total",
            "counter",
            "Control-tick verdicts in the retained decision log.",
        )
        by_action: dict[str, int] = {}
        for decision in self.decisions:
            by_action[decision.action] = by_action.get(decision.action, 0) + 1
        for action in ("scale_up", "scale_down", "hold"):
            decisions.add(by_action.get(action, 0), action=action)
        utilization = MetricFamily(
            "genasm_autoscaler_utilization",
            "gauge",
            "Smoothed pending-slot utilization the controller sees.",
        ).add(self._smoothed_utilization)
        return [actions, decisions, utilization]

    def to_dict(self) -> dict[str, Any]:
        """The ``autoscaler`` block of the cluster's ``/v1/stats``."""
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "interval": self.interval,
            "cooldown": self.cooldown,
            "target_p99_ms": self.target_p99_ms,
            "shed_tolerance": self.shed_tolerance,
            "scale_up_utilization": self.scale_up_utilization,
            "scale_down_utilization": self.scale_down_utilization,
            "utilization": self._smoothed_utilization,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "running": self._task is not None and not self._task.done(),
            "decisions": [d.to_dict() for d in self.decisions],
        }
