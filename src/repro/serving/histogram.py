"""Fixed-boundary log-bucket latency histograms (mergeable, sample-free).

Percentile latency is the serving metric that matters — a mean hides the
tail a saturated replica inflicts — but storing every sample is exactly
what a server under millions of requests cannot do. The standard answer
(HdrHistogram, Prometheus native histograms) is a histogram over
*log-spaced* buckets: relative error is bounded by the bucket growth
factor, memory is a fixed few hundred counters, and recording is one
bisect plus an increment.

The boundaries here are **fixed at class level**, shared by every
instance. That single decision is what makes the type mergeable: two
histograms — one per replica, one per endpoint — merge by index-wise
count addition, and the merged histogram is *bit-identical* to the
histogram that would have been built from the pooled samples. A cluster's
``/v1/stats`` can therefore report true cluster-wide percentiles without
any replica ever shipping a sample.

Quantile extraction returns the **upper edge** of the bucket holding the
target rank (clamped to the observed maximum), so the estimate is
conservative: ``true_quantile <= estimate <= true_quantile * GROWTH`` for
values inside the bucket range — "within one bucket width", the bound the
property tests assert. Values below ``LOWEST`` land in the underflow
bucket (reported as ``LOWEST``); values above the top boundary land in
the overflow bucket and are reported as the observed maximum.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

#: Bucket growth factor: four buckets per octave, ~19% worst-case
#: relative error on any reported quantile.
GROWTH = 2.0 ** 0.25

#: Lower edge of the first real bucket (10 microseconds). Anything
#: faster is "instant" at serving granularity.
LOWEST = 1e-5

#: Number of log-spaced boundaries. 108 buckets of 2**0.25 span
#: 10 us .. ~1286 s, comfortably past any request this layer serves.
_N_BOUNDS = 108

#: Shared upper edges: bucket ``i`` holds values in
#: ``(_BOUNDS[i-1], _BOUNDS[i]]`` (bucket 0: ``(0, LOWEST]``); one extra
#: overflow bucket follows the last boundary.
_BOUNDS: tuple[float, ...] = tuple(LOWEST * GROWTH**i for i in range(_N_BOUNDS))


class LatencyHistogram:
    """Counts of observed durations (seconds) in shared log buckets."""

    __slots__ = ("_counts", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._counts = [0] * (_N_BOUNDS + 1)  # + overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Fold one observed duration into the histogram."""
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self._counts[bisect_left(_BOUNDS, seconds)] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place (and return it).

        Because every instance shares the same boundaries, the result is
        exactly the histogram of the pooled samples.
        """
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._count += other._count
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        return self

    @classmethod
    def merged(cls, items: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the pooled counts of ``items``."""
        out = cls()
        for item in items:
            out.merge(item)
        return out

    def snapshot(self) -> "LatencyHistogram":
        """An independent copy frozen at this instant.

        Pair with :meth:`since` for windowed quantiles: hold a snapshot,
        keep recording, then ask for the histogram of everything recorded
        *after* the snapshot.
        """
        out = type(self)()
        out._counts = list(self._counts)
        out._count = self._count
        out._sum = self._sum
        out._max = self._max
        return out

    def since(self, earlier: "LatencyHistogram") -> "LatencyHistogram":
        """The histogram of samples recorded after ``earlier`` was taken.

        Valid when ``earlier`` is a prefix of this histogram (a snapshot
        of the same stream); shared boundaries make the difference exact:
        index-wise count subtraction, clamped at zero so a stray
        non-prefix argument degrades to an empty window instead of
        negative counts. The window's ``max`` is inherited conservatively
        from the full stream (the true window max is unrecoverable), so
        window quantiles stay upper bounds.
        """
        out = type(self)()
        out._counts = [
            max(0, mine - theirs)
            for mine, theirs in zip(self._counts, earlier._counts)
        ]
        out._count = sum(out._counts)
        out._sum = max(0.0, self._sum - earlier._sum)
        out._max = self._max if out._count else 0.0
        return out

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total recorded durations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of recorded durations, seconds (exact, kept for the mean)."""
        return self._sum

    @property
    def max(self) -> float:
        """Largest recorded duration, seconds (exact)."""
        return self._max

    @property
    def mean(self) -> float | None:
        """Mean duration, seconds (None when empty)."""
        if self._count == 0:
            return None
        return self._sum / self._count

    def bucket_counts(self) -> list[int]:
        """A copy of the raw bucket counts (tests and debugging)."""
        return list(self._counts)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_edge_seconds, cumulative_count)`` for occupied buckets.

        The Prometheus-histogram view of the counts: each entry is a
        ``le`` boundary with the number of samples at or below it. Only
        boundaries whose own bucket holds samples are emitted — buckets
        are cumulative, so any boundary subset is a faithful exposition,
        and eliding the empty ones keeps the 100+-bucket log spacing from
        bloating every scrape. The overflow bucket has no finite edge;
        callers emit the mandatory ``+Inf`` bucket from :attr:`count`.
        """
        out: list[tuple[float, int]] = []
        seen = 0
        for i, bucket in enumerate(self._counts[:_N_BOUNDS]):
            seen += bucket
            if bucket:
                out.append((_BOUNDS[i], seen))
        return out

    @staticmethod
    def bucket_bounds() -> Sequence[float]:
        """The shared bucket upper edges (seconds)."""
        return _BOUNDS

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0 < q <= 1) in seconds, None if empty.

        Nearest-rank (ties rounded half up) over the bucket counts;
        returns the upper edge of the bucket containing the target rank,
        clamped to the observed max. The estimate never undershoots the
        true sample quantile and overshoots by at most one bucket width
        (factor :data:`GROWTH`) for in-range values.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self._count == 0:
            return None
        # Round-half-up rank: stable against binary-float drift, where a
        # ceiling would overshoot (0.9 * 10 == 9.000000000000002 must
        # still pick rank 9, not 10).
        target = min(self._count, max(1, int(q * self._count + 0.5)))
        seen = 0
        for i, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                upper = _BOUNDS[i] if i < _N_BOUNDS else self._max
                # The observed max bounds every sample, so clamping keeps
                # the estimate >= the true quantile while tightening the
                # underflow/overflow buckets to exact values.
                return min(upper, self._max)
        return self._max  # pragma: no cover - counts always sum to _count

    def percentiles(
        self, points: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> dict[float, float | None]:
        """Quantiles at the given percentile ``points`` (0-100 scale)."""
        return {p: self.quantile(p / 100.0) for p in points}

    def to_dict(self) -> dict[str, float | int | None]:
        """Wire form for ``/v1/stats``: count, mean/max, p50/p90/p99 (ms)."""

        def ms(seconds: float | None) -> float | None:
            return None if seconds is None else seconds * 1e3

        quantiles = self.percentiles()
        return {
            "count": self._count,
            "mean_ms": ms(self.mean),
            "max_ms": ms(self._max) if self._count else None,
            "p50_ms": ms(quantiles[50.0]),
            "p90_ms": ms(quantiles[90.0]),
            "p99_ms": ms(quantiles[99.0]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self._count}, mean={self.mean}, "
            f"max={self._max})"
        )
