"""Content-addressed alignment result cache (LRU + byte budget).

At millions-of-users scale the read distribution is heavily repeated —
popular loci, shared panels, retried uploads — so the same
``(task, text, pattern, k, config)`` request arrives over and over, and
every arrival pays the full alignment cost. Engine calls are pure
functions of their payload (the conformance suite pins every backend
bit-identical), which makes their results *content-addressable*: a
digest of the request's full content names its result forever, exactly
like ASMCap's content-addressable match memory names a pattern's
alignment in hardware.

:func:`request_digest` builds that name — a BLAKE2b digest over
length-prefixed request parts, so ``("AB", "C")`` and ``("A", "BC")``
can never collide — and :class:`AlignmentCache` maps digests to results
under two simultaneous budgets:

* ``max_entries`` — a count bound (the LRU axis: recency ordering via an
  ``OrderedDict``), and
* ``max_bytes`` — a memory bound using :func:`approx_size`'s recursive
  ``sys.getsizeof`` estimate, so a handful of 100 kbp alignments cannot
  silently hold the memory of a million short scans.

Either budget overflowing evicts from the least-recently-used end until
both hold. A single value larger than the whole byte budget is *rejected*
(never stored) rather than evicting the entire cache for one entry.

The cache is lock-guarded: gets run on the event loop, puts on the event
loop after worker-thread flushes, and stats reads can come from anywhere.

Replica affinity
----------------
Each :class:`~repro.serving.server.AlignmentServer` replica owns a
private cache, so a cluster would naively hold every hot key N times and
hit only 1/N of the time. The ``consistent_hash`` routing policy
(:class:`~repro.serving.cluster.ConsistentHashPolicy`) fixes that: it
routes each request by the same digest the cache keys on, so a given
key's entry lives on exactly one replica — the cluster's aggregate cache
behaves like one cache of N times the budget, and draining a replica
remaps (and re-warms) only that replica's arc of the hash ring.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Iterable

#: Sentinel distinguishing "no cached value" from a cached ``None``
#: (``edit_distance`` legitimately caches ``None`` for "above k").
MISS = object()

#: Recursion bound for :func:`approx_size`: deep enough for Alignment ->
#: Cigar -> operation lists, shallow enough to stay O(1)-ish per put.
_SIZE_DEPTH = 5

#: Per-container item bound for :func:`approx_size`; beyond this the
#: sampled mean is extrapolated instead of walking millions of elements.
_SIZE_SAMPLE = 64


def request_digest(task: str, *parts: object) -> str:
    """Stable content digest of one request: task name plus every part.

    Parts are folded as length-prefixed ``repr`` bytes, so adjacent
    strings cannot merge into a colliding stream (``("AB", "C")`` vs
    ``("A", "BC")``), and tuples/ints/bools/None all serialize
    unambiguously. The 16-byte BLAKE2b digest is wide enough that
    accidental collisions are not a practical concern for a cache.
    """
    hasher = blake2b(digest_size=16)
    for part in (task, *parts):
        data = repr(part).encode()
        hasher.update(len(data).to_bytes(8, "big"))
        hasher.update(data)
    return hasher.hexdigest()


def approx_size(value: Any, _depth: int = _SIZE_DEPTH) -> int:
    """Recursive ``sys.getsizeof`` estimate of one cached value, bytes.

    Containers and object attributes are walked to a bounded depth with
    a bounded per-container sample (large homogeneous lists extrapolate
    from the sampled mean). This is a budget estimate, not an exact
    accounting — its job is keeping eviction honest about big values.
    """
    size = sys.getsizeof(value, 64)
    if _depth <= 0:
        return size
    items: Iterable[Any] = ()
    length = 0
    if isinstance(value, (str, bytes, bytearray, int, float, bool)):
        return size
    if isinstance(value, dict):
        items = [x for kv in value.items() for x in kv]
        length = len(items)
    elif isinstance(value, (list, tuple, set, frozenset)):
        items = value
        length = len(value)
    elif hasattr(value, "__dict__"):
        items = list(vars(value).values())
        length = len(items)
    elif hasattr(value, "__slots__"):
        items = [
            getattr(value, slot)
            for slot in value.__slots__
            if hasattr(value, slot)
        ]
        length = len(items)
    if not length:
        return size
    sampled = 0
    for count, item in enumerate(items):
        if count >= _SIZE_SAMPLE:
            # Extrapolate the unwalked tail from the sampled mean.
            size += (sampled // _SIZE_SAMPLE) * (length - _SIZE_SAMPLE)
            break
        sampled += approx_size(item, _depth - 1)
    size += sampled
    return size


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus the current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejected: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Wire form for the ``cache`` block of ``/v1/stats``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "entries": self.entries,
            "bytes": self.bytes,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold ``other``'s counters in (cluster-wide aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.insertions += other.insertions
        self.rejected += other.rejected
        self.entries += other.entries
        self.bytes += other.bytes
        return self

    def metric_families(self, **labels: Any) -> list:
        """This cache's counters/gauges as registry metric families."""
        from repro.serving.observability import MetricFamily

        counters = MetricFamily(
            "genasm_cache_events_total",
            "counter",
            "Cache lookup and lifecycle events by kind.",
        )
        for kind, value in (
            ("hit", self.hits),
            ("miss", self.misses),
            ("eviction", self.evictions),
            ("insertion", self.insertions),
            ("rejected", self.rejected),
        ):
            counters.add(value, kind=kind, **labels)
        entries = MetricFamily(
            "genasm_cache_entries",
            "gauge",
            "Entries currently held in the result cache.",
        ).add(self.entries, **labels)
        size = MetricFamily(
            "genasm_cache_bytes",
            "gauge",
            "Approximate bytes held by cached values.",
        ).add(self.bytes, **labels)
        return [counters, entries, size]


class AlignmentCache:
    """LRU + byte-budget map from request digests to engine results.

    Parameters
    ----------
    max_entries:
        Most entries held at once; the least recently *used* (read or
        written) entry is evicted first.
    max_bytes:
        Budget for the summed :func:`approx_size` of held values. Both
        bounds apply simultaneously; a value bigger than the whole byte
        budget on its own is rejected rather than stored.
    """

    def __init__(
        self,
        *,
        max_entries: int = 4096,
        max_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        """Current summed size estimate of held values."""
        return self.stats.bytes

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A hit refreshes the entry's recency (true LRU, not FIFO).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; False when rejected as oversize.

        Replacing an existing key releases its old size before the new
        one is charged; either budget overflowing evicts from the LRU end
        until both hold again.
        """
        size = approx_size(value)
        with self._lock:
            if size > self.max_bytes:
                self.stats.rejected += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.bytes -= old[1]
            self._entries[key] = (value, size)
            self.stats.bytes += size
            self.stats.insertions += 1
            while self._entries and (
                len(self._entries) > self.max_entries
                or self.stats.bytes > self.max_bytes
            ):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self.stats.bytes -= evicted_size
                self.stats.evictions += 1
            self.stats.entries = len(self._entries)
            return True

    def clear(self) -> None:
        """Drop every entry (counters other than occupancy are kept)."""
        with self._lock:
            self._entries.clear()
            self.stats.entries = 0
            self.stats.bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlignmentCache(entries={len(self._entries)}/"
            f"{self.max_entries}, bytes={self.stats.bytes}/{self.max_bytes})"
        )


def make_cache(
    spec: "AlignmentCache | bool | None",
) -> AlignmentCache | None:
    """Resolve a cache construction knob: instance, True (defaults), or off.

    ``True`` builds a private default-sized cache — what each replica of
    a cluster wants, so hot keys live once per ring arc instead of being
    shared (and contended) across replicas. Passing an instance shares
    it; the lock makes that safe, but it defeats replica affinity.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return AlignmentCache()
    if isinstance(spec, AlignmentCache):
        return spec
    raise ValueError(
        "cache must be an AlignmentCache, True for defaults, or None/False"
    )
