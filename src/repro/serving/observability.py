"""Cross-cutting observability for the serving stack.

When a request through the cluster is slow, the end-to-end latency
histogram can only say *that* it was slow — not whether the time went to
queue wait, batch assembly, engine compute, a hedge race, or the cache
path. This module is the decomposition layer the rest of
:mod:`repro.serving` wires through, in three pieces that deliberately
share one design rule: **zero new bookkeeping on the hot path unless it
is switched on** (tracing) or **read only at scrape time** (metrics).

Request tracing
---------------
A :class:`Trace` is created at the network front (honoring a client
``X-Request-ID`` header, generating an id otherwise) and travels through
the cluster router, hedge/retry attempts, the batching server's queue,
and the engine call via a :mod:`contextvars` context variable —
``asyncio`` copies the context into every task it spawns, so hedge
duplicates and retry chains inherit the trace with no explicit plumbing.
Each stage records a :class:`Span` (``parse``, ``cache_lookup``,
``queue_wait``, ``batch_assembly``, ``engine``, ``hedge_wait``,
``serialize``, per-replica ``attempt``) with monotonic timestamps and
stage attributes (replica, batch size, outcome, per-shard timings).
Completed traces land in a bounded :class:`TraceBuffer` ring, queryable
via ``GET /v1/trace/<id>``; passing ``?debug=timing`` on any request
inlines the same breakdown into its response.

Tracing is *off* for bare servers (``trace=False`` default) and on for
the HTTP front. When off, the per-request cost is a single attribute
check — no context lookup, no allocation.

Metrics
-------
:class:`MetricsRegistry` is a pull-model registry: subsystems register
*collector callables* that are invoked only when ``GET /metrics`` is
scraped and read the live stats objects (:class:`~repro.serving.server.\
ServingStats`, :class:`~repro.serving.http.EndpointStats`,
:class:`~repro.serving.cache.CacheStats`, cluster routing/hedging
counters, autoscaler decisions, and per-tenant
:class:`~repro.serving.qos.TenantStats` exposed as tenant-labeled
``genasm_qos_*`` families) the serving layer already keeps — no
double counting, no write-path overhead. The registry renders Prometheus
text exposition (``# HELP`` / ``# TYPE``, counters, gauges, and
histograms whose buckets are the log-spaced
:class:`~repro.serving.histogram.LatencyHistogram` boundaries), and
:func:`parse_prometheus_text` is the matching parser the tests and the
CI smoke gate assert with — format validity is checked by parsing, not
by grep.

Structured event logging
------------------------
One stdlib :mod:`logging` logger per subsystem
(``repro.serving.<name>``), a :class:`JsonFormatter` that renders each
record as one JSON object per line, and :func:`log_event` +
:class:`EventRateLimiter` for the events worth a line in production —
slow requests, sheds, hedges, scale decisions, per-tenant
``qos.tenant_throttled`` admission rejections — rate-limited per event
key (with a ``suppressed`` count carried on the next emitted line) and
carrying the trace id so a log line and a trace cross-reference.
"""

from __future__ import annotations

import contextvars
import json
import logging
import re
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.serving.histogram import LatencyHistogram

__all__ = [
    "EventRateLimiter",
    "JsonFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "Trace",
    "TraceBuffer",
    "configure_logging",
    "current_trace",
    "get_logger",
    "log_event",
    "new_trace_id",
    "parse_prometheus_text",
    "use_trace",
]


# ----------------------------------------------------------------------
# Request tracing
# ----------------------------------------------------------------------
def new_trace_id() -> str:
    """A fresh 32-hex-char request/trace id."""
    return uuid.uuid4().hex


@dataclass
class Span:
    """One timed stage of a request: name, interval, outcome, attributes.

    Timestamps are ``time.monotonic()`` seconds; :meth:`finish` is
    idempotent (the first outcome wins), so a span raced by cancellation
    cannot be overwritten by a late completion.
    """

    name: str
    start: float
    end: float | None = None
    outcome: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Span length in seconds (None while still open)."""
        return None if self.end is None else self.end - self.start

    def finish(self, outcome: str = "ok", **attrs: Any) -> "Span":
        """Close the span (first close wins) and fold in attributes."""
        if self.end is None:
            self.end = time.monotonic()
            self.outcome = outcome
            if attrs:
                self.attrs.update(attrs)
        return self

    def to_dict(self, origin: float) -> dict[str, Any]:
        """Wire form with millisecond offsets relative to ``origin``."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_ms": (self.start - origin) * 1e3,
            "end_ms": None if self.end is None else (self.end - origin) * 1e3,
            "duration_ms": (
                None if self.duration is None else self.duration * 1e3
            ),
            "outcome": self.outcome if self.end is not None else "open",
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Trace:
    """Per-request span collection, shared by every stage of one request.

    Spans are appended from the event loop only (worker threads never
    touch a trace; the server records engine spans from the loop around
    the executor call), so a plain list append is safe and cheap.
    """

    __slots__ = ("trace_id", "started", "ended", "spans", "meta")

    def __init__(self, trace_id: str | None = None, **meta: Any) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.started = time.monotonic()
        self.ended: float | None = None
        self.spans: list[Span] = []
        self.meta = dict(meta)

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open (and record) a new span starting now."""
        span = Span(name=name, start=time.monotonic(), attrs=dict(attrs))
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context-managed span: closes ``ok`` on exit, ``error`` on raise."""
        span = self.begin(name, **attrs)
        try:
            yield span
        except BaseException:
            span.finish("error")
            raise
        span.finish()

    def finish(self) -> "Trace":
        """Mark the request complete (first call wins)."""
        if self.ended is None:
            self.ended = time.monotonic()
        return self

    @property
    def duration(self) -> float | None:
        """End-to-end seconds (None while the request is in flight)."""
        return None if self.ended is None else self.ended - self.started

    def accounted_fraction(self) -> float:
        """Fraction of the end-to-end interval covered by >=1 span.

        The union of closed span intervals (overlapping spans — an
        ``attempt`` covering its ``queue_wait`` — count once), clamped
        to the trace window. This is the "where did the time go"
        completeness measure: near 1.0 means the breakdown explains the
        latency; a low value means an uninstrumented stage is hiding.
        """
        end = self.ended if self.ended is not None else time.monotonic()
        total = end - self.started
        if total <= 0:
            return 1.0
        intervals = sorted(
            (max(span.start, self.started), min(span.end, end))
            for span in self.spans
            if span.end is not None and span.end > self.started
        )
        covered = 0.0
        cursor = self.started
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return min(1.0, covered / total)

    def to_dict(self) -> dict[str, Any]:
        """Wire form for ``/v1/trace/<id>`` and ``?debug=timing``."""
        duration = self.duration
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "complete": self.ended is not None,
            "duration_ms": None if duration is None else duration * 1e3,
            "accounted_fraction": self.accounted_fraction(),
            "spans": [span.to_dict(self.started) for span in self.spans],
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


#: The trace of the request currently being served on this logical
#: context. asyncio copies the context into every spawned task, so hedge
#: duplicates and retry chains see the same trace without plumbing.
_CURRENT_TRACE: "contextvars.ContextVar[Trace | None]" = (
    contextvars.ContextVar("repro_serving_trace", default=None)
)


def current_trace() -> Trace | None:
    """The trace propagated to this context, or None."""
    return _CURRENT_TRACE.get()


@contextmanager
def use_trace(trace: Trace | None) -> Iterator[Trace | None]:
    """Make ``trace`` the context's current trace for the block."""
    token = _CURRENT_TRACE.set(trace)
    try:
        yield trace
    finally:
        _CURRENT_TRACE.reset(token)


class TraceBuffer:
    """Bounded ring of recent traces, keyed by trace id.

    Traces are inserted when their request *starts* (so an in-flight
    request is already queryable) and evicted oldest-first past
    ``capacity``. Lock-guarded: inserts come from the event loop,
    lookups can come from anywhere.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, trace: Trace) -> None:
        """Insert (or refresh) one trace, evicting the oldest past capacity."""
        with self._lock:
            self._traces.pop(trace.trace_id, None)
            self._traces[trace.trace_id] = trace
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Trace | None:
        """The trace under ``trace_id``, or None if unknown/evicted."""
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> list[str]:
        """Known ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ----------------------------------------------------------------------
# Metrics registry and Prometheus text exposition
# ----------------------------------------------------------------------
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_METRIC_KINDS = ("counter", "gauge", "histogram")


class MetricFamily:
    """One named metric family: kind, help text, and labeled samples.

    Collectors build these fresh at scrape time; the registry merges
    families with the same name (a cluster collector and an HTTP
    collector may both contribute to one family) and renders them as one
    exposition block. For histograms the *sample value is the live*
    :class:`~repro.serving.histogram.LatencyHistogram` — rendering
    converts it to cumulative buckets, and
    :meth:`MetricsRegistry.histogram_objects` hands the live references
    to consumers like the autoscaler.
    """

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in _METRIC_KINDS:
            raise ValueError(f"kind must be one of {_METRIC_KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: list[tuple[dict[str, str], Any]] = []

    def add(self, value: float, **labels: Any) -> "MetricFamily":
        """Append one counter/gauge sample (labels stringified)."""
        self.samples.append(
            ({name: str(val) for name, val in labels.items()}, float(value))
        )
        return self

    def add_histogram(
        self, histogram: LatencyHistogram, **labels: Any
    ) -> "MetricFamily":
        """Append one histogram sample holding the live histogram."""
        if self.kind != "histogram":
            raise ValueError(f"{self.name} is a {self.kind}, not a histogram")
        self.samples.append(
            ({name: str(val) for name, val in labels.items()}, histogram)
        )
        return self


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Pull-model metric registry with Prometheus text rendering.

    Subsystems register collector callables
    (``() -> Iterable[MetricFamily]``) once at wiring time; every scrape
    invokes them and merges the families they return. Because collectors
    read the live stats objects the serving layer already maintains,
    registration adds **zero** work to the request path.
    """

    def __init__(self) -> None:
        self._collectors: list[Callable[[], Iterable[MetricFamily]]] = []
        self._lock = threading.Lock()

    def add_collector(
        self, collector: Callable[[], Iterable[MetricFamily]]
    ) -> Callable[[], Iterable[MetricFamily]]:
        """Register one collector (usable as a decorator); returns it."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def collect(self) -> "OrderedDict[str, MetricFamily]":
        """Invoke every collector and merge same-named families."""
        with self._lock:
            collectors = list(self._collectors)
        merged: "OrderedDict[str, MetricFamily]" = OrderedDict()
        for collector in collectors:
            for family in collector():
                existing = merged.get(family.name)
                if existing is None:
                    merged[family.name] = family
                    continue
                if existing.kind != family.kind:
                    raise ValueError(
                        f"metric {family.name!r} registered as both "
                        f"{existing.kind} and {family.kind}"
                    )
                existing.samples.extend(family.samples)
        return merged

    def histogram_objects(
        self, name: str
    ) -> dict[tuple[tuple[str, str], ...], LatencyHistogram]:
        """Live histogram references for family ``name`` keyed by labels.

        This is how a consumer that needs *windowed* quantiles — the
        autoscaler's per-endpoint p99 — reaches the actual mergeable
        histograms behind a family instead of rendered bucket text.
        """
        family = self.collect().get(name)
        if family is None or family.kind != "histogram":
            return {}
        return {
            tuple(sorted(labels.items())): histogram
            for labels, histogram in family.samples
            if isinstance(histogram, LatencyHistogram)
        }

    def render(self) -> str:
        """The full Prometheus text exposition (format 0.0.4)."""
        lines: list[str] = []
        for family in self.collect().values():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, value in family.samples:
                if family.kind == "histogram":
                    lines.extend(_render_histogram(family.name, labels, value))
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def _render_histogram(
    name: str, labels: dict[str, str], histogram: LatencyHistogram
) -> list[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one sample.

    Only boundaries whose bucket holds samples are emitted (plus the
    mandatory ``+Inf``): buckets are cumulative, so any boundary subset
    is a valid exposition, and eliding the empty ones keeps 100+-bucket
    log-spaced histograms from dominating the scrape body.
    """
    lines = []
    for bound, cumulative in histogram.cumulative_buckets():
        bucket_labels = dict(labels)
        bucket_labels["le"] = f"{bound:.9g}"
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(
        f"{name}_bucket{_format_labels(inf_labels)} {histogram.count}"
    )
    lines.append(
        f"{name}_sum{_format_labels(labels)} {_format_value(histogram.total)}"
    )
    lines.append(f"{name}_count{_format_labels(labels)} {histogram.count}")
    return lines


# ----------------------------------------------------------------------
# Exposition parser (tests and the CI smoke gate assert by parsing)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed label pair at {text[pos:]!r}")
        raw = match.group("value")
        labels[match.group("name")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = match.end()
        if pos < len(text) and text[pos] == ",":
            pos += 1
    return labels


def _parse_sample_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)  # raises ValueError on garbage — the parser's job


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and validate) one Prometheus text exposition.

    Returns ``{family_name: {"type", "help", "samples"}}`` where samples
    are ``(metric_name, labels_dict, value)`` tuples. Raises
    :class:`ValueError` on any malformed line, a sample for an
    undeclared family, or a histogram whose cumulative buckets decrease
    or whose ``+Inf`` bucket disagrees with ``_count`` — the structural
    assertions the CI smoke gate relies on instead of grepping.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> str | None:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return sample_name if sample_name in families else None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(None, 1)
            if not parts or not _METRIC_NAME_RE.match(parts[0]):
                raise ValueError(f"line {line_number}: malformed HELP {line!r}")
            entry = families.setdefault(
                parts[0], {"type": None, "help": "", "samples": []}
            )
            entry["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2 or parts[1] not in _METRIC_KINDS:
                raise ValueError(f"line {line_number}: malformed TYPE {line!r}")
            entry = families.setdefault(
                parts[0], {"type": None, "help": "", "samples": []}
            )
            if entry["type"] is not None:
                raise ValueError(
                    f"line {line_number}: duplicate TYPE for {parts[0]!r}"
                )
            entry["type"] = parts[1]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                raise ValueError(
                    f"line {line_number}: bad label name {label_name!r}"
                )
        try:
            value = _parse_sample_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad sample value {line!r}"
            ) from None
        base = family_of(name)
        if base is None:
            raise ValueError(
                f"line {line_number}: sample {name!r} has no TYPE declaration"
            )
        families[base]["samples"].append((name, labels, value))

    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
        if entry["type"] == "histogram":
            _validate_histogram_family(name, entry["samples"])
    return families


def _validate_histogram_family(
    name: str, samples: list[tuple[str, dict[str, str], float]]
) -> None:
    """Cumulative-bucket and count consistency for one histogram family."""
    series: dict[tuple, dict[str, Any]] = {}
    for sample_name, labels, value in samples:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        entry = series.setdefault(key, {"buckets": [], "count": None})
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ValueError(f"{name}: bucket sample without le label")
            entry["buckets"].append(
                (_parse_sample_value(labels["le"]), value)
            )
        elif sample_name == f"{name}_count":
            entry["count"] = value
    for key, entry in series.items():
        buckets = sorted(entry["buckets"])
        if not buckets or buckets[-1][0] != float("inf"):
            raise ValueError(f"{name}{dict(key)}: histogram missing +Inf bucket")
        cumulative = [count for _, count in buckets]
        if any(b > a for a, b in zip(cumulative[1:], cumulative)):
            raise ValueError(
                f"{name}{dict(key)}: bucket counts are not cumulative"
            )
        if entry["count"] is not None and buckets[-1][1] != entry["count"]:
            raise ValueError(
                f"{name}{dict(key)}: +Inf bucket {buckets[-1][1]} != "
                f"_count {entry['count']}"
            )


# ----------------------------------------------------------------------
# Structured JSON event logging
# ----------------------------------------------------------------------
#: Root of the serving logger hierarchy; configure_logging attaches here.
LOGGER_ROOT = "repro.serving"


class JsonFormatter(logging.Formatter):
    """Render each log record as one JSON object per line.

    Standard fields: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``event`` (the short machine-readable name, falling back to the
    message), and ``message``. Structured payloads attached by
    :func:`log_event` ride in flat keys; exceptions land under
    ``exception``. Values that are not JSON-serializable degrade to
    ``str`` rather than raising — a log formatter must never throw.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for one serving subsystem (``repro.serving.<name>``)."""
    return logging.getLogger(f"{LOGGER_ROOT}.{subsystem}")


def configure_logging(
    level: int = logging.INFO, stream: Any = None
) -> logging.Handler:
    """Attach a JSON-lines handler to the serving logger hierarchy.

    Idempotent: a handler previously installed by this function is
    replaced, not duplicated. Library code never calls this — emitting
    handlers is the application's decision — but every subsystem logger
    works the moment it runs.
    """
    root = logging.getLogger(LOGGER_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler


class EventRateLimiter:
    """Per-key minimum-interval limiter for high-frequency events.

    A saturated cluster sheds thousands of requests per second; logging
    each one would melt the very server the log is diagnosing. Each key
    emits at most once per ``min_interval`` seconds; suppressed
    occurrences are counted and reported with the next emitted event.
    """

    def __init__(self, min_interval: float = 1.0) -> None:
        if min_interval < 0:
            raise ValueError("min_interval must be non-negative")
        self.min_interval = min_interval
        self._last: dict[str, float] = {}
        self._suppressed: dict[str, int] = {}
        self._lock = threading.Lock()

    def ready(self, key: str, now: float | None = None) -> tuple[bool, int]:
        """``(emit, suppressed_since_last_emit)`` for one occurrence."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            last = self._last.get(key)
            if last is not None and now - last < self.min_interval:
                self._suppressed[key] = self._suppressed.get(key, 0) + 1
                return False, 0
            self._last[key] = now
            suppressed = self._suppressed.pop(key, 0)
            return True, suppressed


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    trace_id: str | None = None,
    limiter: EventRateLimiter | None = None,
    limit_key: str | None = None,
    **fields: Any,
) -> bool:
    """Emit one structured event line; returns whether it was emitted.

    With ``limiter``, occurrences past the per-key rate are counted but
    not emitted; the next emitted line carries ``suppressed`` so volume
    is never silently lost. The enabled-check runs before any payload
    work, so disabled loggers cost one comparison.
    """
    if not logger.isEnabledFor(level):
        return False
    if limiter is not None:
        emit, suppressed = limiter.ready(limit_key or event)
        if not emit:
            return False
        if suppressed:
            fields["suppressed"] = suppressed
    if trace_id is not None:
        fields["trace_id"] = trace_id
    logger.log(level, event, extra={"event": event, "fields": fields})
    return True
