"""Multi-tenant quality of service: admission control, fair queueing,
and request deadlines.

A shared alignment service is only as good as its worst neighbor: one
greedy client hammering ``/v1/map`` can fill every pending slot and
starve the interactive scans of everyone else. This module gives the
serving stack three isolation mechanisms, each independently usable:

**Token-bucket admission control.** Every tenant (identified by the
``X-API-Key`` header; missing or unknown keys share one ``anonymous``
tenant, so rotating keys buys nothing) owns a :class:`TokenBucket` with
a sustained ``rate`` (tokens/second) and a ``burst`` capacity. A request
that finds the bucket empty is rejected *before* it takes a pending
slot — :class:`AdmissionError` maps to HTTP 429 and carries a
``retry_after`` computed from the bucket's actual refill time (when the
missing tokens will exist), not from server load estimates: an
over-quota client learns exactly how long its own quota makes it wait.

**Weighted-fair queueing.** :class:`FairQueue` replaces the FIFO order
of :class:`~repro.serving.server.AlignmentServer`'s pending queue with
deficit round-robin over per-tenant lanes: each flush takes a batch that
interleaves tenants in proportion to their configured weights, so a
tenant with a thousand queued requests delays a one-request tenant by at
most one round, never by the whole backlog. Within a tenant's lane,
*interactive* kinds (``scan``, ``edit_distance``) are served before
*bulk* kinds (``align``, ``map``) — the mixed-priority traffic GenASM
frames (interactive filtering next to bulk mapping) without letting one
tenant's priority class preempt another tenant's share.

**Deadline propagation.** A request may carry an absolute deadline
(``timeout_ms`` in the JSON body or an ``X-Request-Deadline`` header,
both milliseconds of budget from arrival). The deadline rides on the
queued request; work whose deadline has already passed when its batch is
taken is dropped through the same cancelled-before-engine-call path that
drops hedge losers — an expired request costs a queue slot, never an
engine call — and the caller sees :class:`DeadlineExceededError`
(HTTP 504).

:class:`QosPolicy` bundles the per-tenant configuration, buckets, and
stats: the HTTP front resolves/admits exactly once per request (so
cluster retries and hedges, which happen *behind* admission, can never
double-charge a bucket), the server's fair queue reads lane weights from
it, ``/v1/stats`` grows a per-tenant block from
:meth:`QosPolicy.stats_payload`, and :meth:`QosPolicy.collect_metrics`
contributes tenant-labeled families (``genasm_qos_*``) to the metrics
registry. Throttling emits rate-limited ``qos.tenant_throttled`` events
(one line per tenant per interval, with a ``suppressed`` count).
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.serving.histogram import LatencyHistogram
from repro.serving.observability import (
    EventRateLimiter,
    MetricFamily,
    current_trace,
    get_logger,
    log_event,
)

_LOGGER = get_logger("qos")

#: Tenant every request without a (known) API key is accounted to.
DEFAULT_TENANT = "anonymous"

#: Request kinds served from a lane's interactive class ahead of its
#: bulk class (``align``/``map``). Priority is *within* a tenant's lane:
#: a tenant's scans jump its own maps, never another tenant's share.
INTERACTIVE_KINDS = frozenset({"scan", "edit_distance"})

#: Floor for lane weights: DRR adds ``quantum * weight`` credit per
#: visit, so a microscopic weight would mean unbounded bookkeeping
#: rounds before a lane earns one request's worth of credit.
_MIN_WEIGHT = 0.01


class AdmissionError(RuntimeError):
    """A tenant's token bucket is empty; maps to HTTP 429.

    ``retry_after`` is the bucket's own refill time — seconds until the
    missing tokens exist at the tenant's configured rate.
    """

    def __init__(
        self, message: str, *, tenant: str, retry_after: float
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before its engine work started.

    Raised by the server when a queued request's deadline expires (the
    work is dropped before the engine call) or when a request arrives
    already expired. Maps to HTTP 504. The cluster treats it like an
    input rejection — the deadline is the request's property, so no
    replica failure is recorded and no retry is burned.
    """


# ----------------------------------------------------------------------
# Token-bucket admission control
# ----------------------------------------------------------------------
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``.

    The bucket starts full and refills continuously (computed lazily
    from the clock, no timer task). ``clock`` is injectable so tests
    and property suites drive time deterministically. Lock-guarded —
    admission runs on the event loop but metrics scrapes may read
    :attr:`tokens` from another thread.
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_updated", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0:
            raise ValueError("rate must be positive tokens/second")
        if not burst >= 1:
            raise ValueError("burst must be at least 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False leaves the bucket as is."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will exist at the refill rate."""
        with self._lock:
            self._refill(self._clock())
            missing = cost - self._tokens
            if missing <= 0 or math.isinf(self.rate):
                return 0.0
            return missing / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


# ----------------------------------------------------------------------
# Tenant configuration and accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantConfig:
    """One tenant's quota and scheduling share.

    ``rate``/``burst`` parameterize the admission bucket; ``weight`` is
    the tenant's deficit-round-robin share of every batch relative to
    the other backlogged tenants (2.0 drains twice as fast as 1.0).
    """

    name: str
    rate: float = 100.0
    burst: float = 200.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.rate > 0:
            raise ValueError("rate must be positive")
        if not self.burst >= 1:
            raise ValueError("burst must be at least 1")
        if not self.weight > 0:
            raise ValueError("weight must be positive")


@dataclass
class TenantStats:
    """Per-tenant request outcomes, recorded at the HTTP front."""

    requests: int = 0
    ok: int = 0
    #: 429s — the tenant's own bucket said no.
    throttled: int = 0
    #: 503s — admitted, but the server/cluster was saturated.
    shed: int = 0
    #: 504s — the request's deadline expired before engine work.
    expired: int = 0
    errors: int = 0
    #: Wall time of this tenant's successful requests.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record(self, status: int, seconds: float | None = None) -> None:
        self.requests += 1
        if status < 400:
            self.ok += 1
            if seconds is not None:
                self.latency.record(seconds)
        elif status == 429:
            self.throttled += 1
        elif status == 503:
            self.shed += 1
        elif status == 504:
            self.expired += 1
        else:
            self.errors += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "throttled": self.throttled,
            "shed": self.shed,
            "expired": self.expired,
            "errors": self.errors,
            "latency": self.latency.to_dict(),
        }


class TenantState:
    """One tenant's live state: config, admission bucket, and stats."""

    __slots__ = ("config", "bucket", "stats")

    def __init__(
        self, config: TenantConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock=clock)
        self.stats = TenantStats()

    @property
    def name(self) -> str:
        return self.config.name


class QosPolicy:
    """Tenant registry + admission control, shared by front and server.

    Parameters
    ----------
    tenants:
        Iterable of :class:`TenantConfig` (or a mapping whose values are
        configs). A request's ``X-API-Key`` header names its tenant
        directly; a production deployment would map opaque keys to
        tenant names in front of this.
    default:
        Config for the shared fallback tenant serving requests with a
        missing or *unknown* API key (unknown keys share this one
        bucket, so key rotation cannot multiply quota). Defaults to
        ``anonymous`` at 100 req/s, burst 200, weight 1.
    clock:
        Injectable monotonic clock for every bucket (tests pin it).
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig] | Mapping[str, TenantConfig] = (),
        *,
        default: TenantConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._events = EventRateLimiter()
        if isinstance(tenants, Mapping):
            tenants = tenants.values()
        self._tenants: dict[str, TenantState] = {}
        for config in tenants:
            if config.name in self._tenants:
                raise ValueError(f"duplicate tenant {config.name!r}")
            self._tenants[config.name] = TenantState(config, clock)
        if default is None:
            default = TenantConfig(DEFAULT_TENANT)
        if default.name in self._tenants:
            raise ValueError(
                f"default tenant {default.name!r} collides with a "
                "configured tenant"
            )
        self._default = TenantState(default, clock)
        self._tenants[default.name] = self._default

    @property
    def tenants(self) -> Mapping[str, TenantState]:
        """Read-only view of every tenant's live state."""
        return dict(self._tenants)

    def resolve(self, api_key: str | None) -> TenantState:
        """The tenant a request with this ``X-API-Key`` is accounted to.

        A missing key *or an unknown one* resolves to the shared default
        tenant: unknown keys must not each get a fresh bucket, or an
        abuser would rotate keys to dodge the quota.
        """
        if not api_key:
            return self._default
        return self._tenants.get(api_key, self._default)

    def admit(self, tenant: TenantState, cost: float = 1.0) -> None:
        """Charge one request against the tenant's bucket or raise.

        Called exactly once per request at the network front — cluster
        retries and hedge duplicates happen behind this point, so a
        hedge can never double-charge the bucket.
        """
        if tenant.bucket.try_acquire(cost):
            return
        retry_after = tenant.bucket.retry_after(cost)
        trace = current_trace()
        log_event(
            _LOGGER,
            "qos.tenant_throttled",
            level=logging.WARNING,
            trace_id=trace.trace_id if trace is not None else None,
            limiter=self._events,
            limit_key=f"throttle:{tenant.name}",
            tenant=tenant.name,
            rate=tenant.config.rate,
            retry_after=round(retry_after, 3),
        )
        raise AdmissionError(
            f"tenant {tenant.name!r} is over its admission rate "
            f"({tenant.config.rate:g} req/s, burst "
            f"{tenant.config.burst:g})",
            tenant=tenant.name,
            retry_after=retry_after,
        )

    def record(self, tenant: TenantState, status: int, seconds: float) -> None:
        """Fold one finished request's outcome into the tenant's stats."""
        tenant.stats.record(status, seconds)

    def weight_of(self, tenant_name: str) -> float:
        """DRR lane weight for ``tenant_name`` (default tenant's if unknown)."""
        state = self._tenants.get(tenant_name, self._default)
        return state.config.weight

    def stats_payload(self) -> dict[str, Any]:
        """Per-tenant block for ``GET /v1/stats``."""
        payload: dict[str, Any] = {}
        for name in sorted(self._tenants):
            state = self._tenants[name]
            config = state.config
            payload[name] = {
                "rate": config.rate if math.isfinite(config.rate) else None,
                "burst": config.burst if math.isfinite(config.burst) else None,
                "weight": config.weight,
                "tokens": round(state.bucket.tokens, 3),
                **state.stats.to_dict(),
            }
        return payload

    def collect_metrics(self) -> list[MetricFamily]:
        """Tenant-labeled metric families (registry collector surface)."""
        outcomes = MetricFamily(
            "genasm_qos_requests_total",
            "counter",
            "Requests by tenant and admission/serving outcome.",
        )
        tokens = MetricFamily(
            "genasm_qos_tokens_available",
            "gauge",
            "Admission tokens currently available per tenant bucket.",
        )
        latency = MetricFamily(
            "genasm_qos_request_latency_seconds",
            "histogram",
            "Per-tenant wall time of successful requests.",
        )
        for name in sorted(self._tenants):
            state = self._tenants[name]
            stats = state.stats
            for outcome, value in (
                ("ok", stats.ok),
                ("throttled", stats.throttled),
                ("shed", stats.shed),
                ("expired", stats.expired),
                ("error", stats.errors),
            ):
                outcomes.add(value, tenant=name, outcome=outcome)
            tokens.add(state.bucket.tokens, tenant=name)
            latency.add_histogram(stats.latency, tenant=name)
        return [outcomes, tokens, latency]


# ----------------------------------------------------------------------
# Pending-queue disciplines (server-side)
# ----------------------------------------------------------------------
class FifoQueue:
    """Single-lane arrival-order queue; the non-QoS default.

    Same surface as :class:`FairQueue` so the server's flush path does
    not care which discipline it drains.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque[Any] = deque()

    def push(
        self,
        item: Any,
        *,
        tenant: str = DEFAULT_TENANT,
        interactive: bool = False,
    ) -> None:
        del tenant, interactive
        self._items.append(item)

    def take(self, limit: int) -> list[Any]:
        """Pop up to ``limit`` items in arrival order."""
        take = min(limit, len(self._items))
        return [self._items.popleft() for _ in range(take)]

    def depths(self) -> dict[str, int]:
        return {DEFAULT_TENANT: len(self._items)} if self._items else {}

    def __len__(self) -> int:
        return len(self._items)


class _Lane:
    """One tenant's pending requests: two priority classes + DRR credit."""

    __slots__ = ("tenant", "weight", "interactive", "bulk", "deficit")

    def __init__(self, tenant: str, weight: float) -> None:
        self.tenant = tenant
        self.weight = max(weight, _MIN_WEIGHT)
        self.interactive: deque[Any] = deque()
        self.bulk: deque[Any] = deque()
        self.deficit = 0.0

    def __len__(self) -> int:
        return len(self.interactive) + len(self.bulk)

    def pop(self) -> Any:
        if self.interactive:
            return self.interactive.popleft()
        return self.bulk.popleft()


class FairQueue:
    """Deficit round-robin over per-tenant lanes with priority classes.

    Each :meth:`take` visits backlogged lanes in rotation; a visit adds
    ``quantum * weight`` credit to the lane and serves one queued
    request per unit of credit, interactive class first. The properties
    this buys (and the Hypothesis suite pins):

    * **Weighted shares** — over a sustained backlog, each tenant's
      share of taken requests converges to ``weight / sum(weights)``.
    * **No starvation** — with weights >= 1, every backlogged lane
      serves at least one request per full rotation: a tenant with one
      queued request waits at most one round behind any backlog.
    * **Work conservation** — :meth:`take` returns ``min(limit, len)``
      requests; fairness never idles capacity.

    An emptied lane forfeits leftover credit (standard DRR), so a lane
    cannot bank idle time into a later burst.
    """

    __slots__ = ("_quantum", "_weight_of", "_lanes", "_round", "_total")

    def __init__(
        self,
        *,
        quantum: float = 1.0,
        weight_of: Callable[[str], float] | None = None,
    ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self._quantum = quantum
        self._weight_of = weight_of
        self._lanes: dict[str, _Lane] = {}
        self._round: deque[_Lane] = deque()
        self._total = 0

    def push(
        self,
        item: Any,
        *,
        tenant: str = DEFAULT_TENANT,
        interactive: bool = False,
    ) -> None:
        lane = self._lanes.get(tenant)
        if lane is None:
            weight = (
                self._weight_of(tenant) if self._weight_of is not None else 1.0
            )
            lane = self._lanes[tenant] = _Lane(tenant, weight)
        if not len(lane):
            self._round.append(lane)
        (lane.interactive if interactive else lane.bulk).append(item)
        self._total += 1

    def take(self, limit: int) -> list[Any]:
        """Drain up to ``limit`` requests in deficit-round-robin order."""
        batch: list[Any] = []
        while self._total and len(batch) < limit:
            lane = self._round[0]
            if lane.deficit < 1.0:
                lane.deficit += self._quantum * lane.weight
            while len(lane) and lane.deficit >= 1.0 and len(batch) < limit:
                batch.append(lane.pop())
                lane.deficit -= 1.0
                self._total -= 1
            if not len(lane):
                lane.deficit = 0.0
                self._round.popleft()
            elif lane.deficit < 1.0:
                self._round.rotate(-1)
            else:
                # limit hit mid-lane: keep the lane (and its credit) at
                # the head so the next take resumes exactly here.
                break
        return batch

    def depths(self) -> dict[str, int]:
        """Queued requests per backlogged tenant (stats surface)."""
        return {
            lane.tenant: len(lane) for lane in self._round if len(lane)
        }

    def __len__(self) -> int:
        return self._total
