"""Streaming batch jobs over the serving layer — the job fabric.

Everything else in ``serving/`` answers one request with one response. The
paper's real workloads are chromosome-scale (Sections 9 and 11): mapping a
flow cell of reads against a reference, aligning two genomes, all-vs-all
overlap finding. Those don't fit in a request body — they arrive as
streams, run for minutes, and must survive a client disconnect.

A :class:`JobManager` turns any backend exposing the serving surface
(``AlignmentServer`` or ``AlignmentCluster``) into a job executor:

* **map** — chunked FASTQ in, SAM out. Input chunks may be split anywhere
  (mid-line is fine); each parsed read becomes one ``map_read`` request
  through the backend, with a bounded window of reads in flight, and SAM
  records are appended to the job's output in input order. Memory stays
  bounded no matter how many reads stream through.
* **whole_genome** — one ``align`` request through the backend, summarized
  with :func:`~repro.usecases.whole_genome.complete_alignment`.
* **overlap** — k-mer voting runs in-process (pure indexing); every
  candidate's suffix/prefix verification is an ``align`` request through
  the backend, windowed, then thresholded exactly like
  :func:`~repro.usecases.overlap.find_overlaps`.
* **text_search** — one ``scan`` through the backend, hits collapsed with
  :func:`~repro.usecases.text_search.collapse_matches`, optional per-hit
  traceback as windowed ``align`` requests.

Because every unit of work re-enters the backend as an ordinary request,
the cluster's routing, hedging, QoS admission, fair queueing, and tracing
all apply to job traffic for free — the job id is just a handle on the
stream's progress and spooled output, which is what makes the HTTP front's
``GET /v1/jobs/<id>/output?offset=N`` resumable: reconnect, re-ask from
your last offset, keep going.
"""

from __future__ import annotations

import asyncio
import json
import logging
import tempfile
import time
import uuid
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any

from repro.mapping.sam import sam_header
from repro.sequences.io import FastqStreamParser
from repro.serving.observability import MetricFamily, log_event
from repro.usecases.overlap import overlap_candidates, select_overlaps
from repro.usecases.text_search import collapse_matches
from repro.usecases.whole_genome import complete_alignment

logger = logging.getLogger("repro.serving.jobs")

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)

JOB_KINDS = ("map", "whole_genome", "overlap", "text_search")

_EOF = object()


class JobError(ValueError):
    """A client mistake: unknown kind, closed input, malformed payload."""


class JobRejectedError(RuntimeError):
    """The manager is at its concurrent-job capacity; retry later."""

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobOutput:
    """Append-only spooled output with offset reads.

    Small outputs stay in memory; past ``spool_bytes`` the spool rolls to
    a temp file, so a chromosome of SAM text never lives in RAM. Offsets
    are byte offsets — a client that reconnects re-reads from wherever it
    stopped.
    """

    def __init__(self, spool_bytes: int = 256 * 1024) -> None:
        self._file = tempfile.SpooledTemporaryFile(max_size=spool_bytes)
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def append(self, text: str) -> None:
        self._file.seek(0, 2)
        self._file.write(text.encode("ascii"))
        self._size += len(text)

    def read(self, offset: int, limit: int) -> str:
        if offset < 0:
            raise JobError("offset must be non-negative")
        if limit <= 0:
            raise JobError("limit must be positive")
        self._file.seek(min(offset, self._size))
        return self._file.read(limit).decode("ascii")

    def close(self) -> None:
        self._file.close()


@dataclass
class Job:
    """One streaming job: identity, progress counters, spooled output."""

    job_id: str
    kind: str
    tenant: str | None
    output: JobOutput
    state: str = PENDING
    error: str | None = None
    created: float = field(default_factory=time.time)
    started_monotonic: float = field(default_factory=time.monotonic)
    finished_monotonic: float | None = None
    reads_in: int = 0
    reads_done: int = 0
    reads_mapped: int = 0
    input_bytes: int = 0
    input_closed: bool = False
    result: dict | None = None
    task: asyncio.Task | None = field(default=None, repr=False)
    parser: FastqStreamParser | None = field(default=None, repr=False)
    input_queue: asyncio.Queue | None = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def status_payload(self) -> dict:
        """The JSON body of ``GET /v1/jobs/<id>``."""
        elapsed = (
            self.finished_monotonic
            if self.finished_monotonic is not None
            else time.monotonic()
        ) - self.started_monotonic
        payload = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
            "created": self.created,
            "elapsed_s": round(elapsed, 6),
            "input_closed": self.input_closed,
            "input_bytes": self.input_bytes,
            "reads_in": self.reads_in,
            "reads_done": self.reads_done,
            "reads_mapped": self.reads_mapped,
            "output_bytes": self.output.size,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        return payload


class JobManager:
    """Run streaming jobs against a serving backend.

    Parameters
    ----------
    backend:
        Anything exposing the serving surface (``scan`` / ``align`` /
        ``map_read`` coroutines) — an :class:`~repro.serving.server.
        AlignmentServer` or :class:`~repro.serving.cluster.
        AlignmentCluster`. Map jobs additionally need ``backend.mapper``.
    window:
        Maximum backend requests in flight per job — the bound on a map
        job's in-memory read window.
    input_backlog:
        Parsed-but-unsubmitted reads a map job will buffer before input
        appends start awaiting (backpressure toward the ingest side).
    max_active:
        Concurrent unfinished jobs before :meth:`create` rejects.
    max_finished:
        Finished jobs retained (output still fetchable) before the
        oldest are evicted.
    """

    def __init__(
        self,
        backend: Any,
        *,
        window: int = 32,
        input_backlog: int = 1024,
        max_active: int = 8,
        max_finished: int = 64,
        spool_bytes: int = 256 * 1024,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if input_backlog < 1:
            raise ValueError("input_backlog must be at least 1")
        self.backend = backend
        self.window = window
        self.input_backlog = input_backlog
        self.max_active = max_active
        self.max_finished = max_finished
        self.spool_bytes = spool_bytes
        self.jobs: dict[str, Job] = {}
        self._created: Counter = Counter()
        self._finished: Counter = Counter()
        self._reads_total = 0
        self._output_bytes_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def _active_count(self) -> int:
        return sum(1 for job in self.jobs.values() if not job.finished)

    def create(
        self,
        kind: str,
        payload: dict | None = None,
        *,
        tenant: str | None = None,
    ) -> Job:
        """Create a job and start its runner task.

        Must be called from a running event loop. For ``map`` jobs the
        payload may carry an initial ``fastq`` chunk and ``final`` flag
        (append them with :meth:`append_input` afterwards — creation only
        wires the stream).
        """
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}"
            )
        if self._active_count() >= self.max_active:
            raise JobRejectedError(
                f"at capacity ({self.max_active} active jobs)"
            )
        payload = payload or {}
        job = Job(
            job_id=uuid.uuid4().hex[:16],
            kind=kind,
            tenant=tenant,
            output=JobOutput(self.spool_bytes),
        )
        if kind == "map":
            if getattr(self.backend, "mapper", None) is None:
                raise JobError("backend has no mapper attached")
            job.parser = FastqStreamParser()
            job.input_queue = asyncio.Queue(maxsize=self.input_backlog)
            runner = lambda: self._run_map(job)  # noqa: E731
        elif kind == "whole_genome":
            runner = lambda: self._run_whole_genome(job, payload)  # noqa: E731
        elif kind == "overlap":
            runner = lambda: self._run_overlap(job, payload)  # noqa: E731
        else:
            runner = lambda: self._run_text_search(job, payload)  # noqa: E731
        self.jobs[job.job_id] = job
        self._created[kind] += 1
        job.task = asyncio.create_task(self._run(job, runner))
        log_event(
            logger, "job_created", job_id=job.job_id, kind=kind, tenant=tenant
        )
        return job

    async def _run(self, job: Job, runner) -> None:
        job.state = RUNNING
        try:
            await runner()
        except asyncio.CancelledError:
            if job.state == RUNNING:
                job.state = CANCELLED
            raise
        except Exception as exc:  # noqa: BLE001 - job boundary
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.state = DONE
        finally:
            self._finalize(job)

    def _finalize(self, job: Job) -> None:
        job.finished_monotonic = time.monotonic()
        self._finished[job.state] += 1
        self._output_bytes_total += job.output.size
        log_event(
            logger,
            "job_finished",
            job_id=job.job_id,
            kind=job.kind,
            state=job.state,
            reads=job.reads_done,
            output_bytes=job.output.size,
            error=job.error,
        )
        self._evict_finished()

    def _evict_finished(self) -> None:
        finished = [job for job in self.jobs.values() if job.finished]
        excess = len(finished) - self.max_finished
        if excess <= 0:
            return
        finished.sort(key=lambda job: job.finished_monotonic or 0.0)
        for job in finished[:excess]:
            self.jobs.pop(job.job_id, None)
            job.output.close()

    async def cancel(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.finished and job.task is not None:
            job.task.cancel()
            try:
                await job.task
            except asyncio.CancelledError:
                pass
            if not job.finished:
                # Cancelled before the runner task ever got scheduled;
                # _run's finally never ran, so finalize here.
                job.state = CANCELLED
                self._finalize(job)
        return job

    async def stop(self) -> None:
        """Cancel every running job (their outputs stay fetchable)."""
        for job_id in list(self.jobs):
            job = self.jobs.get(job_id)
            if job is not None and not job.finished:
                await self.cancel(job_id)

    # ------------------------------------------------------------------
    # Map-job streaming input
    # ------------------------------------------------------------------
    async def append_input(
        self, job_id: str, text: str, *, final: bool = False
    ) -> dict:
        """Feed a FASTQ chunk (split anywhere) into a map job.

        Backpressure: when the runner's read window and backlog are full,
        this awaits — an HTTP client sees the POST complete only once the
        chunk's reads are actually queued. Malformed FASTQ fails the job
        and raises, naming the offending record.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.kind != "map":
            raise JobError(f"job {job_id} is a {job.kind} job, not map")
        if job.input_closed:
            raise JobError(f"job {job_id} input is already closed")
        if job.finished:
            raise JobError(f"job {job_id} is already {job.state}")
        try:
            records = job.parser.feed(text) if text else []
            if final:
                records = records + job.parser.close()
        except ValueError as exc:
            if job.task is not None:
                job.task.cancel()
            job.state = FAILED
            job.error = str(exc)
            raise
        job.input_bytes += len(text)
        job.reads_in += len(records)
        for record in records:
            await job.input_queue.put((record.name, record.sequence))
        if final:
            job.input_closed = True
            await job.input_queue.put(_EOF)
        return {
            "job_id": job.job_id,
            "received_reads": len(records),
            "reads_in": job.reads_in,
            "input_closed": job.input_closed,
        }

    # ------------------------------------------------------------------
    # Runners
    # ------------------------------------------------------------------
    def _reference_sequences(self) -> list[tuple[str, int]]:
        mapper = self.backend.mapper
        refs = getattr(mapper, "reference_sequences", None)
        if refs is not None:
            return refs()
        return [(mapper.genome.name, len(mapper.genome))]

    async def _run_map(self, job: Job) -> None:
        """FASTQ records in, SAM lines out, bounded in-flight window.

        Reads are submitted as individual ``map_read`` requests (the
        backend batches whatever is concurrently in flight) and their SAM
        lines are written strictly in input order.
        """
        job.output.append(sam_header(self._reference_sequences()))
        pending: deque[asyncio.Task] = deque()

        async def drain_one() -> None:
            result = await pending.popleft()
            job.output.append(result.record.to_line() + "\n")
            job.reads_done += 1
            self._reads_total += 1
            if result.record.is_mapped:
                job.reads_mapped += 1

        try:
            while True:
                item = await job.input_queue.get()
                if item is _EOF:
                    break
                name, sequence = item
                while len(pending) >= self.window:
                    await drain_one()
                pending.append(
                    asyncio.create_task(
                        self.backend.map_read(name, sequence, tenant=job.tenant)
                    )
                )
            while pending:
                await drain_one()
        finally:
            for task in pending:
                task.cancel()

    async def _windowed_aligns(
        self, job: Job, pairs: list[tuple[str, str]]
    ) -> list[Any]:
        """Align pairs through the backend, at most ``window`` in flight."""
        semaphore = asyncio.Semaphore(self.window)

        async def one(text: str, pattern: str) -> Any:
            async with semaphore:
                return await self.backend.align(
                    text, pattern, tenant=job.tenant
                )

        return list(
            await asyncio.gather(*(one(text, pattern) for text, pattern in pairs))
        )

    async def _run_whole_genome(self, job: Job, payload: dict) -> None:
        reference = payload.get("reference", "")
        query = payload.get("query", "")
        if not isinstance(reference, str) or not isinstance(query, str):
            raise JobError("reference and query must be strings")
        if not reference or not query:
            raise JobError("both reference and query must be non-empty")
        alignment = await self.backend.align(reference, query, tenant=job.tenant)
        summary = complete_alignment(alignment, len(reference), len(query))
        job.result = {
            "identity": summary.identity,
            "edit_distance": summary.edit_distance,
            "matches": summary.matches,
            "substitutions": summary.substitutions,
            "insertions": summary.insertions,
            "deletions": summary.deletions,
            "reference_span": summary.reference_span,
            "query_span": summary.query_span,
        }
        job.output.append(summary.cigar.to_sam() + "\n")

    async def _run_overlap(self, job: Job, payload: dict) -> None:
        reads = payload.get("reads")
        if not isinstance(reads, list) or not all(
            isinstance(read, str) for read in reads
        ):
            raise JobError("reads must be a list of strings")
        k = int(payload.get("k", 15))
        min_overlap = int(payload.get("min_overlap", 50))
        max_error_rate = float(payload.get("max_error_rate", 0.20))
        candidates = overlap_candidates(
            reads, k=k, min_overlap=min_overlap, max_error_rate=max_error_rate
        )
        alignments = await self._windowed_aligns(
            job, [(c.region, c.query) for c in candidates]
        )
        overlaps = select_overlaps(
            candidates, alignments, max_error_rate=max_error_rate
        )
        job.result = {
            "candidates": len(candidates),
            "overlaps": len(overlaps),
        }
        for overlap in overlaps:
            job.output.append(
                json.dumps(
                    {
                        "a_index": overlap.a_index,
                        "b_index": overlap.b_index,
                        "a_start": overlap.a_start,
                        "length": overlap.length,
                        "edit_distance": overlap.edit_distance,
                        "identity": overlap.identity,
                    }
                )
                + "\n"
            )

    async def _run_text_search(self, job: Job, payload: dict) -> None:
        text = payload.get("text", "")
        pattern = payload.get("pattern", "")
        if not isinstance(text, str) or not isinstance(pattern, str):
            raise JobError("text and pattern must be strings")
        if not pattern:
            raise JobError("pattern must be non-empty")
        max_errors = int(payload.get("max_errors", 0))
        if max_errors < 0:
            raise JobError("max_errors must be non-negative")
        with_traceback = bool(payload.get("with_traceback", False))
        max_matches = payload.get("max_matches")
        raw = await self.backend.scan(
            text, pattern, max_errors, tenant=job.tenant
        )
        collapsed = collapse_matches(raw, max_errors)
        if max_matches is not None:
            collapsed = collapsed[: int(max_matches)]
        cigars: list[str | None] = [None] * len(collapsed)
        if with_traceback:
            pairs = [
                (text[start : start + len(pattern) + max_errors], pattern)
                for start, _ in collapsed
            ]
            alignments = await self._windowed_aligns(job, pairs)
            cigars = [alignment.cigar.to_sam() for alignment in alignments]
        job.result = {"matches": len(collapsed)}
        for (start, distance), cigar in zip(collapsed, cigars):
            entry: dict[str, Any] = {"start": start, "distance": distance}
            if cigar is not None:
                entry["cigar"] = cigar
            job.output.append(json.dumps(entry) + "\n")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        by_state: Counter = Counter(job.state for job in self.jobs.values())
        return {
            "active": self._active_count(),
            "retained": len(self.jobs),
            "by_state": dict(by_state),
            "created_total": dict(self._created),
            "finished_total": dict(self._finished),
            "reads_total": self._reads_total,
            "output_bytes_total": self._output_bytes_total,
        }

    def collect_metrics(self) -> list[MetricFamily]:
        jobs = MetricFamily(
            "genasm_jobs", "gauge", "Jobs currently retained, by kind and state"
        )
        for (kind, state), count in Counter(
            (job.kind, job.state) for job in self.jobs.values()
        ).items():
            jobs.add(count, kind=kind, state=state)
        created = MetricFamily(
            "genasm_jobs_created_total", "counter", "Jobs created, by kind"
        )
        for kind, count in self._created.items():
            created.add(count, kind=kind)
        finished = MetricFamily(
            "genasm_jobs_finished_total",
            "counter",
            "Jobs finished, by terminal state",
        )
        for state, count in self._finished.items():
            finished.add(count, state=state)
        reads = MetricFamily(
            "genasm_job_reads_total",
            "counter",
            "Reads mapped through map jobs",
        ).add(self._reads_total)
        output_bytes = MetricFamily(
            "genasm_job_output_bytes_total",
            "counter",
            "Output bytes produced by finished jobs",
        ).add(self._output_bytes_total)
        return [jobs, created, finished, reads, output_bytes]
