"""Async serving layer: batch-accumulating front-end over the engines.

:class:`AlignmentServer` turns many small concurrent requests (``scan``,
``edit_distance``, ``align``, ``map_read``) into the large batches the
engine backends are built to amortize, with a size-or-deadline flush
policy (optionally adaptive — the deadline tracks an EWMA of the observed
arrival rate), bounded-queue backpressure, and graceful shutdown. See
:mod:`repro.serving.server` for the design notes.

:class:`AlignmentHTTPServer` (:mod:`repro.serving.http`) puts a stdlib
HTTP/1.1 JSON API in front of it — ``POST /v1/scan``,
``/v1/edit_distance``, ``/v1/align``, ``/v1/map``, plus ``GET /healthz``
and ``/v1/stats`` — with request validation, load shedding, and graceful
draining.
"""

from repro.serving.http import (
    AlignmentHTTPServer,
    EndpointStats,
    HttpError,
    open_memory_connection,
    serve_http,
)
from repro.serving.server import (
    AlignmentServer,
    ServerClosedError,
    ServingStats,
    serve_requests,
)

__all__ = [
    "AlignmentHTTPServer",
    "AlignmentServer",
    "EndpointStats",
    "HttpError",
    "ServerClosedError",
    "ServingStats",
    "open_memory_connection",
    "serve_http",
    "serve_requests",
]
