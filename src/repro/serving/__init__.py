"""Async serving layer: batch-accumulating front-end over the engines.

:class:`AlignmentServer` turns many small concurrent requests (``scan``,
``edit_distance``, ``align``, ``map_read``) into the large batches the
engine backends are built to amortize, with a size-or-deadline flush
policy (optionally adaptive — the deadline tracks an EWMA of the observed
arrival rate), bounded-queue backpressure, an optional content-addressed
result cache (:mod:`repro.serving.cache`), and graceful shutdown. See
:mod:`repro.serving.server` for the design notes.

:class:`AlignmentCluster` (:mod:`repro.serving.cluster`) replicates that
server N times — one private engine per replica — behind a health-aware
router with pluggable dispatch policies (``round_robin``,
``least_in_flight``, ``latency_ewma``, and the cache-affine
``consistent_hash``), replica-aware load shedding with a dynamic
``Retry-After`` computed from observed latency EWMAs, failure cooldowns
with cross-replica retry, clean per-replica draining, and optional
hedged requests (``hedge=True``) that duplicate tail-latency stragglers
onto a second replica and cancel the loser.

:class:`ClusterAutoscaler` (:mod:`repro.serving.autoscaler`) closes the
capacity loop: it watches sheds, windowed p99, and pending-slot
utilization, and grows (:meth:`AlignmentCluster.add_replica`) or drains
(:meth:`AlignmentCluster.drain_replica`) the cluster between min/max
bounds with a cooldown between actions, logging every decision into
``/v1/stats``.

:class:`AlignmentHTTPServer` (:mod:`repro.serving.http`) puts a stdlib
HTTP/1.1 JSON API in front of either — ``POST /v1/scan``,
``/v1/edit_distance``, ``/v1/align``, ``/v1/map``, plus ``GET /healthz``
and ``/v1/stats`` — with request validation, load shedding, and graceful
draining. Latency percentiles (p50/p90/p99) come from the mergeable
log-bucket :class:`LatencyHistogram` (:mod:`repro.serving.histogram`) and
appear per endpoint, per replica, and cluster-wide in ``/v1/stats``.

:mod:`repro.serving.qos` adds multi-tenant quality of service: a
:class:`QosPolicy` maps each request's ``X-API-Key`` to a tenant (with an
``anonymous`` fallback), charges a per-tenant :class:`TokenBucket` at
admission (429 + refill-derived ``Retry-After`` when empty), replaces the
server's FIFO pending queue with a deficit-round-robin :class:`FairQueue`
(per-tenant lanes weighted by :class:`TenantConfig`, interactive
``scan``/``edit_distance`` ahead of bulk work within a lane), and
propagates client deadlines (``timeout_ms`` / ``X-Request-Deadline``)
so expired work is dropped before the engine call (504).

:mod:`repro.serving.jobs` adds a streaming job fabric on top of all of
the above: ``POST /v1/jobs/map`` ingests chunked FASTQ with bounded
in-memory windows and emits SAM incrementally (resumable byte-offset
reads at ``GET /v1/jobs/<id>/output``), and the batch use-case workloads
(``whole_genome``, ``overlap``, ``text_search``) run as jobs whose unit
work re-enters the backend as ordinary requests — so routing, hedging,
QoS, and tracing all apply.

:mod:`repro.serving.observability` threads the whole stack together:
per-request traces (``X-Request-ID`` honored/echoed, span breakdowns at
``GET /v1/trace/<id>`` and ``?debug=timing``), a pull-model
:class:`MetricsRegistry` exposed in Prometheus text format at
``GET /metrics``, and structured JSON event logging (sheds, hedges,
autoscaler actions, slow requests) with per-event rate limiting.
"""

from repro.serving.autoscaler import AutoscalerDecision, ClusterAutoscaler
from repro.serving.cache import (
    MISS,
    AlignmentCache,
    CacheStats,
    make_cache,
    request_digest,
)
from repro.serving.cluster import (
    AlignmentCluster,
    ClusterSaturatedError,
    ConsistentHashPolicy,
    LatencyEwmaPolicy,
    LeastInFlightPolicy,
    Replica,
    RoundRobinPolicy,
    RoutingPolicy,
    ROUTING_POLICIES,
    make_policy,
    register_policy,
)
from repro.serving.histogram import LatencyHistogram
from repro.serving.observability import (
    EventRateLimiter,
    JsonFormatter,
    MetricFamily,
    MetricsRegistry,
    Span,
    Trace,
    TraceBuffer,
    configure_logging,
    current_trace,
    get_logger,
    log_event,
    new_trace_id,
    parse_prometheus_text,
    use_trace,
)
from repro.serving.http import (
    AlignmentHTTPServer,
    EndpointStats,
    HttpError,
    open_memory_connection,
    serve_http,
)
from repro.serving.jobs import (
    JOB_KINDS,
    Job,
    JobError,
    JobManager,
    JobRejectedError,
)
from repro.serving.qos import (
    DEFAULT_TENANT,
    INTERACTIVE_KINDS,
    AdmissionError,
    DeadlineExceededError,
    FairQueue,
    FifoQueue,
    QosPolicy,
    TenantConfig,
    TenantState,
    TenantStats,
    TokenBucket,
)
from repro.serving.server import (
    AlignmentServer,
    ServerClosedError,
    ServingStats,
    serve_requests,
)

__all__ = [
    "DEFAULT_TENANT",
    "INTERACTIVE_KINDS",
    "JOB_KINDS",
    "MISS",
    "ROUTING_POLICIES",
    "AdmissionError",
    "AlignmentCache",
    "AlignmentCluster",
    "AlignmentHTTPServer",
    "AlignmentServer",
    "AutoscalerDecision",
    "CacheStats",
    "ClusterAutoscaler",
    "ClusterSaturatedError",
    "ConsistentHashPolicy",
    "DeadlineExceededError",
    "EndpointStats",
    "EventRateLimiter",
    "FairQueue",
    "FifoQueue",
    "HttpError",
    "Job",
    "JobError",
    "JobManager",
    "JobRejectedError",
    "JsonFormatter",
    "LatencyEwmaPolicy",
    "LatencyHistogram",
    "LeastInFlightPolicy",
    "MetricFamily",
    "MetricsRegistry",
    "QosPolicy",
    "Replica",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "ServerClosedError",
    "ServingStats",
    "Span",
    "TenantConfig",
    "TenantState",
    "TenantStats",
    "TokenBucket",
    "Trace",
    "TraceBuffer",
    "configure_logging",
    "current_trace",
    "get_logger",
    "log_event",
    "make_cache",
    "make_policy",
    "new_trace_id",
    "parse_prometheus_text",
    "register_policy",
    "serve_http",
    "serve_requests",
    "use_trace",
]
