"""Async serving layer: batch-accumulating front-end over the engines.

:class:`AlignmentServer` turns many small concurrent requests (``scan``,
``edit_distance``, ``align``, ``map_read``) into the large batches the
engine backends are built to amortize, with a size-or-deadline flush
policy, bounded-queue backpressure, and graceful shutdown. See
:mod:`repro.serving.server` for the design notes.
"""

from repro.serving.server import (
    AlignmentServer,
    ServerClosedError,
    ServingStats,
    serve_requests,
)

__all__ = [
    "AlignmentServer",
    "ServerClosedError",
    "ServingStats",
    "serve_requests",
]
