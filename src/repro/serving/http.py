"""HTTP/JSON network front over the :class:`AlignmentServer` (stdlib only).

The serving layer turns many concurrent requests into few large engine
calls; this module puts a wire protocol in front of it so the batching is
shared across *processes and machines*, not just coroutines in one program.
It is a deliberately small HTTP/1.1 server built on ``asyncio`` streams —
no third-party framework — because the request surface is five JSON
endpoints and the hot path is the alignment engine, not the parser.

Endpoints
---------
* ``POST /v1/scan``          — ``{"text", "pattern", "k", "first_match_only"?}``
  -> ``{"matches": [{"start", "distance"}, ...]}``
* ``POST /v1/edit_distance`` — ``{"text", "pattern", "k"}``
  -> ``{"distance": int | null}``
* ``POST /v1/align``         — ``{"text", "pattern"}``
  -> ``{"cigar", "edit_distance", "text_start", "text_consumed"}``
* ``POST /v1/map``           — ``{"name", "read"}``
  -> ``{"sam", "mapped", "position", "reverse", "cigar"}``
* ``GET /healthz``           — liveness + load, never queued behind batches
* ``GET /v1/stats``          — serving counters + per-endpoint HTTP counters

Error mapping
-------------
Malformed JSON and invalid fields are 400; an oversize body is 413 before
the body is even read; an unknown path is 404 and a known path with the
wrong method 405; a saturated pending queue (``max_pending``) or a stopping
server sheds load with 503 instead of queueing — the client should retry
against another replica. Engine ``ValueError``s (bad symbols, negative
``k``) are client errors (400); anything else is a 500 with the exception
name, never a dropped connection.

With a :class:`~repro.serving.qos.QosPolicy` mounted (``qos=``), each
POST is accounted to the tenant named by its ``X-API-Key`` header
(missing/unknown keys share the ``anonymous`` tenant) and charged against
that tenant's token bucket *before* anything else: an empty bucket is 429
Too Many Requests with a ``Retry-After`` derived from the bucket's own
refill time — the client's quota, not server load, sets the wait — and
never a 503, which remains the server-side saturation signal. A request
may bound its own wait with ``timeout_ms`` in the JSON body (or an
``X-Request-Deadline`` header, also milliseconds); work still queued when
the budget runs out is dropped before the engine call and answered 504
Gateway Timeout. A client that disconnects while its request is queued
has the queued work cancelled (it counts toward ``stats.cancelled``, and
the engine never computes it).

Shutdown is graceful: :meth:`AlignmentHTTPServer.stop` stops accepting,
lets every in-flight request finish and be written back, closes idle
keep-alive connections, then drains the underlying alignment server.

Connections come from three places, all funneling into
:meth:`AlignmentHTTPServer.handle_connection`: a real listening socket
(:meth:`~AlignmentHTTPServer.start`), a ``socket.socketpair`` created by
:func:`open_memory_connection` (tests and benchmarks need no free port),
or anything else that supplies an ``asyncio`` stream pair.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Union
from urllib.parse import parse_qsl

from repro.serving.cluster import AlignmentCluster, ClusterSaturatedError
from repro.serving.histogram import LatencyHistogram
from repro.serving.jobs import JOB_KINDS, JobManager, JobRejectedError
from repro.serving.observability import (
    EventRateLimiter,
    MetricFamily,
    MetricsRegistry,
    Trace,
    TraceBuffer,
    current_trace,
    get_logger,
    log_event,
    new_trace_id,
    use_trace,
)
from repro.serving.qos import (
    AdmissionError,
    DeadlineExceededError,
    QosPolicy,
    TenantState,
)
from repro.serving.server import AlignmentServer, ServerClosedError

_LOGGER = get_logger("http")

#: What the front can mount: one batching server or a replicated cluster.
#: Both expose the same surface (request methods, ``saturated``,
#: ``suggested_retry_after``, ``health_payload``, ``stats_payload``), so
#: nothing below cares which it got.
ServingBackend = Union[AlignmentServer, AlignmentCluster]

#: Largest accepted request body; JSON for even 100 kbp reads fits well
#: under this, and anything larger is a client bug or abuse.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request line + single header line.
_MAX_LINE_BYTES = 16 * 1024

_JSON_CONTENT_TYPE = "application/json"

#: Prometheus text exposition format 0.0.4 — what ``GET /metrics`` serves.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Path prefix for per-request trace lookups (``GET /v1/trace/<id>``).
_TRACE_PREFIX = "/v1/trace/"

#: Path prefix for the streaming job fabric (``/v1/jobs/...``).
_JOBS_PREFIX = "/v1/jobs"

#: Default/maximum bytes served per ``GET /v1/jobs/<id>/output`` read.
_JOB_OUTPUT_DEFAULT_LIMIT = 64 * 1024
_JOB_OUTPUT_MAX_LIMIT = 1024 * 1024


@dataclass(frozen=True)
class _RawResponse:
    """A non-JSON response body (the ``/metrics`` exposition)."""

    body: bytes
    content_type: str


class HttpError(Exception):
    """A request failure that maps to one HTTP status code.

    ``retry_after`` (seconds) rides along on 503s so the response can
    carry a ``Retry-After`` hint computed from observed load rather than
    a constant.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class EndpointStats:
    """Counters for one route: attempts, successes, failures by status,
    and a latency histogram over the successful requests."""

    requests: int = 0
    ok: int = 0
    errors: dict[int, int] = field(default_factory=dict)
    #: Wall time of successful requests, parse-to-handler-return. Error
    #: responses are excluded — a flood of instant 400s would otherwise
    #: make a melting endpoint look fast.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record(self, status: int, seconds: float | None = None) -> None:
        self.requests += 1
        if status < 400:
            self.ok += 1
            if seconds is not None:
                self.latency.record(seconds)
        else:
            self.errors[status] = self.errors.get(status, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": {str(code): n for code, n in sorted(self.errors.items())},
            "latency": self.latency.to_dict(),
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Statuses whose responses carry a ``Retry-After`` header: 429 (the
#: tenant's bucket refill time) and 503 (the backend's load estimate).
_RETRYABLE_STATUSES = (429, 503)


@dataclass(frozen=True)
class _ParsedRequest:
    """One decoded HTTP request: enough for routing and JSON handling."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    #: Decoded query parameters (``?debug=timing``); last value wins.
    query: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass(frozen=True)
class _RequestContext:
    """Per-request QoS context threaded from the front into the backend."""

    #: Tenant name the request is accounted to (None when QoS is off).
    tenant: str | None = None
    #: Absolute ``time.monotonic()`` deadline parsed from ``timeout_ms``
    #: or ``X-Request-Deadline`` (None when the client set no budget).
    deadline: float | None = None


_EMPTY_CONTEXT = _RequestContext()


class AlignmentHTTPServer:
    """JSON-over-HTTP front funneling requests into one serving backend.

    Parameters
    ----------
    server:
        The backend every request is submitted to — a single batching
        :class:`AlignmentServer` or a replicated
        :class:`~repro.serving.cluster.AlignmentCluster`; the two share
        one surface and the front does not care which it mounts. When
        ``own_server=True`` (default), :meth:`stop` also stops it.
    max_body_bytes:
        Request bodies above this are rejected with 413 without being read.
    own_server:
        Whether :meth:`stop` drains and stops ``server`` too.
    trace:
        Create a :class:`~repro.serving.observability.Trace` per request
        (honoring/echoing ``X-Request-ID``, generating an id otherwise),
        propagate it through the backend, retain it in the ring buffer
        behind ``GET /v1/trace/<id>``, and honor ``?debug=timing``. On
        by default — the network front is where per-stage breakdowns
        earn their keep; switches the backend's span recording on too.
    trace_buffer:
        Completed/in-flight traces retained for ``/v1/trace/<id>``.
    metrics:
        A shared :class:`~repro.serving.observability.MetricsRegistry`
        to expose at ``GET /metrics`` (one is created when omitted).
        The front registers itself and the backend as collectors; pass
        the same registry to a
        :class:`~repro.serving.autoscaler.ClusterAutoscaler` to give it
        per-endpoint latency signals.
    slow_request_threshold:
        Requests slower than this (seconds) emit a rate-limited
        ``http.slow_request`` JSON log event carrying the trace id.
    qos:
        A :class:`~repro.serving.qos.QosPolicy` turning on multi-tenant
        admission control: every POST resolves its ``X-API-Key`` header
        to a tenant and is charged against that tenant's token bucket
        before validation or capacity checks (an empty bucket is 429
        with a refill-derived ``Retry-After``). Per-tenant outcome/
        latency blocks appear in ``/v1/stats`` and tenant-labeled
        ``genasm_qos_*`` families in ``/metrics``. Pass the same policy
        to the backend's ``qos=`` for weighted-fair queueing under it.
    disconnect_poll:
        Seconds between checks for a client that hung up while its
        request is in flight; on disconnect the queued work is cancelled
        (dropped before the engine call) instead of computed for nobody.
    """

    def __init__(
        self,
        server: ServingBackend,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        own_server: bool = True,
        trace: bool = True,
        trace_buffer: int = 256,
        metrics: MetricsRegistry | None = None,
        slow_request_threshold: float = 0.5,
        qos: QosPolicy | None = None,
        disconnect_poll: float = 0.05,
        jobs: bool = True,
        job_manager: JobManager | None = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if disconnect_poll <= 0:
            raise ValueError("disconnect_poll must be positive")
        self.server = server
        self.max_body_bytes = max_body_bytes
        self.own_server = own_server
        self.trace = trace
        self.traces = TraceBuffer(trace_buffer)
        self.slow_request_threshold = slow_request_threshold
        self.qos = qos
        self.disconnect_poll = disconnect_poll
        #: Requests abandoned by their client mid-flight (the queued
        #: work was cancelled; the backend counts it under cancelled).
        self.client_disconnects = 0
        self._events = EventRateLimiter()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.add_collector(self.collect_metrics)
        if qos is not None:
            self.metrics.add_collector(qos.collect_metrics)
        backend_collector = getattr(server, "collect_metrics", None)
        if backend_collector is not None:
            self.metrics.add_collector(backend_collector)
        # The job fabric rides on the same backend: each unit of job work
        # re-enters it as an ordinary request, so QoS/tracing apply.
        if job_manager is not None:
            self.job_manager: JobManager | None = job_manager
        else:
            self.job_manager = JobManager(server) if jobs else None
        if self.job_manager is not None:
            self.metrics.add_collector(self.job_manager.collect_metrics)
        if trace:
            enable = getattr(server, "enable_tracing", None)
            if enable is not None:
                enable(True)
        self._route_table = self._routes()
        self.stats: dict[str, EndpointStats] = {
            path: EndpointStats() for path in self._route_table
        }
        # Trace lookups and job requests are prefix-routed (the id is in
        # the path), so their counters get stats slots outside the table.
        self.stats["/v1/trace"] = EndpointStats()
        self.stats["/v1/jobs"] = EndpointStats()
        self._tcp_server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False

    def _routes(
        self,
    ) -> dict[str, tuple[str, Callable[[dict, _RequestContext], Awaitable[dict]]]]:
        """Route table: path -> (allowed method, handler coroutine)."""
        return {
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
            "/v1/stats": ("GET", self._handle_stats),
            "/v1/scan": ("POST", self._handle_scan),
            "/v1/edit_distance": ("POST", self._handle_edit_distance),
            "/v1/align": ("POST", self._handle_align),
            "/v1/map": ("POST", self._handle_map),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "AlignmentHTTPServer":
        """Listen on ``host:port`` (port 0 picks a free one; see :attr:`port`)."""
        if self._tcp_server is not None:
            raise RuntimeError("server is already listening")
        self._tcp_server = await asyncio.start_server(
            self.handle_connection, host=host, port=port
        )
        return self

    @property
    def port(self) -> int | None:
        """The bound port, once :meth:`start` has been called."""
        if self._tcp_server is None or not self._tcp_server.sockets:
            return None
        return self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: finish in-flight requests, then drain."""
        if self._closed:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        # In-flight requests run to completion and are written back; the
        # connection loops then see _closed and exit. Idle keep-alive
        # connections are woken by closing their transports, and every
        # handler task is awaited so none is left for loop teardown to
        # cancel mid-read.
        await self._idle.wait()
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            await asyncio.gather(
                *list(self._handler_tasks), return_exceptions=True
            )
        if self.job_manager is not None:
            await self.job_manager.stop()
        if self.own_server:
            await self.server.stop()

    async def __aenter__(self) -> "AlignmentHTTPServer":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve HTTP/1.1 requests on one stream pair until it closes."""
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while not self._closed:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    # The framing itself is broken (bad request line,
                    # oversize body): answer if possible, then hang up.
                    await self._write_response(
                        writer, exc.status, {"error": exc.message}, False
                    )
                    return
                if request is None:
                    return  # clean EOF between requests
                self._busy += 1
                self._idle.clear()
                try:
                    # A client-supplied X-Request-ID is honored (and
                    # echoed) even with tracing off; with tracing on an
                    # id is minted for every request.
                    request_id = request.headers.get("x-request-id") or (
                        new_trace_id() if self.trace else None
                    )
                    trace: Trace | None = None
                    if self.trace:
                        trace = Trace(
                            request_id, path=request.path, method=request.method
                        )
                        # Inserted now, not at completion: an in-flight
                        # request is already queryable by its id.
                        self.traces.add(trace)
                    with use_trace(trace):
                        dispatch = asyncio.ensure_future(
                            self._dispatch(request)
                        )
                        disconnected = await self._watch_dispatch(
                            reader, dispatch
                        )
                    if disconnected:
                        return  # nobody left to answer
                    status, payload, retry_after = dispatch.result()
                    self._annotate_response(
                        request, status, payload, request_id, trace
                    )
                    keep_alive = request.keep_alive and not self._closed
                    serialize = (
                        trace.begin("serialize") if trace is not None else None
                    )
                    await self._write_response(
                        writer,
                        status,
                        payload,
                        keep_alive,
                        retry_after=retry_after,
                        request_id=request_id,
                    )
                    if serialize is not None:
                        serialize.finish()
                    if trace is not None:
                        trace.finish()
                        self._log_slow_request(request, status, trace)
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # peer went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _watch_dispatch(
        self, reader: asyncio.StreamReader, dispatch: "asyncio.Future"
    ) -> bool:
        """Await ``dispatch`` while watching for the client hanging up.

        asyncio eagerly feeds the peer's bytes (and EOF) into the stream
        buffer, so ``reader.at_eof()`` flips on a disconnect without
        consuming any pipelined request data. On disconnect the dispatch
        task is cancelled — for work still queued that cancels the
        request future, so the engine never computes it and the backend
        counts it under ``stats.cancelled`` — and True is returned: there
        is nobody left to write a response to.
        """
        while True:
            done, _ = await asyncio.wait(
                {dispatch}, timeout=self.disconnect_poll
            )
            if done:
                return False
            if reader.at_eof():
                dispatch.cancel()
                try:
                    await dispatch
                except asyncio.CancelledError:
                    pass
                except Exception:  # noqa: BLE001 - abandoned anyway
                    pass
                self.client_disconnects += 1
                return True

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _ParsedRequest | None:
        """Parse one request; None on clean EOF before a request starts."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise HttpError(400, f"request line too long: {exc}") from exc
        if not request_line:
            return None
        if len(request_line) > _MAX_LINE_BYTES:
            raise HttpError(400, "request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as exc:
                raise HttpError(400, f"header line too long: {exc}") from exc
            if not line or line in (b"\r\n", b"\n"):
                break
            if len(line) > _MAX_LINE_BYTES:
                raise HttpError(400, "header line too long")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Not parsing a framing we don't implement is a correctness
            # matter: skipping a chunked body would desync every later
            # response on this keep-alive connection.
            raise HttpError(
                501, "Transfer-Encoding is not supported; send Content-Length"
            )
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > self.max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        query = dict(parse_qsl(query_string)) if query_string else {}
        return _ParsedRequest(
            method=method, path=path, headers=headers, body=body, query=query
        )

    async def _dispatch(
        self, request: _ParsedRequest
    ) -> tuple[int, Any, float | None]:
        """Route one parsed request; always returns a JSON-able response
        plus the Retry-After hint for 503s (None elsewhere)."""
        if request.path.startswith(_TRACE_PREFIX):
            return self._dispatch_trace_lookup(request)
        if request.path == _JOBS_PREFIX or request.path.startswith(
            _JOBS_PREFIX + "/"
        ):
            return await self._dispatch_jobs(request)
        route = self._route_table.get(request.path)
        if route is None:
            return 404, {"error": f"unknown path {request.path!r}"}, None
        method, handler = route
        endpoint = self.stats[request.path]
        if request.method != method:
            endpoint.record(405)
            return (
                405,
                {
                    "error": f"{request.path} requires {method}, "
                    f"got {request.method}"
                },
                None,
            )
        retry_after: float | None = None
        tenant_state: TenantState | None = None
        started = time.monotonic()
        try:
            ctx = _EMPTY_CONTEXT
            if method == "POST":
                trace = current_trace()
                parse = (
                    trace.begin("parse", bytes=len(request.body))
                    if trace is not None
                    else None
                )
                payload = self._decode_body(request)
                if parse is not None:
                    parse.finish()
                if self.qos is not None:
                    # Admission happens exactly once, here at the front —
                    # charged before validation or capacity checks so an
                    # abusive tenant cannot burn 400s for free, and never
                    # inside the backend, where retries and hedges would
                    # double-charge the bucket.
                    tenant_state = self.qos.resolve(
                        request.headers.get("x-api-key")
                    )
                    self.qos.admit(tenant_state)
                    ctx = _RequestContext(
                        tenant=tenant_state.name,
                        deadline=_request_deadline(request, payload),
                    )
                    if trace is not None:
                        trace.meta["tenant"] = tenant_state.name
                else:
                    ctx = _RequestContext(
                        deadline=_request_deadline(request, payload)
                    )
            else:
                payload = {}
            result = await handler(payload, ctx)
            status = 200
        except AdmissionError as exc:
            # Over-quota is the tenant's problem, not the server's: 429
            # with the bucket's own refill time, never a 503.
            status, result = 429, {"error": str(exc)}
            retry_after = exc.retry_after
        except DeadlineExceededError as exc:
            status, result = 504, {"error": str(exc)}
        except HttpError as exc:
            status, result = exc.status, {"error": exc.message}
            retry_after = exc.retry_after
        except ClusterSaturatedError as exc:
            # Raced past the capacity pre-check into a saturating cluster;
            # same shedding contract, same dynamic hint.
            status, result = 503, {"error": str(exc)}
            retry_after = exc.retry_after
        except ServerClosedError:
            status, result = 503, {"error": "server is shutting down"}
        except ValueError as exc:
            # Engine-side input rejections (bad symbols, negative k, ...)
            # are the client's fault, not an internal failure.
            status, result = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - wire boundary
            status = 500
            result = {"error": f"{type(exc).__name__}: {exc}"}
        if status in _RETRYABLE_STATUSES and retry_after is not None:
            # Mirror the header in the body: the header is integer-rounded
            # per RFC 9110, the body keeps the precise estimate.
            result["retry_after"] = round(retry_after, 3)
        elapsed = time.monotonic() - started
        endpoint.record(status, elapsed)
        if tenant_state is not None:
            self.qos.record(tenant_state, status, elapsed)
        return status, result, retry_after

    async def _dispatch_jobs(
        self, request: _ParsedRequest
    ) -> tuple[int, Any, float | None]:
        """Prefix-routed job fabric endpoints (``/v1/jobs/...``).

        ``POST /v1/jobs/<kind>`` creates a job (map jobs may carry an
        initial ``fastq`` chunk), ``POST /v1/jobs/<id>/input`` appends
        FASTQ, ``GET /v1/jobs/<id>`` reports status, ``GET
        /v1/jobs/<id>/output?offset=N`` reads spooled output from any
        byte offset (the resumability contract), and ``POST
        /v1/jobs/<id>/cancel`` cancels. Job POSTs pass QoS admission like
        any other POST, and each unit of job work re-enters the backend
        as an ordinary request under the creating tenant.
        """
        endpoint = self.stats["/v1/jobs"]
        retry_after: float | None = None
        tenant_state: TenantState | None = None
        started = time.monotonic()
        try:
            if self.job_manager is None:
                raise HttpError(501, "the job fabric is disabled on this server")
            tenant: str | None = None
            if request.method == "POST":
                payload = (
                    self._decode_body(request) if request.body else {}
                )
                if self.qos is not None:
                    tenant_state = self.qos.resolve(
                        request.headers.get("x-api-key")
                    )
                    self.qos.admit(tenant_state)
                    tenant = tenant_state.name
            else:
                payload = {}
            status, result = await self._handle_jobs_request(
                request, payload, tenant
            )
        except AdmissionError as exc:
            status, result = 429, {"error": str(exc)}
            retry_after = exc.retry_after
        except JobRejectedError as exc:
            status, result = 503, {"error": str(exc)}
            retry_after = exc.retry_after
        except HttpError as exc:
            status, result = exc.status, {"error": exc.message}
            retry_after = exc.retry_after
        except KeyError as exc:
            status = 404
            result = {"error": f"no job {exc.args[0]!r} (finished jobs are evicted eventually)"}
        except ValueError as exc:
            status, result = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - wire boundary
            status = 500
            result = {"error": f"{type(exc).__name__}: {exc}"}
        if status in _RETRYABLE_STATUSES and retry_after is not None:
            result["retry_after"] = round(retry_after, 3)
        elapsed = time.monotonic() - started
        endpoint.record(status, elapsed)
        if tenant_state is not None:
            self.qos.record(tenant_state, status, elapsed)
        return status, result, retry_after

    async def _handle_jobs_request(
        self,
        request: _ParsedRequest,
        payload: dict[str, Any],
        tenant: str | None,
    ) -> tuple[int, dict[str, Any]]:
        manager = self.job_manager
        tail = request.path[len(_JOBS_PREFIX) :].strip("/")
        parts = [part for part in tail.split("/") if part]
        if not parts:
            raise HttpError(
                404,
                f"POST {_JOBS_PREFIX}/<kind> to create a job "
                f"(kinds: {', '.join(JOB_KINDS)})",
            )
        if len(parts) == 1 and parts[0] in JOB_KINDS:
            if request.method != "POST":
                raise HttpError(
                    405, f"{request.path} requires POST, got {request.method}"
                )
            kind = parts[0]
            job = manager.create(kind, payload, tenant=tenant)
            response: dict[str, Any] = {"job_id": job.job_id, "kind": kind}
            if kind == "map":
                fastq = payload.get("fastq", "")
                if not isinstance(fastq, str):
                    raise HttpError(400, "field 'fastq' must be a string")
                final = _bool_field(payload, "final", False)
                if fastq or final:
                    response.update(
                        await manager.append_input(
                            job.job_id, fastq, final=final
                        )
                    )
            response["state"] = job.state
            return 200, response
        job_id = parts[0]
        if len(parts) == 1:
            if request.method == "POST":
                raise HttpError(
                    400,
                    f"unknown job kind {job_id!r}; expected one of "
                    f"{', '.join(JOB_KINDS)}",
                )
            job = manager.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return 200, job.status_payload()
        if len(parts) != 2:
            raise HttpError(404, f"unknown path {request.path!r}")
        action = parts[1]
        if action == "input":
            if request.method != "POST":
                raise HttpError(
                    405, f"{request.path} requires POST, got {request.method}"
                )
            fastq = payload.get("fastq", "")
            if not isinstance(fastq, str):
                raise HttpError(400, "field 'fastq' must be a string")
            final = _bool_field(payload, "final", False)
            return 200, await manager.append_input(job_id, fastq, final=final)
        if action == "output":
            if request.method != "GET":
                raise HttpError(
                    405, f"{request.path} requires GET, got {request.method}"
                )
            job = manager.get(job_id)
            if job is None:
                raise KeyError(job_id)
            offset = _query_int(request, "offset", 0, minimum=0)
            limit = min(
                _query_int(
                    request, "limit", _JOB_OUTPUT_DEFAULT_LIMIT, minimum=1
                ),
                _JOB_OUTPUT_MAX_LIMIT,
            )
            served_offset = min(offset, job.output.size)
            data = job.output.read(served_offset, limit)
            next_offset = served_offset + len(data)
            return 200, {
                "job_id": job.job_id,
                "state": job.state,
                "offset": served_offset,
                "data": data,
                "next_offset": next_offset,
                "output_bytes": job.output.size,
                "eof": job.finished and next_offset >= job.output.size,
            }
        if action == "cancel":
            if request.method != "POST":
                raise HttpError(
                    405, f"{request.path} requires POST, got {request.method}"
                )
            job = await manager.cancel(job_id)
            return 200, {"job_id": job.job_id, "state": job.state}
        raise HttpError(404, f"unknown path {request.path!r}")

    def _dispatch_trace_lookup(
        self, request: _ParsedRequest
    ) -> tuple[int, dict[str, Any], None]:
        """``GET /v1/trace/<id>``: one retained trace's span breakdown."""
        endpoint = self.stats["/v1/trace"]
        if request.method != "GET":
            endpoint.record(405)
            return (
                405,
                {"error": f"{request.path} requires GET, got {request.method}"},
                None,
            )
        started = time.monotonic()
        trace_id = request.path[len(_TRACE_PREFIX) :]
        found = self.traces.get(trace_id)
        if found is None:
            endpoint.record(404)
            return (
                404,
                {"error": f"no retained trace {trace_id!r} (evicted or never seen)"},
                None,
            )
        endpoint.record(200, time.monotonic() - started)
        return 200, found.to_dict(), None

    def _annotate_response(
        self,
        request: _ParsedRequest,
        status: int,
        payload: Any,
        request_id: str | None,
        trace: Trace | None,
    ) -> None:
        """Fold the request id and optional timing into a JSON response.

        ``/healthz`` and 503 bodies always carry the id (so a shed
        request is attributable from the client side alone), and
        ``?debug=timing`` inlines the span breakdown recorded so far
        (everything but this response's own serialization — the full
        breakdown stays at ``/v1/trace/<id>``).
        """
        if not isinstance(payload, dict):
            return
        if request_id is not None and (
            request.path == "/healthz" or status == 503
        ):
            payload.setdefault("request_id", request_id)
        if trace is not None and request.query.get("debug") == "timing":
            payload["timing"] = trace.to_dict()

    def _log_slow_request(
        self, request: _ParsedRequest, status: int, trace: Trace
    ) -> None:
        duration = trace.duration
        if duration is None or duration < self.slow_request_threshold:
            return
        log_event(
            _LOGGER,
            "http.slow_request",
            level=logging.WARNING,
            trace_id=trace.trace_id,
            limiter=self._events,
            limit_key=f"slow:{request.path}",
            path=request.path,
            status=status,
            duration_ms=duration * 1e3,
        )

    def _decode_body(self, request: _ParsedRequest) -> dict[str, Any]:
        if not request.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(request.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
        *,
        retry_after: float | None = None,
        request_id: str | None = None,
    ) -> None:
        if isinstance(payload, _RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body, content_type = json.dumps(payload).encode(), _JSON_CONTENT_TYPE
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if request_id is not None:
            headers.append(f"X-Request-ID: {request_id}")
        if status in _RETRYABLE_STATUSES:
            # Retry-After is delay-seconds (an integer) on the wire; the
            # precise float estimate travels in the JSON body.
            headers.append(
                f"Retry-After: {max(1, math.ceil(retry_after or 1.0))}"
            )
        head = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------
    def _check_capacity(self) -> None:
        """Shed load instead of queueing when the pending bound is hit.

        The Retry-After hint comes from the backend's observed flush and
        service-time EWMAs — how long until capacity actually frees — not
        a constant.
        """
        if self.server.saturated:
            raise HttpError(
                503,
                f"server at capacity ({self.server.max_pending} pending "
                "requests); retry shortly",
                retry_after=self.server.suggested_retry_after(),
            )
        if self._closed:
            raise HttpError(503, "server is shutting down")

    async def _handle_scan(
        self, payload: dict[str, Any], ctx: _RequestContext
    ) -> dict[str, Any]:
        text = _string_field(payload, "text")
        pattern = _string_field(payload, "pattern", non_empty=True)
        k = _int_field(payload, "k", minimum=0)
        first_match_only = _bool_field(payload, "first_match_only", False)
        self._check_capacity()
        matches = await self.server.scan(
            text,
            pattern,
            k,
            first_match_only=first_match_only,
            tenant=ctx.tenant,
            deadline=ctx.deadline,
        )
        return {
            "matches": [
                {"start": match.start, "distance": match.distance}
                for match in matches
            ]
        }

    async def _handle_edit_distance(
        self, payload: dict[str, Any], ctx: _RequestContext
    ) -> dict[str, Any]:
        text = _string_field(payload, "text")
        pattern = _string_field(payload, "pattern", non_empty=True)
        k = _int_field(payload, "k", minimum=0)
        self._check_capacity()
        distance = await self.server.edit_distance(
            text, pattern, k, tenant=ctx.tenant, deadline=ctx.deadline
        )
        return {"distance": distance}

    async def _handle_align(
        self, payload: dict[str, Any], ctx: _RequestContext
    ) -> dict[str, Any]:
        text = _string_field(payload, "text")
        pattern = _string_field(payload, "pattern")
        self._check_capacity()
        alignment = await self.server.align(
            text, pattern, tenant=ctx.tenant, deadline=ctx.deadline
        )
        return {
            "cigar": alignment.cigar.to_sam(),
            "edit_distance": alignment.edit_distance,
            "text_start": alignment.text_start,
            "text_consumed": alignment.text_consumed,
        }

    async def _handle_map(
        self, payload: dict[str, Any], ctx: _RequestContext
    ) -> dict[str, Any]:
        if self.server.mapper is None:
            raise HttpError(
                501, "mapping is not configured on this server (no mapper)"
            )
        name = _string_field(payload, "name", non_empty=True)
        read = _string_field(payload, "read", non_empty=True)
        self._check_capacity()
        result = await self.server.map_read(
            name, read, tenant=ctx.tenant, deadline=ctx.deadline
        )
        record = result.record
        return {
            "sam": record.to_line(),
            "mapped": record.is_mapped,
            "position": result.candidate_position,
            "reverse": result.reverse,
            "cigar": record.cigar.to_sam() if record.cigar is not None else None,
        }

    async def _handle_healthz(
        self, _payload: dict[str, Any], _ctx: _RequestContext
    ) -> dict[str, Any]:
        # Served inline — never behind the batch queue — so load balancers
        # get an answer even when the engine is saturated with work. The
        # backend (server or cluster) contributes its own load fields.
        payload = self.server.health_payload()
        payload["status"] = "draining" if self._closed else "ok"
        return payload

    async def _handle_stats(
        self, _payload: dict[str, Any], _ctx: _RequestContext
    ) -> dict[str, Any]:
        # The backend describes itself (a cluster adds per-replica blocks
        # and cluster counters); the front adds its per-endpoint HTTP
        # counters and latency percentiles on top.
        payload = self.server.stats_payload()
        payload["endpoints"] = {
            path: stats.to_dict() for path, stats in self.stats.items()
        }
        if self.qos is not None:
            payload["tenants"] = self.qos.stats_payload()
        if self.job_manager is not None:
            payload["jobs"] = self.job_manager.stats_payload()
        if self.client_disconnects:
            payload["client_disconnects"] = self.client_disconnects
        return payload

    async def _handle_metrics(
        self, _payload: dict[str, Any], _ctx: _RequestContext
    ) -> _RawResponse:
        # Pull model: every registered collector (this front, the backend
        # and whatever it aggregates — replicas, caches, autoscaler) is
        # invoked at scrape time, so the page is always current.
        return _RawResponse(
            self.metrics.render().encode(), _METRICS_CONTENT_TYPE
        )

    def collect_metrics(self) -> list[MetricFamily]:
        """The front's own metric families (per-endpoint HTTP counters)."""
        requests = MetricFamily(
            "genasm_http_requests_total",
            "counter",
            "HTTP requests received, by endpoint.",
        )
        errors = MetricFamily(
            "genasm_http_errors_total",
            "counter",
            "HTTP error responses, by endpoint and status code.",
        )
        duration = MetricFamily(
            "genasm_http_request_duration_seconds",
            "histogram",
            "Wall time of successful requests, parse to handler return.",
        )
        disconnects = MetricFamily(
            "genasm_http_client_disconnects_total",
            "counter",
            "Requests abandoned mid-flight by a disconnecting client.",
        )
        disconnects.add(self.client_disconnects)
        for path, stats in sorted(self.stats.items()):
            if not stats.requests:
                continue
            requests.add(stats.requests, endpoint=path)
            for code, count in sorted(stats.errors.items()):
                errors.add(count, endpoint=path, code=str(code))
            duration.add_histogram(stats.latency, endpoint=path)
        return [requests, errors, duration, disconnects]


# ----------------------------------------------------------------------
# Field validation helpers
# ----------------------------------------------------------------------
def _string_field(
    payload: dict[str, Any], name: str, *, non_empty: bool = False
) -> str:
    if name not in payload:
        raise HttpError(400, f"missing required field {name!r}")
    value = payload[name]
    if not isinstance(value, str):
        raise HttpError(400, f"field {name!r} must be a string")
    if non_empty and not value:
        raise HttpError(400, f"field {name!r} must be non-empty")
    return value


def _query_int(
    request: _ParsedRequest, name: str, default: int, *, minimum: int
) -> int:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name!r} must be an integer")
    if value < minimum:
        raise HttpError(400, f"query parameter {name!r} must be >= {minimum}")
    return value


def _int_field(payload: dict[str, Any], name: str, *, minimum: int) -> int:
    if name not in payload:
        raise HttpError(400, f"missing required field {name!r}")
    value = payload[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(400, f"field {name!r} must be an integer")
    if value < minimum:
        raise HttpError(400, f"field {name!r} must be >= {minimum}")
    return value


def _bool_field(payload: dict[str, Any], name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise HttpError(400, f"field {name!r} must be a boolean")
    return value


def _request_deadline(
    request: _ParsedRequest, payload: dict[str, Any]
) -> float | None:
    """Absolute monotonic deadline from the client's latency budget.

    ``timeout_ms`` in the JSON body wins over an ``X-Request-Deadline``
    header; both are milliseconds of *remaining* budget (a relative
    duration survives clock skew between client and server, an absolute
    wall-clock timestamp would not). None when the client set neither.
    """
    raw: Any = payload.get("timeout_ms")
    source = "timeout_ms"
    if raw is None:
        header = request.headers.get("x-request-deadline")
        if header is None:
            return None
        source = "X-Request-Deadline"
        try:
            raw = float(header)
        except ValueError:
            raise HttpError(
                400, f"bad X-Request-Deadline {header!r}: not a number"
            ) from None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise HttpError(400, f"{source} must be a number of milliseconds")
    if not math.isfinite(raw) or raw <= 0:
        raise HttpError(
            400, f"{source} must be a positive finite number of milliseconds"
        )
    return time.monotonic() + raw / 1e3


async def open_memory_connection(
    http_server: AlignmentHTTPServer,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Connect a client to ``http_server`` without a listening port.

    Builds a ``socket.socketpair``, serves one end through
    :meth:`AlignmentHTTPServer.handle_connection` on a background task, and
    returns the client end as ordinary asyncio streams. Tests and
    benchmarks exercise the complete wire path — parsing, routing,
    batching, response framing — with no free TCP port required.
    """
    client_sock, server_sock = socket.socketpair()
    client_sock.setblocking(False)
    server_sock.setblocking(False)
    client_reader, client_writer = await asyncio.open_connection(
        sock=client_sock
    )
    server_reader, server_writer = await asyncio.open_connection(
        sock=server_sock
    )
    asyncio.get_running_loop().create_task(
        http_server.handle_connection(server_reader, server_writer)
    )
    return client_reader, client_writer


async def serve_http(
    *,
    host: str = "127.0.0.1",
    port: int = 8777,
    server: ServingBackend | None = None,
    trace: bool = True,
    metrics: MetricsRegistry | None = None,
    qos: QosPolicy | None = None,
    **server_kwargs: Any,
) -> AlignmentHTTPServer:
    """Start an HTTP front (building an :class:`AlignmentServer` if needed).

    ``server`` may also be an :class:`~repro.serving.cluster.AlignmentCluster`
    — the front mounts either. ``trace`` and ``metrics`` pass through to
    :class:`AlignmentHTTPServer`. ``qos`` mounts a
    :class:`~repro.serving.qos.QosPolicy` on the front (admission
    control) and — when the backend is built here — on the server too
    (weighted-fair queueing). Extra keyword arguments construct a
    single alignment server (``engine=``, ``batch_size=``,
    ``adaptive_flush=``, ...). The returned front is already listening;
    stop it with :meth:`AlignmentHTTPServer.stop`.
    """
    own = server is None
    if server is None:
        if qos is not None:
            server_kwargs.setdefault("qos", qos)
        server = AlignmentServer(**server_kwargs)
    elif server_kwargs:
        raise ValueError("pass server_kwargs only when server is None")
    front = AlignmentHTTPServer(
        server, own_server=own, trace=trace, metrics=metrics, qos=qos
    )
    await front.start(host=host, port=port)
    return front
