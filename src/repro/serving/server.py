"""The asyncio alignment server: many small requests, few large engine calls.

The engine layer is batch-first because every backend — NumPy arrays, a
process pool, eventually a GPU — amortizes per-call overhead across the
batch. A service facing many concurrent clients sees the opposite shape:
thousands of *single-pair* requests arriving independently. This module
bridges the two: :class:`AlignmentServer` accumulates incoming requests in
an in-memory queue and flushes them as one engine call per request group
whenever either

* the queue reaches ``batch_size`` requests (a *size* flush), or
* ``flush_interval`` seconds elapse after the first queued request
  (a *deadline* flush — bounds worst-case latency under light traffic).

With ``adaptive_flush=True`` the deadline is not fixed: the server keeps an
exponentially-weighted moving average of the gap between request arrivals
and treats the deadline as an *idle timeout* sized from it — each arrival
re-arms the flush timer to ``gap_factor * EWMA gap`` (clamped to
``[min_flush_interval, max_flush_interval]``), so a burst is flushed as
soon as the line goes quiet for a few typical gaps instead of idling out a
fixed window, while a full ``max_flush_interval`` after the *first* queued
request still forces a flush — the hard bound on added latency however the
arrivals pan out.

Each request resolves its own :class:`asyncio.Future`, so callers just
``await server.scan(...)`` and never see the batching. Flushes execute on a
single dedicated worker thread (the engine call is synchronous and
CPU-bound), which keeps the event loop free to keep accumulating the *next*
batch while the current one computes — with the ``"sharded"`` backend the
worker thread spends its time waiting on the process pool, so request
accumulation, IPC, and kernel execution genuinely overlap.

Backpressure is a bounded pending limit: at most ``max_pending`` requests
may be queued or in flight; further submissions wait (``await``) for slots
rather than growing the queue without bound. Shutdown is graceful —
:meth:`stop` flushes whatever is queued, waits for in-flight batches, and
rejects later submissions with :class:`ServerClosedError`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.aligner import Alignment, GenAsmAligner
from repro.core.bitap import BitapMatch
from repro.engine.registry import get_engine
from repro.serving.cache import MISS, AlignmentCache, make_cache, request_digest
from repro.serving.histogram import LatencyHistogram
from repro.serving.observability import MetricFamily, Span, Trace, current_trace
from repro.serving.qos import (
    DEFAULT_TENANT,
    INTERACTIVE_KINDS,
    DeadlineExceededError,
    FairQueue,
    FifoQueue,
    QosPolicy,
)
from repro.sequences.alphabet import DNA, Alphabet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.registry import AlignmentEngine
    from repro.mapping.pipeline import MappingResult, ReadMapper


class ServerClosedError(RuntimeError):
    """Raised when a request is submitted to a stopped server."""


@dataclass
class ServingStats:
    """Counters describing the batching the server actually achieved."""

    requests: int = 0
    served: int = 0
    failed: int = 0
    #: Requests cancelled while queued (a hedge won elsewhere, a client
    #: went away): dropped before the engine call instead of computed.
    cancelled: int = 0
    #: Requests whose deadline passed while queued: dropped through the
    #: same before-the-engine-call path, answered with
    #: :class:`~repro.serving.qos.DeadlineExceededError`.
    expired: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    final_flushes: int = 0
    engine_calls: int = 0
    max_batch: int = 0
    #: Request latencies (submit -> result), a mergeable log-bucket
    #: histogram so percentiles survive aggregation across replicas.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def mean_batch(self) -> float:
        """Mean requests per flush — the amortization the queue bought."""
        if self.flushes == 0:
            return 0.0
        return self.served / self.flushes if self.served else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Wire form for ``/v1/stats`` (latency as percentile fields)."""
        return {
            "requests": self.requests,
            "served": self.served,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "flushes": self.flushes,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "engine_calls": self.engine_calls,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "latency": self.latency.to_dict(),
        }

    def merge(self, other: "ServingStats") -> "ServingStats":
        """Fold ``other``'s counters and histogram into this one."""
        self.requests += other.requests
        self.served += other.served
        self.failed += other.failed
        self.cancelled += other.cancelled
        self.expired += other.expired
        self.flushes += other.flushes
        self.size_flushes += other.size_flushes
        self.deadline_flushes += other.deadline_flushes
        self.final_flushes += other.final_flushes
        self.engine_calls += other.engine_calls
        self.max_batch = max(self.max_batch, other.max_batch)
        self.latency.merge(other.latency)
        return self

    def metric_families(self, **labels: Any) -> list[MetricFamily]:
        """These counters and the latency histogram as metric families."""
        outcomes = MetricFamily(
            "genasm_serving_requests_total",
            "counter",
            "Requests by final serving outcome.",
        )
        for outcome, value in (
            ("received", self.requests),
            ("served", self.served),
            ("failed", self.failed),
            ("cancelled", self.cancelled),
            ("expired", self.expired),
        ):
            outcomes.add(value, outcome=outcome, **labels)
        flushes = MetricFamily(
            "genasm_serving_flushes_total",
            "counter",
            "Batch flushes by trigger reason.",
        )
        for reason, value in (
            ("size", self.size_flushes),
            ("deadline", self.deadline_flushes),
            ("final", self.final_flushes),
        ):
            flushes.add(value, reason=reason, **labels)
        engine_calls = MetricFamily(
            "genasm_serving_engine_calls_total",
            "counter",
            "Synchronous engine batch calls dispatched.",
        ).add(self.engine_calls, **labels)
        latency = MetricFamily(
            "genasm_serving_request_latency_seconds",
            "histogram",
            "Submit-to-result latency observed by callers.",
        ).add_histogram(self.latency, **labels)
        return [outcomes, flushes, engine_calls, latency]


@dataclass
class _Request:
    """One queued request: its kind, batching key, payload, and future."""

    kind: str
    key: tuple
    payload: Any
    future: "asyncio.Future[Any]" = field(repr=False, default=None)
    #: Content digest for the result cache (None when caching is off).
    digest: str | None = None
    #: Tenant the request is accounted (and fair-queued) under.
    tenant: str = DEFAULT_TENANT
    #: Absolute ``time.monotonic()`` deadline; past it the request is
    #: dropped at flush time instead of burning an engine slot.
    deadline: float | None = None
    #: The request's trace, carried explicitly because a flush handles
    #: many requests at once — one context variable cannot name them all.
    trace: Trace | None = field(repr=False, default=None)
    #: Open ``queue_wait`` span, closed when the flush takes the batch
    #: (or the request is dropped as cancelled).
    queue_span: Span | None = field(repr=False, default=None)


class AlignmentServer:
    """Batch-accumulating asyncio front-end over one alignment engine.

    Parameters
    ----------
    engine:
        Compute backend (instance, registered name, or None for the process
        default) used for ``scan`` / ``edit_distance`` / ``align`` requests.
    mapper:
        Optional :class:`~repro.mapping.pipeline.ReadMapper`; required for
        :meth:`map_read` requests, which flush through its cross-read
        batched :meth:`~repro.mapping.pipeline.ReadMapper.map_reads`.
    batch_size:
        Queue length that triggers an immediate flush (``B``).
    flush_interval:
        Seconds after the first queued request before a deadline flush
        (``N`` ms in the paper-style notation; bounds tail latency). With
        ``adaptive_flush`` this is the starting deadline before any
        arrivals have been observed.
    max_pending:
        Backpressure bound: maximum requests queued or in flight at once.
    cache:
        Content-addressed result cache
        (:class:`~repro.serving.cache.AlignmentCache`): pass an instance,
        ``True`` for a default-sized private cache, or ``None``/``False``
        (default) for no caching. A hit answers before the request is
        queued — no slot taken, no engine call — and every engine result
        is written back keyed on a digest of
        ``(task, text, pattern, k, config)``.
    adaptive_flush:
        Treat the deadline as an idle timeout sized from an EWMA of
        observed inter-arrival gaps: every arrival re-arms the flush timer
        to ``gap_factor * EWMA gap`` (clamped to the min/max bounds
        below), flushing as soon as arrivals stall rather than after a
        fixed window.
    min_flush_interval, max_flush_interval:
        Clamp bounds for the adaptive deadline; default to
        ``flush_interval / 4`` and ``flush_interval * 4``. The max bound
        also caps the total wait since the *first* queued request, so it
        is the worst-case added latency a request can see.
    gap_factor:
        How many EWMA gaps of silence end a batch. Larger values ride out
        jittery bursts at the cost of latency on genuinely quiet lines.
    arrival_smoothing:
        EWMA weight of the newest inter-arrival gap (0 < alpha <= 1);
        larger values adapt faster but track noise.
    qos:
        Multi-tenant queueing discipline. Pass a
        :class:`~repro.serving.qos.QosPolicy` to replace the FIFO
        pending queue with deficit-round-robin per-tenant lanes whose
        weights come from the policy (admission control stays at the
        network front — the server never charges buckets); pass ``True``
        for fair queueing with uniform weights. Default ``None`` keeps
        strict FIFO order.
    alphabet:
        Alphabet handed to every engine call.
    trace:
        Record per-stage spans (``cache_lookup``, ``queue_wait``,
        ``batch_assembly``, ``engine``) into the submitting context's
        current :class:`~repro.serving.observability.Trace`. Off by
        default for bare servers — when off, the whole machinery is one
        attribute check per request. The HTTP front turns it on.
    name:
        Label for this server in spans and metrics (the cluster sets it
        to the replica name; a bare server is just ``"server"``).

    Use as an async context manager (``async with AlignmentServer(...)``)
    or call :meth:`stop` explicitly; both drain the queue before returning.
    """

    def __init__(
        self,
        *,
        engine: "AlignmentEngine | str | None" = None,
        mapper: "ReadMapper | None" = None,
        batch_size: int = 64,
        flush_interval: float = 0.005,
        max_pending: int = 1024,
        cache: "AlignmentCache | bool | None" = None,
        adaptive_flush: bool = False,
        min_flush_interval: float | None = None,
        max_flush_interval: float | None = None,
        gap_factor: float = 4.0,
        arrival_smoothing: float = 0.25,
        qos: "QosPolicy | bool | None" = None,
        alphabet: Alphabet = DNA,
        trace: bool = False,
        name: str = "server",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if flush_interval < 0:
            raise ValueError("flush_interval must be non-negative")
        if max_pending < batch_size:
            raise ValueError("max_pending must be at least batch_size")
        if not 0.0 < arrival_smoothing <= 1.0:
            raise ValueError("arrival_smoothing must be in (0, 1]")
        if gap_factor <= 0:
            raise ValueError("gap_factor must be positive")
        self.adaptive_flush = adaptive_flush
        self.min_flush_interval = (
            min_flush_interval
            if min_flush_interval is not None
            else flush_interval / 4.0
        )
        self.max_flush_interval = (
            max_flush_interval
            if max_flush_interval is not None
            else flush_interval * 4.0
        )
        if self.min_flush_interval < 0:
            raise ValueError("min_flush_interval must be non-negative")
        if self.max_flush_interval < self.min_flush_interval:
            raise ValueError(
                "max_flush_interval must be at least min_flush_interval"
            )
        self.gap_factor = gap_factor
        self.arrival_smoothing = arrival_smoothing
        self._last_arrival: float | None = None
        self._ewma_gap: float | None = None
        self._first_enqueued: float | None = None
        self.mapper = mapper
        if mapper is not None and engine is None:
            self.engine = get_engine(mapper.engine)
        else:
            self.engine = get_engine(engine)
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.max_pending = max_pending
        self.alphabet = alphabet
        self.trace = trace
        self.name = name
        self.cache = make_cache(cache)
        # Results depend on the request payload plus the serving config
        # that shapes them: the alphabet (symbol set + wildcard). Engine
        # identity is deliberately excluded — the conformance suite pins
        # every backend bit-identical, so results are engine-independent
        # and survive replica rebuilds onto different backends.
        self._cache_config = (alphabet.name, alphabet.symbols, alphabet.wildcard)
        self.stats = ServingStats()
        self._aligner = GenAsmAligner(engine=self.engine, alphabet=alphabet)
        self.qos = qos if isinstance(qos, QosPolicy) else None
        self.fair_queueing = bool(qos)
        if self.fair_queueing:
            self._queue: FairQueue | FifoQueue = FairQueue(
                weight_of=self.qos.weight_of if self.qos is not None else None
            )
        else:
            self._queue = FifoQueue()
        self._pending_total = 0
        # EWMA of wall seconds per engine call: the basis for the dynamic
        # Retry-After hint a saturated server hands shed clients.
        self._service_ewma: float | None = None
        self._slots = asyncio.Semaphore(max_pending)
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False
        # One worker thread: flushes serialize behind each other while the
        # event loop keeps accepting and accumulating the next batch.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="alignment-server"
        )
        # Engines with startup cost (the sharded backend's process pool)
        # pay it here, before the first request is in flight.
        warm_up = getattr(self.engine, "warm_up", None)
        if warm_up is not None:
            warm_up()

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    async def scan(
        self,
        text: str,
        pattern: str,
        k: int,
        *,
        first_match_only: bool = False,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> list[BitapMatch]:
        """Bitap-scan one (text, pattern) pair within ``k`` edits."""
        return await self._submit(
            "scan",
            (k, first_match_only),
            (text, pattern),
            tenant=tenant,
            deadline=deadline,
        )

    async def edit_distance(
        self,
        text: str,
        pattern: str,
        k: int,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> int | None:
        """Minimum semi-global edit distance (None above ``k``)."""
        return await self._submit(
            "edit_distance",
            (k,),
            (text, pattern),
            tenant=tenant,
            deadline=deadline,
        )

    async def align(
        self,
        text: str,
        pattern: str,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> Alignment:
        """Full GenASM alignment of one pair (CIGAR + edit distance)."""
        return await self._submit(
            "align", (), (text, pattern), tenant=tenant, deadline=deadline
        )

    async def map_read(
        self,
        name: str,
        read: str,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> "MappingResult":
        """Map one read through the attached :class:`ReadMapper`."""
        if self.mapper is None:
            raise RuntimeError(
                "map_read requires a server constructed with mapper=..."
            )
        return await self._submit(
            "map", (), (name, read), tenant=tenant, deadline=deadline
        )

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet flushed)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests holding a pending slot (queued or being computed)."""
        return self._pending_total

    @property
    def saturated(self) -> bool:
        """True when every ``max_pending`` slot is taken.

        A new submission right now would have to wait for a slot; network
        fronts use this to shed load (HTTP 503) instead of queueing.
        """
        return self._pending_total >= self.max_pending

    @property
    def engine_name(self) -> str:
        """Name of the compute backend behind this server."""
        return self.engine.name

    def suggested_retry_after(self) -> float:
        """Seconds a shed client should wait before retrying, estimated
        from observed behavior rather than a constant.

        The backlog drains one flush at a time, so the wait is roughly
        the flushes ahead of a new arrival times the EWMA engine-call
        service time, plus the flush window still to elapse. Before any
        flush has completed the flush window itself is the only signal.
        Clamped to ``[0.05, 60]`` — a hint, not a lease.
        """
        service = self._service_ewma
        if service is None:
            service = max(self.current_flush_interval, 0.01)
        flushes_ahead = -(-self._pending_total // self.batch_size)  # ceil
        estimate = self.current_flush_interval + max(1, flushes_ahead) * service
        return min(60.0, max(0.05, estimate))

    @property
    def current_flush_interval(self) -> float:
        """The deadline the next flush timer will be armed with.

        Equals ``flush_interval`` for fixed-deadline servers; with
        ``adaptive_flush`` it is the EWMA-derived idle timeout
        (``gap_factor * EWMA gap``), clamped to the configured bounds.
        """
        if not self.adaptive_flush:
            return self.flush_interval
        target = (
            self.flush_interval
            if self._ewma_gap is None
            else self.gap_factor * self._ewma_gap
        )
        return min(
            self.max_flush_interval, max(self.min_flush_interval, target)
        )

    def _observe_arrival(self) -> None:
        """Fold one request arrival into the EWMA inter-arrival gap.

        Gaps are clamped to ``max_flush_interval`` before folding: an idle
        line says nothing about how fast the *next* burst will arrive, and
        an unclamped quiet period would stretch the idle timeout for the
        first requests of every burst that follows it.
        """
        now = time.monotonic()
        if self._last_arrival is not None:
            gap = min(now - self._last_arrival, self.max_flush_interval)
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                alpha = self.arrival_smoothing
                self._ewma_gap = alpha * gap + (1.0 - alpha) * self._ewma_gap
        self._last_arrival = now

    # ------------------------------------------------------------------
    # Queueing and flush policy
    # ------------------------------------------------------------------
    async def _submit(
        self,
        kind: str,
        key: tuple,
        payload: Any,
        *,
        tenant: str | None = None,
        deadline: float | None = None,
    ) -> Any:
        if self._closed:
            raise ServerClosedError("server is stopped")
        submitted = time.monotonic()
        if deadline is not None and submitted >= deadline:
            # Arrived already out of budget (a retry chain or hedge ate
            # it): refuse before taking a slot or touching the cache.
            self.stats.expired += 1
            raise DeadlineExceededError(
                f"deadline passed before the {kind} request was accepted"
            )
        # Tracing cost when disabled: this one attribute check.
        trace = current_trace() if self.trace else None
        digest: str | None = None
        if self.cache is not None:
            # Content-addressed fast path: a hit answers immediately —
            # no pending slot, no queue wait, no engine call.
            digest = request_digest(kind, key, payload, self._cache_config)
            lookup = (
                trace.begin("cache_lookup", replica=self.name)
                if trace is not None
                else None
            )
            hit = self.cache.get(digest)
            if lookup is not None:
                lookup.finish("hit" if hit is not MISS else "miss")
            if hit is not MISS:
                return hit
        queue_span = (
            trace.begin("queue_wait", replica=self.name, kind=kind)
            if trace is not None
            else None
        )
        try:
            await self._slots.acquire()
        except BaseException:
            if queue_span is not None:
                queue_span.finish("cancelled")
            raise
        self._pending_total += 1
        try:
            if self._closed:
                raise ServerClosedError("server is stopped")
            loop = asyncio.get_running_loop()
            if self.adaptive_flush:
                self._observe_arrival()
            request = _Request(
                kind=kind,
                key=key,
                payload=payload,
                digest=digest,
                tenant=tenant or DEFAULT_TENANT,
                deadline=deadline,
                trace=trace,
                queue_span=queue_span,
            )
            request.future = loop.create_future()
            if not len(self._queue):
                self._first_enqueued = time.monotonic()
            self._queue.push(
                request,
                tenant=request.tenant,
                interactive=kind in INTERACTIVE_KINDS,
            )
            self.stats.requests += 1
            if len(self._queue) >= self.batch_size:
                self._flush("size")
            elif self.adaptive_flush:
                # Idle-timeout policy: every arrival pushes the deadline
                # out by the adaptive window, but never past
                # max_flush_interval after the first queued request.
                idle = self.current_flush_interval
                cap = (
                    self._first_enqueued
                    + self.max_flush_interval
                    - time.monotonic()
                )
                if self._timer is not None:
                    self._timer.cancel()
                self._timer = loop.call_later(
                    max(0.0, min(idle, cap)), self._flush, "deadline"
                )
            elif self._timer is None:
                self._timer = loop.call_later(
                    self.current_flush_interval, self._flush, "deadline"
                )
            result = await request.future
            # Queue wait plus service time: the latency the caller saw.
            self.stats.latency.record(time.monotonic() - submitted)
            return result
        finally:
            self._pending_total -= 1
            self._slots.release()
            if queue_span is not None:
                # Already closed on every served path (finish is first-
                # close-wins); this closes the cancellation/shutdown
                # exits, where the request never reached a flush.
                queue_span.finish("cancelled")

    def _flush(self, reason: str) -> None:
        """Drain the queue into batches and dispatch them off-loop.

        Batches are taken ``batch_size`` at a time in the queue
        discipline's order (arrival order for FIFO, deficit-round-robin
        across tenant lanes with ``qos``), so even when a backlog spans
        several batches each one carries a fair cross-tenant mix.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._first_enqueued = None
        while len(self._queue):
            batch = self._queue.take(self.batch_size)
            self.stats.flushes += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            if reason == "size":
                self.stats.size_flushes += 1
            elif reason == "deadline":
                self.stats.deadline_flushes += 1
            else:
                self.stats.final_flushes += 1
            task = asyncio.get_running_loop().create_task(
                self._dispatch(batch)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, batch: list[_Request]) -> None:
        """Run one engine call per (kind, key) group; resolve futures."""
        # A request cancelled while queued (its hedge won on another
        # replica, its client went away) is dropped *before* the engine
        # call — the batch shrinks instead of computing a discarded
        # answer. One cancelled after the engine call starts still
        # computes, but its done future below ignores the late result.
        # A queued request whose deadline has passed takes the same
        # exit: answered with DeadlineExceededError here, never
        # burning an engine slot on a result nobody is waiting for.
        now = time.monotonic()
        live: list[_Request] = []
        for request in batch:
            if request.future.done():
                self.stats.cancelled += 1
                outcome = "cancelled"
            elif request.deadline is not None and now >= request.deadline:
                request.future.set_exception(
                    DeadlineExceededError(
                        f"deadline exceeded after queue wait "
                        f"({request.kind})"
                    )
                )
                self.stats.expired += 1
                outcome = "expired"
            else:
                live.append(request)
                outcome = "ok"
            if request.queue_span is not None:
                request.queue_span.finish(outcome, batch=len(batch))
        groups: dict[tuple, list[_Request]] = {}
        for request in live:
            groups.setdefault((request.kind, *request.key), []).append(request)
        loop = asyncio.get_running_loop()
        assembled = time.monotonic()
        for group in groups.values():
            payloads = [request.payload for request in group]
            kind = group[0].kind
            key = group[0].key
            engine_spans = []
            for request in group:
                if request.trace is not None:
                    # batch_assembly: batch taken -> this group's engine
                    # call submitted (grouping plus waiting out earlier
                    # groups of the same flush).
                    request.trace.spans.append(
                        Span("batch_assembly", start=assembled).finish()
                    )
                    engine_spans.append(
                        request.trace.begin(
                            "engine",
                            replica=self.name,
                            kind=kind,
                            batch=len(group),
                            engine=self.engine_name,
                        )
                    )
            started = time.monotonic()
            try:
                self.stats.engine_calls += 1
                results = await loop.run_in_executor(
                    self._executor, self._run_group, kind, key, payloads
                )
                self._observe_service(time.monotonic() - started)
            except Exception as exc:  # noqa: BLE001 - forwarded to callers
                for span in engine_spans:
                    span.finish("error")
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(exc)
                self.stats.failed += len(group)
                continue
            if engine_spans:
                shards = getattr(self.engine, "pop_shard_timings", None)
                timings = shards() if shards is not None else None
                for span in engine_spans:
                    if timings is not None:
                        span.finish(shards=timings)
                    else:
                        span.finish()
            for request, result in zip(group, results):
                if not request.future.done():
                    request.future.set_result(result)
                if self.cache is not None and request.digest is not None:
                    self.cache.put(request.digest, result)
            self.stats.served += len(group)

    def _observe_service(self, seconds: float) -> None:
        """Fold one engine call's wall time into the service-time EWMA."""
        if self._service_ewma is None:
            self._service_ewma = seconds
        else:
            alpha = self.arrival_smoothing
            self._service_ewma = alpha * seconds + (1.0 - alpha) * self._service_ewma

    # ------------------------------------------------------------------
    # Introspection payloads (shared surface with AlignmentCluster, so
    # the HTTP front mounts either without caring which it got)
    # ------------------------------------------------------------------
    def health_payload(self) -> dict[str, Any]:
        """Liveness/load fields for ``GET /healthz``."""
        return {
            "engine": self.engine_name,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "saturated": self.saturated,
        }

    def stats_payload(self) -> dict[str, Any]:
        """Serving counters and flush policy for ``GET /v1/stats``."""
        payload = {
            "engine": self.engine_name,
            "serving": self.stats.to_dict(),
            "flush": {
                "adaptive": self.adaptive_flush,
                "current_interval_ms": self.current_flush_interval * 1e3,
                "batch_size": self.batch_size,
            },
        }
        if self.fair_queueing:
            payload["qos"] = {
                "fair_queueing": True,
                "queued_by_tenant": self._queue.depths(),
            }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.to_dict()
        return payload

    def enable_tracing(self, enabled: bool = True) -> None:
        """Switch span recording on/off for subsequent submissions."""
        self.trace = enabled

    def collect_metrics(self) -> list[MetricFamily]:
        """Metric families for this server (registry collector surface).

        Counters/histogram come straight from the live :attr:`stats`;
        queue occupancy gauges are read at scrape time. Labeled with
        ``replica`` so cluster replicas land as distinct series in the
        same families.
        """
        families = self.stats.metric_families(replica=self.name)
        occupancy = MetricFamily(
            "genasm_serving_pending_requests",
            "gauge",
            "Requests queued or in flight against max_pending.",
        )
        occupancy.add(self.pending, state="queued", replica=self.name)
        occupancy.add(self.in_flight, state="in_flight", replica=self.name)
        families.append(occupancy)
        if self.cache is not None:
            families.extend(
                self.cache.stats.metric_families(replica=self.name)
            )
        return families

    def _run_group(
        self, kind: str, key: tuple, payloads: list[Any]
    ) -> list[Any]:
        """Synchronous engine call for one homogeneous group (worker thread)."""
        if kind == "scan":
            k, first_match_only = key
            return self.engine.scan_batch(
                payloads,
                k,
                alphabet=self.alphabet,
                first_match_only=first_match_only,
            )
        if kind == "edit_distance":
            (k,) = key
            return self.engine.edit_distance_batch(
                payloads, k, alphabet=self.alphabet
            )
        if kind == "align":
            return self._aligner.align_batch(payloads)
        if kind == "map":
            # map_reads_batch fans whole reads across the sharded engine's
            # process pool when the mapper supports it; otherwise it is
            # exactly map_reads.
            return self.mapper.map_reads_batch(payloads)
        raise ValueError(f"unknown request kind {kind!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Drain the queue, wait for in-flight batches, reject new work."""
        if self._closed:
            return
        self._closed = True
        self._flush("final")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AlignmentServer":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()


async def serve_requests(
    pairs: Sequence[tuple[str, str]],
    k: int,
    *,
    engine: "AlignmentEngine | str | None" = None,
    batch_size: int = 64,
    flush_interval: float = 0.005,
    max_pending: int = 1024,
) -> list[int | None]:
    """Convenience driver: serve ``pairs`` as concurrent edit-distance
    requests through a temporary :class:`AlignmentServer`.

    Mirrors what an RPC handler would do per connection — each pair becomes
    an independent client coroutine — and returns distances in input order.
    """
    async with AlignmentServer(
        engine=engine,
        batch_size=batch_size,
        flush_interval=flush_interval,
        max_pending=max_pending,
    ) as server:
        return list(
            await asyncio.gather(
                *(server.edit_distance(text, pattern, k) for text, pattern in pairs)
            )
        )
