"""Evaluation harness: datasets, metrics, per-figure experiment drivers."""

from repro.eval.datasets import (
    PairDataset,
    ReadDataset,
    edlib_pair_dataset,
    filter_pair_dataset,
    long_read_datasets,
    short_read_datasets,
)
from repro.eval.experiments import (
    experiment_ablation,
    experiment_accuracy,
    experiment_asap,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_gasal2,
    experiment_prefilter,
    experiment_sillax,
    experiment_table1,
)
from repro.eval.metrics import (
    FilterAccuracy,
    ScoreAccuracy,
    filter_accuracy,
    power_reduction,
    score_accuracy,
    speedup,
)
from repro.eval.reporting import format_table

__all__ = [
    "FilterAccuracy",
    "PairDataset",
    "ReadDataset",
    "ScoreAccuracy",
    "edlib_pair_dataset",
    "experiment_ablation",
    "experiment_accuracy",
    "experiment_asap",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "experiment_gasal2",
    "experiment_prefilter",
    "experiment_sillax",
    "experiment_table1",
    "filter_accuracy",
    "filter_pair_dataset",
    "format_table",
    "long_read_datasets",
    "power_reduction",
    "score_accuracy",
    "short_read_datasets",
    "speedup",
]
