"""Plain-text tables for experiment outputs.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; this module renders them readably and uniformly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
