"""Evaluation metrics: filter accuracy, score accuracy, speedups.

Definitions follow the paper:

* **false accept rate** — dissimilar pairs the filter wrongly accepts over
  all truly dissimilar pairs ("the ratio of the number of dissimilar
  sequences that are falsely accepted by the filter and the total number of
  dissimilar sequences that are rejected by the ground truth", Section 10.3);
* **false reject rate** — similar pairs the filter wrongly rejects over all
  truly similar pairs; must be 0% for a sound filter;
* **score accuracy** — the fraction of reads whose GenASM alignment score
  equals (or falls within a tolerance of) the optimal score (Section 10.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class FilterAccuracy:
    """Confusion summary of a pre-alignment filter against ground truth."""

    true_accepts: int
    false_accepts: int
    true_rejects: int
    false_rejects: int

    @property
    def total(self) -> int:
        return (
            self.true_accepts
            + self.false_accepts
            + self.true_rejects
            + self.false_rejects
        )

    @property
    def false_accept_rate(self) -> float:
        """Falsely accepted / truly dissimilar (lower is better)."""
        dissimilar = self.false_accepts + self.true_rejects
        if dissimilar == 0:
            return 0.0
        return self.false_accepts / dissimilar

    @property
    def false_reject_rate(self) -> float:
        """Falsely rejected / truly similar (must be 0)."""
        similar = self.true_accepts + self.false_rejects
        if similar == 0:
            return 0.0
        return self.false_rejects / similar


def filter_accuracy(
    decisions: Sequence[bool],
    true_distances: Sequence[int],
    threshold: int,
) -> FilterAccuracy:
    """Score filter decisions against exact ground-truth distances."""
    if len(decisions) != len(true_distances):
        raise ValueError("decisions and ground truth must align")
    ta = fa = tr = fr = 0
    for accepted, distance in zip(decisions, true_distances):
        similar = distance <= threshold
        if accepted and similar:
            ta += 1
        elif accepted and not similar:
            fa += 1
        elif not accepted and not similar:
            tr += 1
        else:
            fr += 1
    return FilterAccuracy(
        true_accepts=ta, false_accepts=fa, true_rejects=tr, false_rejects=fr
    )


@dataclass(frozen=True)
class ScoreAccuracy:
    """How often GenASM's alignment score matches the optimal score."""

    total: int
    exact: int
    within_tolerance: int
    tolerance: float

    @property
    def exact_fraction(self) -> float:
        return self.exact / self.total if self.total else 0.0

    @property
    def within_fraction(self) -> float:
        return self.within_tolerance / self.total if self.total else 0.0


def score_accuracy(
    candidate_scores: Sequence[int],
    optimal_scores: Sequence[int],
    *,
    tolerance: float = 0.045,
) -> ScoreAccuracy:
    """Compare per-read scores against the DP optimum.

    ``tolerance`` is relative (the paper reports 99.7% of short reads within
    +/-4.5% of BWA-MEM's scores).
    """
    if len(candidate_scores) != len(optimal_scores):
        raise ValueError("score lists must align")
    exact = 0
    within = 0
    for got, want in zip(candidate_scores, optimal_scores):
        if got == want:
            exact += 1
            within += 1
            continue
        scale = max(1.0, abs(want))
        if abs(got - want) / scale <= tolerance:
            within += 1
    return ScoreAccuracy(
        total=len(candidate_scores),
        exact=exact,
        within_tolerance=within,
        tolerance=tolerance,
    )


def speedup(baseline_time: float, accelerated_time: float) -> float:
    """How many times faster the accelerated system is."""
    if accelerated_time <= 0 or baseline_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / accelerated_time


def power_reduction(baseline_power_w: float, accelerated_power_w: float) -> float:
    """How many times less power the accelerated system draws."""
    if accelerated_power_w <= 0 or baseline_power_w <= 0:
        raise ValueError("powers must be positive")
    return baseline_power_w / accelerated_power_w
