"""Dataset builders matching the paper's evaluation inputs (Section 9).

The paper uses GRCh38 plus simulated reads (PBSIM/Mason), Shouji's two
pair sets, and Edlib's similarity-sweep set. Our builders generate the same
*configurations* — read lengths, error profiles, similarity sweeps — at
sizes a pure-Python reproduction can execute; every count is a parameter so
benches can scale up or down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sequences.genome import Genome, synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate
from repro.sequences.read_simulator import (
    SimulatedRead,
    illumina_profile,
    ont_r9_profile,
    pacbio_clr_profile,
    simulate_reads,
)


@dataclass(frozen=True)
class ReadDataset:
    """A named read set with its generating parameters and ground truth."""

    name: str
    technology: str
    read_length: int
    error_rate: float
    genome: Genome
    reads: list[SimulatedRead]


@dataclass(frozen=True)
class PairDataset:
    """Sequence pairs with ground-truth injected edit counts.

    Used for the filter experiments (Section 10.3) and the edit-distance
    experiments (Section 10.4).
    """

    name: str
    pairs: list[tuple[str, str]]
    injected_edits: list[int]


def _genome(length: int, seed: int) -> Genome:
    return synthesize_genome(length, seed=seed, name=f"ref{length}")


def long_read_datasets(
    *,
    read_length: int = 10_000,
    reads_per_set: int = 4,
    genome_length: int = 120_000,
    seed: int = 2020,
) -> list[ReadDataset]:
    """The paper's four long-read sets: PacBio/ONT x 10%/15% error.

    Defaults are scaled from the paper's 240,000 reads to a handful —
    enough to exercise every code path; benches pass larger counts.
    """
    genome = _genome(genome_length, seed)
    sets = []
    for technology, profile_fn in (("PacBio", pacbio_clr_profile), ("ONT", ont_r9_profile)):
        for rate in (0.10, 0.15):
            profile = profile_fn(rate)
            reads = simulate_reads(
                genome,
                count=reads_per_set,
                read_length=read_length,
                profile=profile,
                seed=seed + int(rate * 100),
                both_strands=False,
                name_prefix=f"{technology.lower()}_{int(rate * 100)}",
            )
            sets.append(
                ReadDataset(
                    name=f"{technology} - {int(rate * 100)}%",
                    technology=technology,
                    read_length=read_length,
                    error_rate=rate,
                    genome=genome,
                    reads=reads,
                )
            )
    return sets


def short_read_datasets(
    *,
    reads_per_set: int = 50,
    genome_length: int = 80_000,
    seed: int = 2021,
) -> list[ReadDataset]:
    """The paper's three Illumina sets: 100/150/250 bp at 5% error."""
    genome = _genome(genome_length, seed)
    sets = []
    for length in (100, 150, 250):
        profile = illumina_profile(0.05)
        reads = simulate_reads(
            genome,
            count=reads_per_set,
            read_length=length,
            profile=profile,
            seed=seed + length,
            both_strands=False,
            name_prefix=f"illumina_{length}",
        )
        sets.append(
            ReadDataset(
                name=f"Illumina-{length}bp",
                technology="Illumina",
                read_length=length,
                error_rate=0.05,
                genome=genome,
                reads=reads,
            )
        )
    return sets


def filter_pair_dataset(
    *,
    read_length: int,
    threshold: int,
    pairs: int = 200,
    seed: int = 7,
) -> PairDataset:
    """Shouji-style candidate pairs mimicking real seeding output.

    Candidate sets produced by seeding contain (a) true locations, whose
    edit count sits below the threshold, (b) near-boundary locations from
    repeats, and (c) spurious seed hits whose sequences are unrelated. The
    mix below (40% / 30% / 30%) represents all three, because a filter's
    false-accept rate is dominated by how it handles (b) and (c) — the
    cases Section 10.3 stresses. Shouji's own test sets were generated the
    same way (read mapper candidate pairs at E = 5 and 15).
    """
    rng = random.Random(seed)
    out_pairs: list[tuple[str, str]] = []
    injected: list[int] = []
    for i in range(pairs):
        reference = "".join(rng.choice("ACGT") for _ in range(read_length))
        bucket = i % 10
        if bucket < 4:  # true location: within threshold
            target_edits = rng.randint(0, threshold)
        elif bucket < 7:  # near-boundary repeat: just beyond threshold
            target_edits = rng.randint(threshold + 1, 4 * threshold)
        else:  # spurious seed hit: unrelated sequence
            target_edits = read_length  # sentinel: replace wholesale below
        if target_edits >= read_length:
            query = "".join(rng.choice("ACGT") for _ in range(read_length))
            out_pairs.append((reference, query))
            injected.append(read_length)  # upper bound; truth computed later
            continue
        profile = MutationProfile(error_rate=min(0.95, target_edits / read_length))
        result = mutate(reference, profile, rng=rng)
        out_pairs.append((reference, result.sequence))
        injected.append(result.edit_count)
    return PairDataset(
        name=f"{read_length}bp/t={threshold}",
        pairs=out_pairs,
        injected_edits=injected,
    )


def edlib_pair_dataset(
    *,
    length: int,
    similarities: tuple[float, ...] = (0.60, 0.70, 0.80, 0.90, 0.95, 0.99),
    seed: int = 11,
) -> PairDataset:
    """Edlib-style pairs: one sequence plus mutated copies at each similarity.

    The paper's set uses 100 Kbp and 1 Mbp sequences at 60-99% similarity;
    benches measure scaled lengths and model-project the full ones.
    """
    rng = random.Random(seed)
    original = "".join(rng.choice("ACGT") for _ in range(length))
    pairs: list[tuple[str, str]] = []
    injected: list[int] = []
    for similarity in similarities:
        profile = MutationProfile(error_rate=1.0 - similarity)
        result = mutate(original, profile, rng=rng)
        pairs.append((original, result.sequence))
        injected.append(result.edit_count)
    return PairDataset(
        name=f"edlib-{length}bp",
        pairs=pairs,
        injected_edits=injected,
    )
