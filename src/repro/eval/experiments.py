"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver returns ``(headers, rows)`` ready for
:func:`repro.eval.reporting.format_table`. A driver combines up to three
ingredients, always labelled in its output:

* **model** — the analytical performance model (the paper's own evaluation
  vehicle) plus the calibrated baseline device models;
* **measured** — functional runs of our Python implementations (algorithmic
  shape: accuracy, filter rates, scaling exponents);
* **paper** — the number the paper reports, for side-by-side comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.baselines.gotoh import gotoh_score
from repro.baselines.myers import myers_global
from repro.baselines.shouji import ShoujiFilter
from repro.core.aligner import GenAsmAligner
from repro.core.edit_distance import genasm_edit_distance
from repro.core.prefilter import GenAsmFilter
from repro.core.scoring import ScoringScheme, TracebackConfig
from repro.eval.datasets import (
    PairDataset,
    ReadDataset,
    edlib_pair_dataset,
    filter_pair_dataset,
    long_read_datasets,
    short_read_datasets,
)
from repro.eval.metrics import filter_accuracy, score_accuracy
from repro.hardware.area_power import genasm_area_power, xeon_core_comparison
from repro.hardware.baseline_devices import (
    GENASM_SYSTEM_POWER_W,
    GACT_POWER_W,
    SILLAX_THROUGHPUT,
    asap_time_s,
    bwa_mem_model,
    edlib_time_s,
    gact_throughput,
    gasal2_throughput,
    genasm_edit_distance_time_s,
    genasm_filter_time_s,
    minimap2_model,
    shouji_time_s,
)
from repro.hardware.performance_model import (
    DEFAULT_CONFIG,
    GenAsmConfig,
    dc_cycles_with_windowing,
    dc_cycles_without_windowing,
    memory_footprint_bits_with_windowing,
    memory_footprint_bits_without_windowing,
    system_throughput,
    throughput_per_accelerator,
)

Rows = tuple[Sequence[str], list[list[object]]]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def experiment_table1(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """Area and power breakdown of GenASM."""
    breakdown = genasm_area_power(config)
    rows: list[list[object]] = [
        [component.name, round(component.area_mm2, 3), round(component.power_w, 3)]
        for component in breakdown.components
    ]
    rows.append(
        [
            "Total - 1 vault",
            round(breakdown.accelerator_area_mm2, 3),
            round(breakdown.accelerator_power_w, 3),
        ]
    )
    rows.append(
        [
            f"Total - {config.vaults} vaults",
            round(breakdown.total_area_mm2, 2),
            round(breakdown.total_power_w, 2),
        ]
    )
    area_ratio, power_ratio = xeon_core_comparison(breakdown)
    rows.append(
        ["(one Xeon core / one accelerator)", round(area_ratio, 1), round(power_ratio, 1)]
    )
    return ("Component", "Area (mm^2)", "Power (W)"), rows


# ----------------------------------------------------------------------
# Figures 9 and 10: alignment throughput vs BWA-MEM / Minimap2
# ----------------------------------------------------------------------
def _throughput_rows(
    datasets: list[ReadDataset], config: GenAsmConfig
) -> list[list[object]]:
    bwa = bwa_mem_model(config)
    mm2 = minimap2_model(config)
    rows: list[list[object]] = []
    for dataset in datasets:
        m = dataset.read_length
        k = max(1, int(m * dataset.error_rate))
        genasm = system_throughput(m, k, config)
        rows.append(
            [
                dataset.name,
                round(bwa.throughput(m, dataset.error_rate, threads=1), 1),
                round(bwa.throughput(m, dataset.error_rate, threads=12), 1),
                round(mm2.throughput(m, dataset.error_rate, threads=1), 1),
                round(mm2.throughput(m, dataset.error_rate, threads=12), 1),
                round(genasm, 1),
                round(genasm / bwa.throughput(m, dataset.error_rate, threads=12), 1),
                round(genasm / mm2.throughput(m, dataset.error_rate, threads=12), 1),
            ]
        )
    return rows


_THROUGHPUT_HEADERS = (
    "Dataset",
    "BWA-MEM t=1 (reads/s)",
    "BWA-MEM t=12",
    "Minimap2 t=1",
    "Minimap2 t=12",
    "GenASM",
    "Speedup vs BWA-MEM(12)",
    "Speedup vs Minimap2(12)",
)


def experiment_fig9(
    config: GenAsmConfig = DEFAULT_CONFIG, *, reads_per_set: int = 2
) -> Rows:
    """Long-read alignment throughput (model) — Figure 9."""
    datasets = long_read_datasets(reads_per_set=reads_per_set)
    return _THROUGHPUT_HEADERS, _throughput_rows(datasets, config)


def experiment_fig10(
    config: GenAsmConfig = DEFAULT_CONFIG, *, reads_per_set: int = 10
) -> Rows:
    """Short-read alignment throughput (model) — Figure 10."""
    datasets = short_read_datasets(reads_per_set=reads_per_set)
    return _THROUGHPUT_HEADERS, _throughput_rows(datasets, config)


# ----------------------------------------------------------------------
# Figure 11: end-to-end pipeline time with and without GenASM
# ----------------------------------------------------------------------
def experiment_fig11(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """Whole-pipeline speedup when GenASM replaces the alignment step.

    Uses Amdahl's law with the alignment-step fraction implied by the
    paper's tool runtimes: replacing a step that is fraction ``f`` of the
    pipeline with a (much faster) accelerator bounds the speedup at
    ``1 / (1 - f)``. The fractions below are derived from the paper's
    reported whole-pipeline speedups, then re-applied through our model's
    (finite) alignment speedups — so the reproduced number is a genuine
    model output, not an echo.
    """
    # (dataset, read len, error, BWA-MEM alignment fraction, Minimap2 fraction)
    cases = [
        ("Illumina-250bp", 250, 0.05, 1 - 1 / 2.4, 1 - 1 / 1.9),
        ("PacBio - 15%", 10_000, 0.15, 1 - 1 / 6.5, 1 - 1 / 3.4),
        ("ONT - 15%", 10_000, 0.15, 1 - 1 / 4.9, 1 - 1 / 2.1),
    ]
    bwa = bwa_mem_model(config)
    mm2 = minimap2_model(config)
    rows: list[list[object]] = []
    for name, m, rate, f_bwa, f_mm2 in cases:
        k = max(1, int(m * rate))
        genasm = system_throughput(m, k, config)
        s_align_bwa = genasm / bwa.throughput(m, rate, threads=12)
        s_align_mm2 = genasm / mm2.throughput(m, rate, threads=12)
        total_bwa = 1.0 / ((1 - f_bwa) + f_bwa / s_align_bwa)
        total_mm2 = 1.0 / ((1 - f_mm2) + f_mm2 / s_align_mm2)
        rows.append(
            [
                name,
                f"{f_bwa:.1%}",
                round(total_bwa, 2),
                f"{f_mm2:.1%}",
                round(total_mm2, 2),
            ]
        )
    return (
        "Dataset",
        "BWA-MEM align fraction",
        "Pipeline speedup (BWA-MEM)",
        "Minimap2 align fraction",
        "Pipeline speedup (Minimap2)",
    ), rows


# ----------------------------------------------------------------------
# Figures 12 and 13: GenASM vs GACT (Darwin)
# ----------------------------------------------------------------------
def experiment_fig12(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """Single-accelerator throughput vs a single GACT array, long reads."""
    rows: list[list[object]] = []
    for kbp in range(1, 11):
        length = kbp * 1000
        k = max(1, int(length * 0.15))
        genasm = throughput_per_accelerator(length, k, config)
        gact = gact_throughput(length, 0.15)
        rows.append([f"{kbp}Kbp", round(gact), round(genasm), round(genasm / gact, 2)])
    mean = sum(row[3] for row in rows) / len(rows)
    rows.append(["Average", "", "", round(mean, 2)])
    rows.append(
        [
            "Power (W)",
            GACT_POWER_W,
            0.101,
            round(GACT_POWER_W / 0.101, 1),
        ]
    )
    return ("Length", "GACT (aln/s)", "GenASM (aln/s)", "GenASM/GACT"), rows


def experiment_fig13(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """Single-accelerator throughput vs a single GACT array, short reads."""
    rows: list[list[object]] = []
    for length in (100, 150, 200, 250, 300):
        k = max(1, int(length * 0.05))
        genasm = throughput_per_accelerator(length, k, config)
        gact = gact_throughput(length, 0.05)
        rows.append([f"{length}bp", round(gact), round(genasm), round(genasm / gact, 2)])
    mean = sum(row[3] for row in rows) / len(rows)
    rows.append(["Average", "", "", round(mean, 2)])
    return ("Length", "GACT (aln/s)", "GenASM (aln/s)", "GenASM/GACT"), rows


# ----------------------------------------------------------------------
# GPU (GASAL2) and SillaX comparisons (Section 10.2)
# ----------------------------------------------------------------------
def experiment_gasal2(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """GenASM vs the GASAL2 GPU aligner for short reads."""
    rows: list[list[object]] = []
    for length in (100, 150, 250):
        k = max(1, int(length * 0.05))
        genasm = system_throughput(length, k, config)
        for pairs in (100_000, 1_000_000, 10_000_000):
            gasal = gasal2_throughput(length, pairs, config)
            rows.append(
                [
                    f"{length}bp / {pairs:,} pairs",
                    round(gasal),
                    round(genasm),
                    round(genasm / gasal, 1),
                ]
            )
    return ("Workload", "GASAL2 (aln/s)", "GenASM (aln/s)", "Speedup"), rows


def experiment_sillax(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """GenASM vs SillaX (GenAx) for 101 bp short reads."""
    genasm = system_throughput(101, 5, config)
    rows = [
        ["SillaX @ 2GHz", round(SILLAX_THROUGHPUT), "", ""],
        ["GenASM @ 1GHz", round(genasm), round(genasm / SILLAX_THROUGHPUT, 2), "1.9x (paper)"],
    ]
    return ("System", "Throughput (aln/s)", "GenASM/SillaX", "Paper"), rows


# ----------------------------------------------------------------------
# Accuracy analysis (Section 10.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccuracyCase:
    """One accuracy-analysis configuration."""

    name: str
    datasets: list[ReadDataset]
    scheme: ScoringScheme
    tolerance: float


def experiment_accuracy(
    *,
    short_reads: int = 30,
    long_reads: int = 2,
    long_read_length: int = 2_000,
) -> Rows:
    """GenASM traceback score vs the optimal affine-gap (Gotoh) score.

    Short reads use BWA-MEM's scoring, long reads Minimap2's, as in the
    paper. Long-read length is scaled (Gotoh is quadratic in Python); the
    comparison is per-base and unaffected by absolute length.
    """
    cases = [
        AccuracyCase(
            name="short (BWA-MEM scoring)",
            datasets=short_read_datasets(reads_per_set=short_reads // 3 + 1),
            scheme=ScoringScheme.bwa_mem(),
            tolerance=0.045,
        ),
        AccuracyCase(
            name="long (Minimap2 scoring)",
            datasets=long_read_datasets(
                reads_per_set=long_reads, read_length=long_read_length
            ),
            scheme=ScoringScheme.minimap2(),
            tolerance=0.05,
        ),
    ]
    rows: list[list[object]] = []
    for case in cases:
        genasm_scores: list[int] = []
        optimal_scores: list[int] = []
        aligner = GenAsmAligner(config=TracebackConfig.from_scoring(case.scheme))
        for dataset in case.datasets:
            for read in dataset.reads:
                k = max(8, int(read.true_length * dataset.error_rate * 2))
                region = dataset.genome.region(read.true_start, read.true_length + k)
                alignment = aligner.align(region, read.sequence)
                region_used = region[: alignment.text_consumed]
                genasm_scores.append(alignment.score(case.scheme))
                optimal_scores.append(
                    gotoh_score(region_used, read.sequence, case.scheme)
                )
        accuracy = score_accuracy(
            genasm_scores, optimal_scores, tolerance=case.tolerance
        )
        rows.append(
            [
                case.name,
                accuracy.total,
                f"{accuracy.exact_fraction:.1%}",
                f"{accuracy.within_fraction:.1%}",
                f"+/-{case.tolerance:.1%}",
            ]
        )
    return ("Case", "Reads", "Exact score", "Within tolerance", "Tolerance"), rows


# ----------------------------------------------------------------------
# Pre-alignment filtering (Section 10.3)
# ----------------------------------------------------------------------
def experiment_prefilter(
    *, pairs: int = 150, seed: int = 3
) -> Rows:
    """GenASM filter vs Shouji: accuracy (measured) and time (model)."""
    rows: list[list[object]] = []
    for read_length, threshold in ((100, 5), (250, 15)):
        dataset = filter_pair_dataset(
            read_length=read_length, threshold=threshold, pairs=pairs, seed=seed
        )
        truth = [myers_global(ref, qry) for ref, qry in dataset.pairs]

        genasm = GenAsmFilter(threshold)
        genasm_decisions = [genasm.accepts(ref, qry) for ref, qry in dataset.pairs]
        genasm_acc = filter_accuracy(genasm_decisions, truth, threshold)

        shouji = ShoujiFilter(threshold)
        shouji_decisions = [shouji.accepts(ref, qry) for ref, qry in dataset.pairs]
        shouji_acc = filter_accuracy(shouji_decisions, truth, threshold)

        model_speedup = shouji_time_s(read_length, threshold) / genasm_filter_time_s(
            read_length, threshold
        )
        rows.append(
            [
                dataset.name,
                f"{genasm_acc.false_accept_rate:.2%}",
                f"{genasm_acc.false_reject_rate:.2%}",
                f"{shouji_acc.false_accept_rate:.2%}",
                f"{shouji_acc.false_reject_rate:.2%}",
                round(model_speedup, 2),
            ]
        )
    return (
        "Dataset",
        "GenASM false accept",
        "GenASM false reject",
        "Shouji false accept",
        "Shouji false reject",
        "Model speedup vs Shouji",
    ), rows


# ----------------------------------------------------------------------
# Figure 14 + ASAP: edit distance calculation (Section 10.4)
# ----------------------------------------------------------------------
def experiment_fig14(
    config: GenAsmConfig = DEFAULT_CONFIG,
    *,
    measured_length: int = 2_000,
    similarities: tuple[float, ...] = (0.60, 0.80, 0.90, 0.99),
) -> Rows:
    """Edit distance: GenASM vs Edlib, model at paper scale + measured shape.

    The model rows reproduce the paper's 100 Kbp and 1 Mbp speedup ranges;
    the measured rows run our Python GenASM and Myers implementations on
    ``measured_length`` sequences to confirm the crossover is algorithmic
    (linear windowed scan vs quadratic band) rather than a modelling artifact.
    """
    rows: list[list[object]] = []
    for length in (100_000, 1_000_000):
        for similarity in similarities:
            edlib = edlib_time_s(length, similarity)
            edlib_tb = edlib_time_s(length, similarity, traceback=True)
            genasm = genasm_edit_distance_time_s(length, similarity, config)
            rows.append(
                [
                    f"model {length // 1000}Kbp",
                    f"{similarity:.0%}",
                    f"{edlib * 1e3:.2f} ms",
                    f"{genasm * 1e3:.3f} ms",
                    round(edlib / genasm),
                    round(edlib_tb / genasm),
                ]
            )

    # Measured scaling check: the crossover in Figure 14 exists because
    # Edlib/Myers grows quadratically with length while windowed GenASM
    # grows linearly. Measure both at L and 2L and report growth factors
    # (expected ~4x for Myers, ~2x for GenASM).
    def _measure(length: int, similarity: float) -> tuple[float, float]:
        dataset = edlib_pair_dataset(length=length, similarities=(similarity,))
        original, mutated = dataset.pairs[0]
        start = time.perf_counter()
        myers_global(original, mutated)
        myers_time = time.perf_counter() - start
        start = time.perf_counter()
        genasm_edit_distance(original, mutated)
        genasm_time = time.perf_counter() - start
        return myers_time, genasm_time

    similarity = 0.90
    myers_short, genasm_short = _measure(measured_length, similarity)
    myers_long, genasm_long = _measure(2 * measured_length, similarity)
    rows.append(
        [
            f"measured growth {measured_length}->{2 * measured_length}bp",
            f"{similarity:.0%}",
            f"Myers x{myers_long / myers_short:.1f} (quadratic ~x4)",
            f"GenASM x{genasm_long / genasm_short:.1f} (linear ~x2)",
            "-",
            "-",
        ]
    )
    return (
        "Scale",
        "Similarity",
        "Edlib time",
        "GenASM time",
        "Speedup",
        "Speedup (w/ TB)",
    ), rows


def experiment_asap(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """GenASM vs the ASAP FPGA edit-distance accelerator (64-320 bp)."""
    rows: list[list[object]] = []
    for length in (64, 128, 192, 256, 320):
        asap = asap_time_s(length)
        genasm = genasm_edit_distance_time_s(length, 0.95, config)
        rows.append(
            [
                f"{length}bp",
                f"{asap * 1e6:.1f} us",
                f"{genasm * 1e6:.3f} us",
                round(asap / genasm, 1),
            ]
        )
    return ("Length", "ASAP time", "GenASM time", "Speedup"), rows


# ----------------------------------------------------------------------
# Section 10.5: sources of improvement (ablation)
# ----------------------------------------------------------------------
def experiment_ablation(config: GenAsmConfig = DEFAULT_CONFIG) -> Rows:
    """Divide-and-conquer, PE parallelism, and vault parallelism ablations."""
    rows: list[list[object]] = []

    # Divide and conquer: DC cycles and memory footprint with/without.
    for name, m, rate in (
        ("long 10Kbp @15%", 10_000, 0.15),
        ("short 100bp @5%", 100, 0.05),
        ("short 250bp @5%", 250, 0.05),
    ):
        k = max(1, int(m * rate))
        without = dc_cycles_without_windowing(m, k, config)
        with_dc = dc_cycles_with_windowing(m, k, config)
        rows.append(
            [
                f"D&C: {name}",
                f"{without:,.0f} cyc",
                f"{with_dc:,.0f} cyc",
                round(without / with_dc, 2),
            ]
        )
    footprint_without = memory_footprint_bits_without_windowing(10_000, 1_500)
    footprint_with = memory_footprint_bits_with_windowing(config)
    rows.append(
        [
            "D&C: bitvector storage (10Kbp @15%)",
            f"{footprint_without / 8 / 2**30:,.1f} GB",
            f"{footprint_with / 8 / 1024:,.0f} KB",
            round(footprint_without / footprint_with),
        ]
    )

    # PE parallelism: 1 PE vs 64 PEs at the window level.
    base = throughput_per_accelerator(10_000, 1_500, config)
    one_pe = throughput_per_accelerator(
        10_000,
        1_500,
        GenAsmConfig(
            processing_elements=1,
            pe_width_bits=config.pe_width_bits,
            window_size=config.window_size,
            overlap=config.overlap,
            frequency_hz=config.frequency_hz,
            vaults=config.vaults,
        ),
    )
    rows.append(["PEs: 1 -> 64 (per-accelerator)", f"{one_pe:,.0f}/s", f"{base:,.0f}/s", round(base / one_pe, 1)])

    # Vault parallelism: 1 vault vs 32 vaults.
    rows.append(
        [
            "Vaults: 1 -> 32 (system)",
            f"{base:,.0f}/s",
            f"{base * config.vaults:,.0f}/s",
            config.vaults,
        ]
    )
    return ("Ablation", "Baseline", "GenASM", "Factor"), rows
