"""uint64 packing for the NumPy-batched backend.

The batched engine represents every per-pair bitvector as a row of ``W``
64-bit words (word 0 = least significant), so a batch of ``B`` pairs is a
``(B, W)`` ``uint64`` array and one Bitap recurrence step is a handful of
array-wide shifts/ORs/ANDs. This module holds the conversions between that
layout and the arbitrary-precision Python integers the scalar kernels use:

* :func:`pack_patterns` — per-symbol pattern bitmasks, the per-pair
  ``all_ones`` masks, and the per-pair MSB probes, all as word arrays;
* :func:`encode_texts` — text characters as small integer codes indexing the
  bitmask table (one shared out-of-alphabet/wildcard fallback row);
* :func:`shift_left_words` — the multi-word left shift with carry chaining
  across word boundaries (Section 5's long-read modification);
* :class:`PackedWindowBitvectors` — a SENE window whose ``R`` history *is*
  the ``(n + 1, k + 1, W)`` uint64 slice the DC loop produced (zero-copy:
  no word-by-word conversion to Python big-ints on the hot path; GenASM-TB
  combines only the handful of cells it actually visits, lazily);
* :func:`words_to_int_matrix` — eager conversion back to Python ints, kept
  for parity checks and cold paths.

NumPy is optional at import time; :func:`numpy_available` gates the backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # pragma: no cover - exercised implicitly by backend availability
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.bitap import pattern_bitmasks
from repro.core.genasm_dc import SeneEdgeDerivation
from repro.sequences.alphabet import DNA, Alphabet

#: Word width of the packed layout (matches the hardware model's SRAM rows).
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def numpy_available() -> bool:
    """True when NumPy imported successfully."""
    return np is not None


def words_for(bits: int) -> int:
    """Words needed to hold ``bits`` bits (at least one)."""
    return max(1, (bits + WORD_BITS - 1) // WORD_BITS)


def int_to_words(value: int, word_count: int) -> list[int]:
    """Split a non-negative int into ``word_count`` LSW-first words."""
    return [(value >> (WORD_BITS * w)) & _WORD_MASK for w in range(word_count)]


@dataclass(frozen=True)
class PackedPatterns:
    """Batch-packed pattern state shared by every scan over the batch.

    Attributes
    ----------
    bitmasks:
        ``(B, S + 1, W)`` uint64 — row ``s < S`` is symbol ``s``'s pattern
        bitmask; row ``S`` is the pair's all-ones fallback used for wildcard
        and out-of-alphabet text characters.
    all_ones:
        ``(B, W)`` uint64 — ``(1 << m_b) - 1`` per pair, applied after every
        shift so state never leaks past each pattern's top bit.
    msb:
        ``(B, W)`` uint64 — the single bit ``1 << (m_b - 1)`` per pair, the
        match probe at each text iteration.
    lengths:
        ``(B,)`` int64 pattern lengths.
    word_count:
        ``W``, sized for the longest pattern in the batch.
    """

    bitmasks: "np.ndarray"
    all_ones: "np.ndarray"
    msb: "np.ndarray"
    lengths: "np.ndarray"
    word_count: int


def pack_patterns(
    patterns: Sequence[str], alphabet: Alphabet
) -> PackedPatterns:
    """Build the packed bitmask tables for a batch of patterns.

    Single-word batches (every pattern at most 64 symbols — in particular
    every DC window batch at the paper's ``W = 64``) take a fully
    vectorized path that builds all per-symbol masks with a handful of
    array-wide operations; it reproduces :func:`pattern_bitmasks` bit for
    bit, including empty-pattern/foreign-symbol validation and wildcard
    semantics (a wildcard in the pattern matches nothing). Longer patterns
    delegate mask construction to :func:`pattern_bitmasks` per pattern.
    """
    symbols = alphabet.symbols
    word_count = words_for(max(len(pattern) for pattern in patterns))
    if word_count == 1:
        packed = _pack_patterns_single_word(patterns, alphabet)
        if packed is not None:
            return packed
    batch = len(patterns)
    bitmasks = np.empty((batch, len(symbols) + 1, word_count), dtype=np.uint64)
    all_ones = np.empty((batch, word_count), dtype=np.uint64)
    msb = np.empty((batch, word_count), dtype=np.uint64)
    lengths = np.empty(batch, dtype=np.int64)
    for b, pattern in enumerate(patterns):
        masks = pattern_bitmasks(pattern, alphabet)
        m = len(pattern)
        lengths[b] = m
        all_ones[b] = int_to_words((1 << m) - 1, word_count)
        msb[b] = int_to_words(1 << (m - 1), word_count)
        for s, symbol in enumerate(symbols):
            bitmasks[b, s] = int_to_words(masks[symbol], word_count)
        bitmasks[b, len(symbols)] = all_ones[b]
    return PackedPatterns(
        bitmasks=bitmasks,
        all_ones=all_ones,
        msb=msb,
        lengths=lengths,
        word_count=word_count,
    )


def _pack_patterns_single_word(
    patterns: Sequence[str], alphabet: Alphabet
) -> PackedPatterns | None:
    """Vectorized :func:`pack_patterns` for batches of <= 64-bit patterns.

    Returns None when a pattern contains non-latin-1 characters or the
    alphabet has symbols outside the byte range (the scalar path handles
    those); raises exactly like :func:`pattern_bitmasks` on empty patterns
    and symbols foreign to the alphabet.
    """
    symbols = alphabet.symbols
    fallback = len(symbols)
    lengths = np.array([len(pattern) for pattern in patterns], dtype=np.int64)
    if not lengths.all():
        raise ValueError("pattern must be non-empty")
    batch = len(patterns)
    m_max = int(lengths.max())
    joined = "".join(patterns)
    try:
        raw = np.frombuffer(joined.encode("latin-1"), dtype=np.uint8)
    except UnicodeEncodeError:
        return None
    lut = np.full(256, -1, dtype=np.int64)
    for s, symbol in enumerate(symbols):
        if ord(symbol) >= 256:
            return None
        lut[ord(symbol)] = s
    if alphabet.wildcard is not None and ord(alphabet.wildcard) < 256:
        lut[ord(alphabet.wildcard)] = fallback
    flat_codes = lut[raw]
    if flat_codes.min(initial=0) < 0:
        bad = joined[int(np.argmax(flat_codes < 0))]
        raise ValueError(f"pattern symbol {bad!r} not in alphabet")

    # Scatter the flat codes into a (B, m_max) grid; padding uses the
    # fallback code, which matches no symbol row and carries a zero bit
    # value, so it cannot perturb any mask.
    codes = np.full((batch, m_max), fallback, dtype=np.int64)
    rows = np.repeat(np.arange(batch), lengths)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    cols = np.arange(len(raw)) - np.repeat(offsets, lengths)
    codes[rows, cols] = flat_codes

    # Bit m - 1 - j for position j; `2 << (m - 1)` instead of `1 << m`
    # keeps the m = 64 all-ones value inside uint64 (wrapping subtraction).
    positions = np.arange(m_max, dtype=np.int64)[None, :]
    in_range = positions < lengths[:, None]
    bit_index = np.where(in_range, lengths[:, None] - 1 - positions, 0)
    bit_value = np.where(
        in_range, np.uint64(1) << bit_index.astype(np.uint64), np.uint64(0)
    )
    ones = (np.uint64(2) << (lengths - 1).astype(np.uint64)) - np.uint64(1)
    bitmasks = np.empty((batch, fallback + 1, 1), dtype=np.uint64)
    for s in range(fallback):
        hit = np.where(codes == s, bit_value, np.uint64(0))
        bitmasks[:, s, 0] = ones & ~np.bitwise_or.reduce(hit, axis=1)
    bitmasks[:, fallback, 0] = ones
    return PackedPatterns(
        bitmasks=bitmasks,
        all_ones=ones[:, None],
        msb=(np.uint64(1) << (lengths - 1).astype(np.uint64))[:, None],
        lengths=lengths,
        word_count=1,
    )


def encode_texts(
    texts: Sequence[str], alphabet: Alphabet
) -> tuple["np.ndarray", "np.ndarray"]:
    """Encode texts as ``(B, n_max)`` symbol codes plus per-text lengths.

    Characters outside the alphabet (including the wildcard) map to the
    fallback code ``len(alphabet.symbols)``, mirroring the scalar kernel's
    ``masks.get(ch, all_ones)``. Shorter texts are padded with the fallback
    code; padding never contributes because iterations beyond a text's
    length are masked out of the recurrence.
    """
    fallback = len(alphabet.symbols)
    lengths = np.array([len(text) for text in texts], dtype=np.int64)
    n_max = int(lengths.max()) if len(texts) else 0
    codes = np.full((len(texts), n_max), fallback, dtype=np.int64)
    char_lut = {symbol: s for s, symbol in enumerate(alphabet.symbols)}
    byte_lut = np.full(256, fallback, dtype=np.int64)
    for symbol, s in char_lut.items():
        if ord(symbol) < 256:
            byte_lut[ord(symbol)] = s
    for b, text in enumerate(texts):
        if not text:
            continue
        try:
            raw = np.frombuffer(text.encode("latin-1"), dtype=np.uint8)
        except UnicodeEncodeError:
            codes[b, : len(text)] = [char_lut.get(ch, fallback) for ch in text]
        else:
            codes[b, : len(text)] = byte_lut[raw]
    return codes, lengths


def shift_left_words(words: "np.ndarray") -> "np.ndarray":
    """Shift every packed bitvector left by one, carrying across words."""
    out = words << np.uint64(1)
    if words.shape[-1] > 1:
        out[..., 1:] |= words[..., :-1] >> np.uint64(WORD_BITS - 1)
    return out


def shift_left_words_by(words: "np.ndarray", shift: int) -> "np.ndarray":
    """Shift packed bitvectors left by ``shift`` bits, carrying across words.

    Bits pushed past the top word are dropped; callers re-apply their
    per-pair ``all_ones`` mask afterwards. Handles shifts of any size,
    including multiples of the word width and shifts past the whole vector.
    """
    word_count = words.shape[-1]
    word_shift, bit_shift = divmod(shift, WORD_BITS)
    if word_shift == 0 and bit_shift:
        out = words << np.uint64(bit_shift)
        if word_count > 1:
            out[..., 1:] |= words[..., :-1] >> np.uint64(WORD_BITS - bit_shift)
        return out
    out = np.zeros_like(words)
    if word_shift >= word_count:
        return out
    src = words[..., : word_count - word_shift]
    if bit_shift == 0:
        out[..., word_shift:] = src
    else:
        out[..., word_shift:] = src << np.uint64(bit_shift)
        if src.shape[-1] > 1:
            out[..., word_shift + 1 :] |= src[..., :-1] >> np.uint64(
                WORD_BITS - bit_shift
            )
    return out


class PackedWindowBitvectors(SeneEdgeDerivation):
    """SENE window backed directly by the batch's packed uint64 words.

    The batched DC loop already holds the whole ``R`` history as one
    ``(n_max + 1, k + 1, B, W)`` uint64 array; a window is the
    ``(n + 1, k + 1, W)`` slice for its pair — handed over as a NumPy view,
    so constructing the window copies nothing. Edge derivation is inherited
    from :class:`~repro.core.genasm_dc.SeneEdgeDerivation`; the only packed
    specifics are (a) combining a row's ``W`` words into Python ints the
    first time the traceback touches it (cached per row — a traceback
    visits ``O(W)`` of the ``(n + 1)(k + 1)`` cells, so eager conversion
    would be mostly wasted work) and (b) compact pickling for the sharded
    backend's IPC (the word array crosses the process boundary, not big-int
    lists; row caches and derived masks are dropped and rebuilt lazily on
    the receiving side).
    """

    __slots__ = (
        "text",
        "pattern",
        "k",
        "edit_distance",
        "alphabet",
        "r_words",
        "pm_table",
        "pm_codes",
        "_rows",
        "_masks",
    )

    def __init__(
        self,
        *,
        text: str,
        pattern: str,
        k: int,
        r_words: "np.ndarray",
        edit_distance: int,
        alphabet: Alphabet = DNA,
        pm_table: "np.ndarray | None" = None,
        pm_codes: "np.ndarray | None" = None,
    ) -> None:
        self.text = text
        self.pattern = pattern
        self.k = k
        self.edit_distance = edit_distance
        self.alphabet = alphabet
        self.r_words = r_words
        # Optional zero-copy handles into the batch's packed pattern-mask
        # table (pm_table: (S + 1, W) per-symbol masks, pm_codes: (n,)
        # text symbol codes) — lets text_masks skip rebuilding the scalar
        # bitmask dict entirely.
        self.pm_table = pm_table
        self.pm_codes = pm_codes
        self._rows: list | None = None
        self._masks: dict[str, int] | None = None

    def _r_row(self, text_index: int) -> list[int]:
        rows = self._rows
        if rows is not None and rows[text_index] is not None:
            return rows[text_index]
        words = self.r_words[text_index]
        if words.shape[-1] == 1:
            row = words[:, 0].tolist()
        else:
            row = words_to_int_matrix(words)
        if rows is None:
            self._rows = rows = [None] * (len(self.text) + 1)
        rows[text_index] = row
        return row

    def _ensure_masks(self) -> dict[str, int]:
        if self._masks is None:
            self._masks = pattern_bitmasks(self.pattern, self.alphabet)
        return self._masks

    def r_rows(self, limit: int | None = None) -> list[list[int]]:
        """The ``R`` history as Python ints (hot TB + parity hook).

        In the overwhelmingly common single-word case (windows of at most
        64 bp) the needed history prefix converts in one ``tolist`` call;
        multi-word windows combine row by row. ``limit`` bounds how many
        leading rows the caller needs (a consume-limited traceback never
        touches the rest); partial conversions are not cached.
        """
        total = len(self.text) + 1
        if limit is None or limit >= total:
            limit = total
            cache = True
        else:
            cache = False
        if self.r_words.shape[-1] == 1:
            rows = self.r_words[:limit, :, 0].tolist()
            if cache:
                self._rows = rows
            return rows
        return [self._r_row(i) for i in range(limit)]

    def text_masks(self, limit: int | None = None) -> list[int]:
        """Per-text-character pattern masks, straight from the packed table.

        When the window still carries its batch's mask-table views, this is
        one fancy-index plus one ``tolist`` — no scalar bitmask dict is
        ever rebuilt. Falls back to the mixin's dict path otherwise (e.g.
        after crossing a pickle boundary).
        """
        if self.pm_table is None or self.pm_codes is None:
            return super().text_masks(limit)
        codes = self.pm_codes if limit is None else self.pm_codes[:limit]
        words = self.pm_table[codes]
        if words.shape[-1] == 1:
            return words[:, 0].tolist()
        return words_to_int_matrix(words)

    def __getstate__(self) -> dict:
        # Ship only the compact arrays (made contiguous, so the pickle
        # holds exactly the window's own data even when they are views
        # into batch-wide stores); caches rebuild lazily after unpickling.
        state = {
            "text": self.text,
            "pattern": self.pattern,
            "k": self.k,
            "edit_distance": self.edit_distance,
            "alphabet": self.alphabet,
            "r_words": np.ascontiguousarray(self.r_words),
        }
        if self.pm_table is not None and self.pm_codes is not None:
            state["pm_table"] = np.ascontiguousarray(self.pm_table)
            state["pm_codes"] = np.ascontiguousarray(self.pm_codes)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


def words_to_int_matrix(arr: "np.ndarray") -> list:
    """Collapse the trailing word axis into Python ints; return nested lists.

    ``arr`` has shape ``(..., W)``; the result is ``arr.tolist()`` with each
    innermost word row combined into one arbitrary-precision integer.
    """
    acc = arr[..., -1].astype(object)
    for w in range(arr.shape[-1] - 2, -1, -1):
        acc = (acc << WORD_BITS) | arr[..., w].astype(object)
    return acc.tolist()
