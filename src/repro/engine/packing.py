"""uint64 packing for the NumPy-batched backend.

The batched engine represents every per-pair bitvector as a row of ``W``
64-bit words (word 0 = least significant), so a batch of ``B`` pairs is a
``(B, W)`` ``uint64`` array and one Bitap recurrence step is a handful of
array-wide shifts/ORs/ANDs. This module holds the conversions between that
layout and the arbitrary-precision Python integers the scalar kernels use:

* :func:`pack_patterns` — per-symbol pattern bitmasks, the per-pair
  ``all_ones`` masks, and the per-pair MSB probes, all as word arrays;
* :func:`encode_texts` — text characters as small integer codes indexing the
  bitmask table (one shared out-of-alphabet/wildcard fallback row);
* :func:`shift_left_words` — the multi-word left shift with carry chaining
  across word boundaries (Section 5's long-read modification);
* :func:`words_to_int_matrix` — back to Python ints for GenASM-TB.

NumPy is optional at import time; :func:`numpy_available` gates the backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # pragma: no cover - exercised implicitly by backend availability
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.bitap import pattern_bitmasks
from repro.sequences.alphabet import Alphabet

#: Word width of the packed layout (matches the hardware model's SRAM rows).
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def numpy_available() -> bool:
    """True when NumPy imported successfully."""
    return np is not None


def words_for(bits: int) -> int:
    """Words needed to hold ``bits`` bits (at least one)."""
    return max(1, (bits + WORD_BITS - 1) // WORD_BITS)


def int_to_words(value: int, word_count: int) -> list[int]:
    """Split a non-negative int into ``word_count`` LSW-first words."""
    return [(value >> (WORD_BITS * w)) & _WORD_MASK for w in range(word_count)]


@dataclass(frozen=True)
class PackedPatterns:
    """Batch-packed pattern state shared by every scan over the batch.

    Attributes
    ----------
    bitmasks:
        ``(B, S + 1, W)`` uint64 — row ``s < S`` is symbol ``s``'s pattern
        bitmask; row ``S`` is the pair's all-ones fallback used for wildcard
        and out-of-alphabet text characters.
    all_ones:
        ``(B, W)`` uint64 — ``(1 << m_b) - 1`` per pair, applied after every
        shift so state never leaks past each pattern's top bit.
    msb:
        ``(B, W)`` uint64 — the single bit ``1 << (m_b - 1)`` per pair, the
        match probe at each text iteration.
    lengths:
        ``(B,)`` int64 pattern lengths.
    word_count:
        ``W``, sized for the longest pattern in the batch.
    """

    bitmasks: "np.ndarray"
    all_ones: "np.ndarray"
    msb: "np.ndarray"
    lengths: "np.ndarray"
    word_count: int


def pack_patterns(
    patterns: Sequence[str], alphabet: Alphabet
) -> PackedPatterns:
    """Build the packed bitmask tables for a batch of patterns.

    Delegates mask construction to :func:`pattern_bitmasks` so validation
    (empty patterns, foreign symbols) and wildcard semantics are exactly the
    scalar kernel's.
    """
    symbols = alphabet.symbols
    word_count = words_for(max(len(pattern) for pattern in patterns))
    batch = len(patterns)
    bitmasks = np.empty((batch, len(symbols) + 1, word_count), dtype=np.uint64)
    all_ones = np.empty((batch, word_count), dtype=np.uint64)
    msb = np.empty((batch, word_count), dtype=np.uint64)
    lengths = np.empty(batch, dtype=np.int64)
    for b, pattern in enumerate(patterns):
        masks = pattern_bitmasks(pattern, alphabet)
        m = len(pattern)
        lengths[b] = m
        all_ones[b] = int_to_words((1 << m) - 1, word_count)
        msb[b] = int_to_words(1 << (m - 1), word_count)
        for s, symbol in enumerate(symbols):
            bitmasks[b, s] = int_to_words(masks[symbol], word_count)
        bitmasks[b, len(symbols)] = all_ones[b]
    return PackedPatterns(
        bitmasks=bitmasks,
        all_ones=all_ones,
        msb=msb,
        lengths=lengths,
        word_count=word_count,
    )


def encode_texts(
    texts: Sequence[str], alphabet: Alphabet
) -> tuple["np.ndarray", "np.ndarray"]:
    """Encode texts as ``(B, n_max)`` symbol codes plus per-text lengths.

    Characters outside the alphabet (including the wildcard) map to the
    fallback code ``len(alphabet.symbols)``, mirroring the scalar kernel's
    ``masks.get(ch, all_ones)``. Shorter texts are padded with the fallback
    code; padding never contributes because iterations beyond a text's
    length are masked out of the recurrence.
    """
    fallback = len(alphabet.symbols)
    lengths = np.array([len(text) for text in texts], dtype=np.int64)
    n_max = int(lengths.max()) if len(texts) else 0
    codes = np.full((len(texts), n_max), fallback, dtype=np.int64)
    char_lut = {symbol: s for s, symbol in enumerate(alphabet.symbols)}
    byte_lut = np.full(256, fallback, dtype=np.int64)
    for symbol, s in char_lut.items():
        if ord(symbol) < 256:
            byte_lut[ord(symbol)] = s
    for b, text in enumerate(texts):
        if not text:
            continue
        try:
            raw = np.frombuffer(text.encode("latin-1"), dtype=np.uint8)
        except UnicodeEncodeError:
            codes[b, : len(text)] = [char_lut.get(ch, fallback) for ch in text]
        else:
            codes[b, : len(text)] = byte_lut[raw]
    return codes, lengths


def shift_left_words(words: "np.ndarray") -> "np.ndarray":
    """Shift every packed bitvector left by one, carrying across words."""
    out = words << np.uint64(1)
    if words.shape[-1] > 1:
        out[..., 1:] |= words[..., :-1] >> np.uint64(WORD_BITS - 1)
    return out


def shift_left_words_by(words: "np.ndarray", shift: int) -> "np.ndarray":
    """Shift packed bitvectors left by ``shift`` bits, carrying across words.

    Bits pushed past the top word are dropped; callers re-apply their
    per-pair ``all_ones`` mask afterwards. Handles shifts of any size,
    including multiples of the word width and shifts past the whole vector.
    """
    word_count = words.shape[-1]
    word_shift, bit_shift = divmod(shift, WORD_BITS)
    if word_shift == 0 and bit_shift:
        out = words << np.uint64(bit_shift)
        if word_count > 1:
            out[..., 1:] |= words[..., :-1] >> np.uint64(WORD_BITS - bit_shift)
        return out
    out = np.zeros_like(words)
    if word_shift >= word_count:
        return out
    src = words[..., : word_count - word_shift]
    if bit_shift == 0:
        out[..., word_shift:] = src
    else:
        out[..., word_shift:] = src << np.uint64(bit_shift)
        if src.shape[-1] > 1:
            out[..., word_shift + 1 :] |= src[..., :-1] >> np.uint64(
                WORD_BITS - bit_shift
            )
    return out


def words_to_int_matrix(arr: "np.ndarray") -> list:
    """Collapse the trailing word axis into Python ints; return nested lists.

    ``arr`` has shape ``(..., W)``; the result is ``arr.tolist()`` with each
    innermost word row combined into one arbitrary-precision integer.
    """
    acc = arr[..., -1].astype(object)
    for w in range(arr.shape[-1] - 2, -1, -1):
        acc = (acc << WORD_BITS) | arr[..., w].astype(object)
    return acc.tolist()
