"""The ``"native"`` backend: compiled C kernels behind the engine surface.

This engine routes the three hot loops through the compiled extension
``repro.core._native`` via the plain-int ABI in :mod:`repro.core.kernels`:

* :meth:`scan_batch` — the multiword Bitap scan runs entirely in C;
* :meth:`run_dc_windows` — DC produces :class:`~repro.core.kernels.NativeWindow`
  objects whose packed ``R`` history stays in bytes; ``traceback_window``
  dispatches their walk to C through the ``native_traceback`` hook, so even
  the *generic* window loop gets a native traceback;
* :meth:`align_batch` — the whole windowed DC + TB loop for each pair runs
  as one C call (``align_pair``), which is what closes the gap to scan-only
  throughput: no per-window Python dispatch survives on the align path.

Every method falls back to the pure kernels per job when a call falls
outside what the C kernels handle (extension not built, window wider than
64 symbols, uncodable alphabets/sequences, the ``"edges"`` window
representation), so behavior never depends on the build. Availability is
gated on the extension import; when the build is missing the registry
reports a reason naming the build command and the default engine selection
is unaffected (``"native"`` is chosen explicitly, by name or via
``REPRO_ENGINE=native``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.core import kernels
from repro.core.bitap import BitapMatch, bitap_scan
from repro.core.genasm_dc import (
    WINDOW_REPRESENTATIONS,
    WindowData,
    run_dc_window,
)
from repro.engine.registry import AlignmentEngine, register_engine
from repro.sequences.alphabet import DNA, Alphabet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aligner import Alignment


class _WindowLoopView(AlignmentEngine):
    """Delegating view of a NativeEngine *without* ``align_batch``.

    ``GenAsmAligner`` runs its generic window loop whenever its engine has
    no ``align_batch``; this view exposes exactly that shape, so pairs the
    C align loop cannot take (wide windows, uncodable sequences) reuse the
    canonical loop — still with native DC and native per-window traceback
    where possible — instead of a duplicated Python reimplementation.
    """

    name = "native-window-view"

    def __init__(self, inner: "NativeEngine") -> None:
        self._inner = inner

    def scan_batch(self, *args: Any, **kwargs: Any) -> list[list[BitapMatch]]:
        return self._inner.scan_batch(*args, **kwargs)

    def run_dc_windows(self, *args: Any, **kwargs: Any) -> list[WindowData]:
        return self._inner.run_dc_windows(*args, **kwargs)


@register_engine
class NativeEngine(AlignmentEngine):
    """Compiled scan / DC / traceback kernels with per-job pure fallback."""

    name = "native"

    def __init__(self) -> None:
        self._window_view = _WindowLoopView(self)

    @classmethod
    def is_available(cls) -> bool:
        return kernels.native_available()

    @classmethod
    def unavailable_reason(cls) -> str | None:
        return kernels.native_unavailable_reason()

    # ------------------------------------------------------------------
    # Bitap scan
    # ------------------------------------------------------------------
    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        results: list[list[BitapMatch]] = []
        for text, pattern in pairs:
            matches = kernels.native_scan(
                text,
                pattern,
                k,
                alphabet=alphabet,
                first_match_only=first_match_only,
            )
            if matches is None:
                matches = bitap_scan(
                    text,
                    pattern,
                    k,
                    alphabet=alphabet,
                    first_match_only=first_match_only,
                )
            results.append(matches)
        return results

    # ------------------------------------------------------------------
    # GenASM-DC windows
    # ------------------------------------------------------------------
    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
        representation: str = "sene",
    ) -> list[WindowData]:
        windows: list[WindowData] = []
        for sub_text, sub_pattern in jobs:
            window: WindowData | None = None
            if representation == "sene":
                window = kernels.native_dc_window(
                    sub_text,
                    sub_pattern,
                    alphabet=alphabet,
                    initial_budget=initial_budget,
                )
            if window is None:
                # Pure kernel: the "edges" representation, oversize
                # patterns, uncodable jobs — and it owns validating an
                # unknown representation string.
                window = run_dc_window(
                    sub_text,
                    sub_pattern,
                    alphabet=alphabet,
                    initial_budget=initial_budget,
                    representation=representation,
                )
            windows.append(window)
        return windows

    # ------------------------------------------------------------------
    # Whole-pair windowed alignment
    # ------------------------------------------------------------------
    def align_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        window_size: int | None = None,
        overlap: int | None = None,
        config: Any = None,
        window_representation: str = "sene",
    ) -> list["Alignment"]:
        """Align each pair with one C call over the whole window loop.

        Output order and bits match :meth:`GenAsmAligner.align_batch` on
        the pure backend; the window representation changes storage only,
        never results, so both values take the same compiled path.
        """
        from repro.core.aligner import (
            DEFAULT_OVERLAP,
            DEFAULT_WINDOW_SIZE,
            Alignment,
            GenAsmAligner,
        )
        from repro.core.cigar import Cigar
        from repro.core.genasm_tb import _compile_order
        from repro.core.scoring import TracebackConfig

        window_size = (
            DEFAULT_WINDOW_SIZE if window_size is None else window_size
        )
        overlap = DEFAULT_OVERLAP if overlap is None else overlap
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0 <= overlap < window_size:
            raise ValueError("overlap must satisfy 0 <= O < W")
        if window_representation not in WINDOW_REPRESENTATIONS:
            raise ValueError(
                f"unknown window representation {window_representation!r}; "
                f"expected one of {WINDOW_REPRESENTATIONS}"
            )
        if config is None:
            config = TracebackConfig()
        program = _compile_order(config.order, config.affine)

        pairs = [(text, pattern) for text, pattern in pairs]
        results: list[Alignment | None] = [None] * len(pairs)
        fallback: list[int] = []
        for idx, (text, pattern) in enumerate(pairs):
            if not pattern:
                cigar = Cigar("")
                results[idx] = Alignment(
                    cigar=cigar,
                    edit_distance=cigar.edit_distance,
                    text_start=0,
                    text_consumed=0,
                )
                continue
            native = kernels.native_align_pair(
                text,
                pattern,
                alphabet=alphabet,
                window_size=window_size,
                overlap=overlap,
                program=program,
            )
            if native is None:
                fallback.append(idx)
                continue
            ops, text_consumed = native
            cigar = Cigar(ops)
            results[idx] = Alignment(
                cigar=cigar,
                edit_distance=cigar.edit_distance,
                text_start=0,
                text_consumed=text_consumed,
            )
        if fallback:
            aligner = GenAsmAligner(
                window_size=window_size,
                overlap=overlap,
                config=config,
                alphabet=alphabet,
                engine=self._window_view,
                window_representation=window_representation,
            )
            redone = aligner.align_batch([pairs[idx] for idx in fallback])
            for idx, alignment in zip(fallback, redone):
                results[idx] = alignment
        return results  # type: ignore[return-value]
