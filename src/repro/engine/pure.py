"""The reference backend: a thin batch adapter over the pure-Python kernels.

This engine defines correct behavior — every other backend is tested for
bit-identical output against it. It simply loops the existing scalar kernels
over the batch, so it works everywhere and costs nothing extra per pair.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bitap import BitapMatch, bitap_scan
from repro.core.genasm_dc import WindowData, run_dc_window
from repro.engine.registry import AlignmentEngine, register_engine
from repro.sequences.alphabet import DNA, Alphabet


@register_engine
class PurePythonEngine(AlignmentEngine):
    """Scalar loop over :func:`bitap_scan` / :func:`run_dc_window`."""

    name = "pure"

    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        return [
            bitap_scan(
                text,
                pattern,
                k,
                alphabet=alphabet,
                first_match_only=first_match_only,
            )
            for text, pattern in pairs
        ]

    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
        representation: str = "sene",
    ) -> list[WindowData]:
        return [
            run_dc_window(
                sub_text,
                sub_pattern,
                alphabet=alphabet,
                initial_budget=initial_budget,
                representation=representation,
            )
            for sub_text, sub_pattern in jobs
        ]
