"""NumPy-batched GenASM backend: one recurrence step for a whole batch.

The Bitap/GenASM-DC recurrence (Algorithm 1 / Section 5) is data-parallel
across (text, pattern) pairs: every pair at text iteration ``i`` performs the
same shift/OR/AND dance, just on different operands. This backend packs the
batch's status bitvectors into a ``(k + 1, B, W)`` ``uint64`` array (``W``
words per pattern, carry-chained across word boundaries exactly like the
hardware's multi-word mode) and executes each iteration as a handful of
array-wide NumPy operations, so the per-operation interpreter cost is paid
once per batch instead of once per pair.

Two details keep the output bit-identical to the scalar kernels:

* pairs whose text is shorter than the batch maximum stay *frozen* at the
  all-ones initial state until the scan reaches their own last character
  (``np.where`` on an active mask), so no padding scheme can perturb the
  recurrence;
* the per-window error budget schedule of :func:`run_dc_window` (start at
  ``min(8, m)``, double on miss) is replayed per pair by grouping pending
  windows by current budget, so even the recorded ``k`` matches the
  reference backend.

Small batches are delegated to :class:`PurePythonEngine` — below
``min_batch`` pairs the NumPy call overhead exceeds the win and the scalar
loop is strictly faster.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - gated by is_available()
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.bitap import BitapMatch
from repro.core.genasm_dc import WindowBitvectors, WindowUnalignableError
from repro.engine.packing import (
    PackedPatterns,
    encode_texts,
    numpy_available,
    pack_patterns,
    shift_left_words,
    shift_left_words_by,
    words_to_int_matrix,
)
from repro.engine.pure import PurePythonEngine
from repro.engine.registry import AlignmentEngine, register_engine
from repro.sequences.alphabet import DNA, Alphabet

#: State size (elements of the ``(k + 1, B, W)`` array) above which the
#: sequential insertion chain beats the log-depth prefix scan (measured
#: crossover on CPython 3.11 / NumPy 2.x: ~8k-10k elements).
_PREFIX_SCAN_CUTOFF = 8192


def _recurrence_step(
    old_r: "np.ndarray",
    cur_pm: "np.ndarray",
    all_ones: "np.ndarray",
    k: int,
) -> tuple["np.ndarray", "np.ndarray | None"]:
    """One text iteration of the batched recurrence for all ``k + 1`` rows.

    The scalar recurrence chains rows sequentially through the insertion
    term (``R[d]`` needs the *new* ``R[d - 1]``). Because a left shift
    distributes over AND, unrolling that chain gives

        ``R[d] = AND over t in 0..d of (A[t] << (d - t))``

    with ``A[0]`` the new ``R[0]`` and ``A[d] = deletion & substitution &
    match`` (the old-row terms). That form is a prefix scan under the
    shift-and-AND operator, computed in ``ceil(log2(k + 1))`` array-wide
    rounds instead of ``k`` dependent steps — but only while the state is
    small: the scan does ``O(k log k)`` element-work against the chain's
    ``O(k)``, so once per-call overhead is amortized (large ``k * B * W``)
    the plain chain is faster and is used instead. Both orders produce the
    same bits.

    Returns ``(new_r, match)`` — the match term for rows ``1..k`` is handed
    back because GenASM-DC stores it for the traceback (None when ``k`` is
    zero, where row 0's match *is* ``R[0]``).
    """
    new_r = np.empty_like(old_r)
    new_r[0] = (shift_left_words(old_r[0]) | cur_pm) & all_ones
    match = None
    if k:
        deletion = old_r[:-1]
        substitution = shift_left_words(deletion) & all_ones
        match = (shift_left_words(old_r[1:]) | cur_pm) & all_ones
        new_r[1:] = deletion & substitution & match
        if old_r.size <= _PREFIX_SCAN_CUTOFF:
            offset = 1
            while offset <= k:
                shifted = shift_left_words_by(new_r[:-offset], offset)
                shifted &= all_ones
                new_r[offset:] &= shifted
                offset *= 2
        else:
            for d in range(1, k + 1):
                new_r[d] &= shift_left_words(new_r[d - 1]) & all_ones
    return new_r, match


@register_engine
class BatchedEngine(AlignmentEngine):
    """Array-wide Bitap / GenASM-DC over packed uint64 bitvectors.

    Parameters
    ----------
    min_batch:
        Batches smaller than this fall through to the pure-Python backend
        (identical results, lower constant cost for tiny jobs). The default
        sits at the measured crossover where array-wide execution starts
        beating the scalar loop.
    """

    name = "batched"

    def __init__(self, *, min_batch: int = 8) -> None:
        if min_batch < 1:
            raise ValueError("min_batch must be at least 1")
        self.min_batch = min_batch
        self._pure = PurePythonEngine()

    @classmethod
    def is_available(cls) -> bool:
        return numpy_available()

    @classmethod
    def unavailable_reason(cls) -> str | None:
        return None if numpy_available() else "NumPy is not installed"

    # ------------------------------------------------------------------
    # Bitap scan
    # ------------------------------------------------------------------
    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        if k < 0:
            raise ValueError("edit distance threshold k must be non-negative")
        pairs = list(pairs)
        if not pairs:
            return []
        if len(pairs) < self.min_batch:
            return self._pure.scan_batch(
                pairs, k, alphabet=alphabet, first_match_only=first_match_only
            )
        packed = pack_patterns([pattern for _, pattern in pairs], alphabet)
        codes, lengths = encode_texts([text for text, _ in pairs], alphabet)
        return self._scan(codes, lengths, packed, k, first_match_only)

    def _scan(
        self,
        codes: "np.ndarray",
        lengths: "np.ndarray",
        packed: PackedPatterns,
        k: int,
        first_match_only: bool,
    ) -> list[list[BitapMatch]]:
        batch, n_max = codes.shape
        all_ones = packed.all_ones
        msb = packed.msb
        bitmasks = packed.bitmasks
        rows = np.arange(batch)
        r = np.broadcast_to(all_ones, (k + 1, batch, packed.word_count)).copy()
        matches: list[list[BitapMatch]] = [[] for _ in range(batch)]
        done = np.zeros(batch, dtype=bool)
        uniform = bool((lengths == n_max).all())
        for i in range(n_max - 1, -1, -1):
            if uniform and not first_match_only:
                active = None  # every pair live at every iteration
            else:
                active = lengths > i
                if first_match_only:
                    active &= ~done
                if not active.any():
                    if first_match_only and done.all():
                        break
                    continue
            cur_pm = bitmasks[rows, codes[:, i]]
            old_r = r
            r, _ = _recurrence_step(old_r, cur_pm, all_ones, k)
            if active is not None and not active.all():
                r = np.where(active[None, :, None], r, old_r)
            msb_clear = ~((r & msb) != 0).any(axis=2)
            found = msb_clear.any(axis=0)
            if active is not None:
                found &= active
            if found.any():
                best_d = msb_clear.argmax(axis=0)
                for b in np.nonzero(found)[0]:
                    matches[int(b)].append(
                        BitapMatch(start=i, distance=int(best_d[b]))
                    )
                if first_match_only:
                    done |= found
        return matches

    # ------------------------------------------------------------------
    # GenASM-DC windows
    # ------------------------------------------------------------------
    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
    ) -> list[WindowBitvectors]:
        jobs = list(jobs)
        if not jobs:
            return []
        if len(jobs) < self.min_batch:
            return self._pure.run_dc_windows(
                jobs, alphabet=alphabet, initial_budget=initial_budget
            )
        budgets: list[int] = []
        for sub_text, sub_pattern in jobs:
            if not sub_pattern:
                raise ValueError("window pattern must be non-empty")
            if not sub_text:
                raise WindowUnalignableError("window text is empty")
            budgets.append(min(max(1, initial_budget), len(sub_pattern)))

        results: list[WindowBitvectors | None] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        while pending:
            by_budget: dict[int, list[int]] = {}
            for idx in pending:
                by_budget.setdefault(budgets[idx], []).append(idx)
            still_pending: list[int] = []
            for budget, members in by_budget.items():
                self._dc_group(jobs, members, budget, alphabet, results)
                for idx in members:
                    if results[idx] is not None:
                        continue
                    m = len(jobs[idx][1])
                    if budgets[idx] >= m:
                        raise WindowUnalignableError(
                            f"window unalignable at k={budgets[idx]} "
                            f"(text {len(jobs[idx][0])} chars, "
                            f"pattern {m} chars)"
                        )
                    budgets[idx] = min(budgets[idx] * 2, m)
                    still_pending.append(idx)
            pending = still_pending
        return results  # type: ignore[return-value]

    def _dc_group(
        self,
        jobs: list[tuple[str, str]],
        members: list[int],
        k: int,
        alphabet: Alphabet,
        results: list,
    ) -> None:
        """One fixed-``k`` DC pass over ``members``; fills solved slots."""
        packed = pack_patterns([jobs[idx][1] for idx in members], alphabet)
        codes, lengths = encode_texts(
            [jobs[idx][0] for idx in members], alphabet
        )
        batch, n_max = codes.shape
        all_ones = packed.all_ones
        bitmasks = packed.bitmasks
        rows = np.arange(batch)
        shape = (k + 1, batch, packed.word_count)
        r = np.broadcast_to(all_ones, shape).copy()
        # Store layout mirrors run_dc_window: index 0 of the insertion and
        # deletion stores is all-ones padding, only ever read as "no".
        match_store = np.broadcast_to(all_ones, (n_max, *shape)).copy()
        insertion_store = match_store.copy()
        deletion_store = match_store.copy()
        uniform = bool((lengths == n_max).all())
        for i in range(n_max - 1, -1, -1):
            cur_pm = bitmasks[rows, codes[:, i]]
            old_r = r
            new_r, match = _recurrence_step(old_r, cur_pm, all_ones, k)
            match_store[i, 0] = new_r[0]
            if k:
                match_store[i, 1:] = match
                deletion_store[i, 1:] = old_r[:-1]
                insertion_store[i, 1:] = (
                    shift_left_words(new_r[:-1]) & all_ones
                )
            if uniform:
                r = new_r
            else:
                active = lengths > i
                r = np.where(active[None, :, None], new_r, old_r)
        msb_clear = ~((r & packed.msb) != 0).any(axis=2)
        for col, idx in enumerate(members):
            if not msb_clear[:, col].any():
                continue  # missed at this budget; caller doubles and retries
            n_b = int(lengths[col])
            results[idx] = WindowBitvectors(
                text=jobs[idx][0],
                pattern=jobs[idx][1],
                k=k,
                match=words_to_int_matrix(match_store[:n_b, :, col, :]),
                insertion=words_to_int_matrix(insertion_store[:n_b, :, col, :]),
                deletion=words_to_int_matrix(deletion_store[:n_b, :, col, :]),
                edit_distance=int(msb_clear[:, col].argmax()),
            )
