"""NumPy-batched GenASM backend: one recurrence step for a whole batch.

The Bitap/GenASM-DC recurrence (Algorithm 1 / Section 5) is data-parallel
across (text, pattern) pairs: every pair at text iteration ``i`` performs the
same shift/OR/AND dance, just on different operands. This backend packs the
batch's status bitvectors into a ``(k + 1, B, W)`` ``uint64`` array (``W``
words per pattern, carry-chained across word boundaries exactly like the
hardware's multi-word mode) and executes each iteration as a handful of
array-wide NumPy operations, so the per-operation interpreter cost is paid
once per batch instead of once per pair.

For the aligner's DC windows the backend is SENE-first (store entries, not
edges, after Scrooge): each iteration writes the new ``R`` rows straight
into one ``(n + 1, k + 1, B, W)`` history array — no separate match /
insertion / deletion stores, no extra shift to materialize the insertion
vector — and each solved window is returned as a
:class:`~repro.engine.packing.PackedWindowBitvectors` wrapping a zero-copy
slice of that history. The old word-by-word conversion to Python big-int
lists (``words_to_int_matrix`` over three dense stores) is gone from the
hot path; the traceback derives edges on the fly and combines only the
cells it visits.

Two details keep the output bit-identical to the scalar kernels:

* pairs whose text is shorter than the batch maximum stay *frozen* at the
  all-ones initial state until the scan reaches their own last character
  (``np.where`` on an active mask), so no padding scheme can perturb the
  recurrence;
* the per-window error budget schedule of :func:`run_dc_window` (start at
  ``min(8, m)``, double on miss) is replayed per pair by grouping pending
  windows by current budget, so even the recorded ``k`` matches the
  reference backend.

Small batches are delegated to :class:`PurePythonEngine` — below
``min_batch`` pairs the NumPy call overhead exceeds the win and the scalar
loop is strictly faster.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - gated by is_available()
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.bitap import BitapMatch
from repro.core.genasm_dc import WindowData, WindowUnalignableError
from repro.engine.packing import (
    PackedPatterns,
    PackedWindowBitvectors,
    encode_texts,
    numpy_available,
    pack_patterns,
    shift_left_words,
    shift_left_words_by,
)
from repro.engine.pure import PurePythonEngine
from repro.engine.registry import AlignmentEngine, register_engine
from repro.sequences.alphabet import DNA, Alphabet

#: State size (elements of the ``(k + 1, B, W)`` array) above which the
#: sequential insertion chain beats the log-depth prefix scan (measured
#: crossover on CPython 3.11 / NumPy 2.x: ~8k-10k elements).
_PREFIX_SCAN_CUTOFF = 8192


def _recurrence_step(
    old_r: "np.ndarray",
    cur_pm: "np.ndarray",
    all_ones: "np.ndarray",
    k: int,
    out: "np.ndarray | None" = None,
) -> "np.ndarray":
    """One text iteration of the batched recurrence for all ``k + 1`` rows.

    The scalar recurrence chains rows sequentially through the insertion
    term (``R[d]`` needs the *new* ``R[d - 1]``). Because a left shift
    distributes over AND, unrolling that chain gives

        ``R[d] = AND over t in 0..d of (A[t] << (d - t))``

    with ``A[0]`` the new ``R[0]`` and ``A[d] = deletion & substitution &
    match`` (the old-row terms). That form is a prefix scan under the
    shift-and-AND operator, computed in ``ceil(log2(k + 1))`` array-wide
    rounds instead of ``k`` dependent steps — but only while the state is
    small: the scan does ``O(k log k)`` element-work against the chain's
    ``O(k)``, so once per-call overhead is amortized (large ``k * B * W``)
    the plain chain is faster and is used instead. Both orders produce the
    same bits.

    ``out`` lets callers compute the new rows directly into their own
    storage (the DC loop writes each iteration straight into its ``R``
    history array, skipping a per-iteration copy); it must not alias
    ``old_r``.

    Masking discipline: every stored ``R`` row is kept clamped below each
    pattern's top bit (row 0 explicitly, rows ``1..k`` through the AND with
    the already-masked ``deletion`` term), so the intermediate shift
    results never need their own ``& all_ones`` — garbage above the top
    bit is annihilated by the AND chain.
    """
    new_r = np.empty_like(old_r) if out is None else out
    new_r[0] = (shift_left_words(old_r[0]) | cur_pm) & all_ones
    if k:
        deletion = old_r[:-1]
        substitution = shift_left_words(deletion)
        match = shift_left_words(old_r[1:])
        match |= cur_pm
        substitution &= match
        np.bitwise_and(deletion, substitution, out=new_r[1:])
        if old_r.size <= _PREFIX_SCAN_CUTOFF:
            offset = 1
            while offset <= k:
                new_r[offset:] &= shift_left_words_by(new_r[:-offset], offset)
                offset *= 2
        else:
            for d in range(1, k + 1):
                new_r[d] &= shift_left_words(new_r[d - 1])
    return new_r


@register_engine
class BatchedEngine(AlignmentEngine):
    """Array-wide Bitap / GenASM-DC over packed uint64 bitvectors.

    Parameters
    ----------
    min_batch:
        Batches smaller than this fall through to the pure-Python backend
        (identical results, lower constant cost for tiny jobs). The default
        sits at the measured crossover where array-wide execution starts
        beating the scalar loop.
    """

    name = "batched"

    def __init__(self, *, min_batch: int = 8) -> None:
        if min_batch < 1:
            raise ValueError("min_batch must be at least 1")
        self.min_batch = min_batch
        self._pure = PurePythonEngine()

    @classmethod
    def is_available(cls) -> bool:
        return numpy_available()

    @classmethod
    def unavailable_reason(cls) -> str | None:
        return None if numpy_available() else "NumPy is not installed"

    # ------------------------------------------------------------------
    # Bitap scan
    # ------------------------------------------------------------------
    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        if k < 0:
            raise ValueError("edit distance threshold k must be non-negative")
        pairs = list(pairs)
        if not pairs:
            return []
        if len(pairs) < self.min_batch:
            return self._pure.scan_batch(
                pairs, k, alphabet=alphabet, first_match_only=first_match_only
            )
        packed = pack_patterns([pattern for _, pattern in pairs], alphabet)
        codes, lengths = encode_texts([text for text, _ in pairs], alphabet)
        return self._scan(codes, lengths, packed, k, first_match_only)

    def _scan(
        self,
        codes: "np.ndarray",
        lengths: "np.ndarray",
        packed: PackedPatterns,
        k: int,
        first_match_only: bool,
    ) -> list[list[BitapMatch]]:
        batch, n_max = codes.shape
        all_ones = packed.all_ones
        msb = packed.msb
        bitmasks = packed.bitmasks
        rows = np.arange(batch)
        r = np.broadcast_to(all_ones, (k + 1, batch, packed.word_count)).copy()
        # Match emission is deferred: the loop only records (iteration,
        # matching columns, best distances) triples and the BitapMatch
        # objects are built in one pass afterwards, keeping per-iteration
        # Python work off the hot loop.
        hits: list[tuple[int, list[int], list[int]]] = []
        done = np.zeros(batch, dtype=bool)
        uniform = bool((lengths == n_max).all())
        for i in range(n_max - 1, -1, -1):
            if uniform and not first_match_only:
                active = None  # every pair live at every iteration
            else:
                active = lengths > i
                if first_match_only:
                    active &= ~done
                if not active.any():
                    if first_match_only and done.all():
                        break
                    continue
            cur_pm = bitmasks[rows, codes[:, i]]
            old_r = r
            r = _recurrence_step(old_r, cur_pm, all_ones, k)
            if active is not None and not active.all():
                r = np.where(active[None, :, None], r, old_r)
            # Cheap first: R rows are nested (R[d+1]'s zeros include
            # R[d]'s — each factor of the d+1 recurrence is a superset-of-
            # zeros of the d one), so if no *relevant* pair's row-k MSB
            # cleared, no row cleared at all and the full (k+1, B)
            # reduction plus argmax can be skipped for this iteration.
            top_msb_set = ((r[k] & msb) != 0).any(axis=1)
            if active is None:
                if top_msb_set.all():
                    continue
            elif (top_msb_set | ~active).all():
                continue
            msb_clear = ~((r & msb) != 0).any(axis=2)
            found = msb_clear.any(axis=0)
            if active is not None:
                found &= active
            if found.any():
                cols = np.nonzero(found)[0]
                best_d = msb_clear[:, cols].argmax(axis=0)
                hits.append((i, cols.tolist(), best_d.tolist()))
                if first_match_only:
                    done |= found
        matches: list[list[BitapMatch]] = [[] for _ in range(batch)]
        for i, cols, dists in hits:
            for b, d in zip(cols, dists):
                matches[b].append(BitapMatch(start=i, distance=d))
        return matches

    # ------------------------------------------------------------------
    # GenASM-DC windows
    # ------------------------------------------------------------------
    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
        representation: str = "sene",
    ) -> list[WindowData]:
        jobs = list(jobs)
        if not jobs:
            return []
        if representation != "sene" or len(jobs) < self.min_batch:
            # The legacy "edges" representation (explicit M/I/D stores) is a
            # compatibility path, not a hot one — the scalar kernel serves
            # it; SENE is the only layout the batched DC loop stores.
            return self._pure.run_dc_windows(
                jobs,
                alphabet=alphabet,
                initial_budget=initial_budget,
                representation=representation,
            )
        budgets: list[int] = []
        for sub_text, sub_pattern in jobs:
            if not sub_pattern:
                raise ValueError("window pattern must be non-empty")
            if not sub_text:
                raise WindowUnalignableError("window text is empty")
            budgets.append(min(max(1, initial_budget), len(sub_pattern)))

        results: list[WindowData | None] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        while pending:
            by_budget: dict[int, list[int]] = {}
            for idx in pending:
                by_budget.setdefault(budgets[idx], []).append(idx)
            still_pending: list[int] = []
            for budget, members in by_budget.items():
                self._dc_group(jobs, members, budget, alphabet, results)
                for idx in members:
                    if results[idx] is not None:
                        continue
                    m = len(jobs[idx][1])
                    if budgets[idx] >= m:
                        raise WindowUnalignableError(
                            f"window unalignable at k={budgets[idx]} "
                            f"(text {len(jobs[idx][0])} chars, "
                            f"pattern {m} chars)"
                        )
                    budgets[idx] = min(budgets[idx] * 2, m)
                    still_pending.append(idx)
            pending = still_pending
        return results  # type: ignore[return-value]

    def _dc_group(
        self,
        jobs: list[tuple[str, str]],
        members: list[int],
        k: int,
        alphabet: Alphabet,
        results: list,
    ) -> None:
        """One fixed-``k`` SENE DC pass over ``members``; fills solved slots.

        ``r_store[i]`` holds the ``R`` rows *after* text iteration ``i``
        (the loop runs ``i`` from ``n_max - 1`` down to 0); ``r_store[n]``
        is the all-ones initial state. Each iteration's recurrence writes
        directly into its history slot, so the whole DC pass performs one
        store per iteration where the previous edge-store layout performed
        three plus an extra shift for the insertion vector. A pair whose
        text is shorter stays frozen at all-ones until its own first
        iteration, which also means its ``r_store[n_b]`` row *is* the
        initial state — the zero-copy window slice works for ragged batches
        unchanged.
        """
        packed = pack_patterns([jobs[idx][1] for idx in members], alphabet)
        codes, lengths = encode_texts(
            [jobs[idx][0] for idx in members], alphabet
        )
        batch, n_max = codes.shape
        all_ones = packed.all_ones
        bitmasks = packed.bitmasks
        rows = np.arange(batch)
        shape = (k + 1, batch, packed.word_count)
        r_store = np.empty((n_max + 1, *shape), dtype=np.uint64)
        r_store[n_max] = all_ones
        r = r_store[n_max]
        # Gather every iteration's per-pair pattern mask in one fancy-index
        # pass (windows are at most W characters, so this is tiny) instead
        # of one gather per iteration.
        pm_all = bitmasks[rows[:, None], codes]
        uniform = bool((lengths == n_max).all())
        for i in range(n_max - 1, -1, -1):
            cur_pm = pm_all[:, i]
            old_r = r
            new_r = _recurrence_step(old_r, cur_pm, all_ones, k, out=r_store[i])
            if not uniform:
                inactive = lengths <= i
                if inactive.any():
                    new_r[:, inactive, :] = old_r[:, inactive, :]
            r = new_r
        msb_clear = ~((r & packed.msb) != 0).any(axis=2)
        for col, idx in enumerate(members):
            if not msb_clear[:, col].any():
                continue  # missed at this budget; caller doubles and retries
            n_b = int(lengths[col])
            results[idx] = PackedWindowBitvectors(
                text=jobs[idx][0],
                pattern=jobs[idx][1],
                k=k,
                r_words=r_store[: n_b + 1, :, col, :],
                edit_distance=int(msb_clear[:, col].argmax()),
                alphabet=alphabet,
                pm_table=bitmasks[col],
                pm_codes=codes[col, :n_b],
            )
