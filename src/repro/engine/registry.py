"""Backend registry and the common :class:`AlignmentEngine` interface.

Every compute backend — pure Python today, NumPy-batched in this package,
process-pool or GPU backends later — implements the same small surface:

* :meth:`AlignmentEngine.scan_batch` — Bitap distance scans over many
  (text, pattern) pairs (the pre-alignment filter primitive);
* :meth:`AlignmentEngine.run_dc_windows` — GenASM-DC bitvector generation
  for many windows at once (the aligner's hot inner step);
* :meth:`AlignmentEngine.edit_distance_batch` — derived from the scan.

Backends register themselves by class (``name`` attribute) and declare
availability, so optional dependencies degrade gracefully: when NumPy is
missing the registry silently falls back to the pure-Python backend.
Callers pick a backend per call site (``engine="batched"``), per process
(the ``REPRO_ENGINE`` environment variable), or not at all (the best
available backend wins).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import ClassVar, Sequence

from repro.core.bitap import BitapMatch
from repro.core.genasm_dc import WindowBitvectors
from repro.sequences.alphabet import DNA, Alphabet

#: Environment variable naming the process-wide default backend.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Preference order when no backend is named anywhere.
_DEFAULT_PREFERENCE = ("batched", "pure")


class UnknownEngineError(KeyError):
    """Raised when a requested backend is not registered or unavailable."""


class AlignmentEngine(ABC):
    """Common interface every alignment compute backend implements.

    All methods are *batch-first*: they take sequences of jobs and return
    per-job results in the same order. Backends must be bit-identical to the
    pure-Python reference kernels (:func:`repro.core.bitap.bitap_scan` and
    :func:`repro.core.genasm_dc.run_dc_window`) — parity is enforced by
    randomized tests, not trusted.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @abstractmethod
    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        """Run a Bitap scan for every (text, pattern) pair in ``pairs``."""

    @abstractmethod
    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
    ) -> list[WindowBitvectors]:
        """Run GenASM-DC for every (sub_text, sub_pattern) window job."""

    def edit_distance_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
    ) -> list[int | None]:
        """Minimum semi-global edit distance per pair (None above ``k``)."""
        scans = self.scan_batch(pairs, k, alphabet=alphabet)
        return [
            min((match.distance for match in matches), default=None)
            for matches in scans
        ]


_REGISTRY: dict[str, type[AlignmentEngine]] = {}
_INSTANCES: dict[str, AlignmentEngine] = {}


def register_engine(
    engine_cls: type[AlignmentEngine], *, overwrite: bool = False
) -> type[AlignmentEngine]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    name = engine_cls.name
    if not name or name == AlignmentEngine.name:
        raise ValueError(f"{engine_cls.__name__} must define a concrete name")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"engine {name!r} is already registered")
    _REGISTRY[name] = engine_cls
    _INSTANCES.pop(name, None)
    return engine_cls


def registered_engines() -> list[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_engines() -> list[str]:
    """Backend names whose dependencies are satisfied right now."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].is_available()]


def default_engine_name() -> str:
    """Resolve the default backend: env override, then best available."""
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return env
    for name in _DEFAULT_PREFERENCE:
        cls = _REGISTRY.get(name)
        if cls is not None and cls.is_available():
            return name
    for name in available_engines():
        return name
    raise UnknownEngineError("no alignment engine is available")


def get_engine(
    spec: AlignmentEngine | str | None = None,
) -> AlignmentEngine:
    """Resolve ``spec`` to a live backend instance.

    ``spec`` may be an engine instance (returned as-is), a registered name,
    or None — meaning the ``REPRO_ENGINE`` environment variable if set, else
    the best available backend. Instances are cached per name, so repeated
    lookups share state-free singletons.
    """
    if isinstance(spec, AlignmentEngine):
        return spec
    name = spec if spec is not None else default_engine_name()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise UnknownEngineError(
            f"unknown engine {name!r}; registered engines: {registered_engines()}"
        )
    if not cls.is_available():
        raise UnknownEngineError(
            f"engine {name!r} is registered but unavailable "
            "(missing optional dependency?)"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance
