"""Backend registry and the common :class:`AlignmentEngine` interface.

Every compute backend — pure Python today, NumPy-batched in this package,
process-pool or GPU backends later — implements the same small surface:

* :meth:`AlignmentEngine.scan_batch` — Bitap distance scans over many
  (text, pattern) pairs (the pre-alignment filter primitive);
* :meth:`AlignmentEngine.run_dc_windows` — GenASM-DC bitvector generation
  for many windows at once (the aligner's hot inner step);
* :meth:`AlignmentEngine.edit_distance_batch` — derived from the scan.

Backends register themselves by class (``name`` attribute) and declare
availability, so optional dependencies degrade gracefully: when NumPy is
missing the registry silently falls back to the pure-Python backend.
Callers pick a backend per call site (``engine="batched"``), per process
(the ``REPRO_ENGINE`` environment variable), or not at all (the best
available backend wins).
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.core.bitap import BitapMatch
from repro.core.genasm_dc import WindowData
from repro.sequences.alphabet import DNA, Alphabet

#: Environment variable naming the process-wide default backend.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Preference order when no backend is named anywhere.
_DEFAULT_PREFERENCE = ("batched", "pure")


class UnknownEngineError(KeyError):
    """Raised when a requested backend is not registered or unavailable."""


@dataclass(frozen=True)
class EngineInfo:
    """Capability metadata for one registered backend.

    Attributes
    ----------
    name:
        Registry key.
    available:
        Whether the backend can run right now.
    reason:
        Why the backend is unavailable (None when available).
    workers:
        Degree of intra-engine parallelism — 1 for in-process backends,
        the process-pool size for the sharded backend.
    """

    name: str
    available: bool
    reason: str | None
    workers: int


class AlignmentEngine(ABC):
    """Common interface every alignment compute backend implements.

    All methods are *batch-first*: they take sequences of jobs and return
    per-job results in the same order. Backends must be bit-identical to the
    pure-Python reference kernels (:func:`repro.core.bitap.bitap_scan` and
    :func:`repro.core.genasm_dc.run_dc_window`) — parity is enforced by
    randomized tests, not trusted.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        """Why :meth:`is_available` is False (None when available)."""
        if cls.is_available():
            return None
        return "missing optional dependency"

    @classmethod
    def default_worker_count(cls) -> int:
        """Parallel workers a default-constructed instance would use."""
        return 1

    @classmethod
    def create(cls, **kwargs: object) -> "AlignmentEngine":
        """Construct a fresh instance of this backend.

        The hook :func:`create_engine` calls when building *private*
        engine instances — one per serving replica — as opposed to the
        shared per-name singletons :func:`get_engine` hands out. Backends
        whose construction needs more than ``cls(**kwargs)`` (a warmed
        pool, a device handle) override this.
        """
        return cls(**kwargs)

    @abstractmethod
    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        """Run a Bitap scan for every (text, pattern) pair in ``pairs``."""

    @abstractmethod
    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
        representation: str = "sene",
    ) -> list[WindowData]:
        """Run GenASM-DC for every (sub_text, sub_pattern) window job.

        ``representation`` selects the window storage discipline:
        ``"sene"`` (default) keeps only the ``R[d]`` history and derives
        traceback edges on demand; ``"edges"`` returns the legacy explicit
        match/insertion/deletion stores. Backends may realize ``"sene"``
        with their own zero-copy window type, but the derived edge bits
        must stay bit-identical to the reference kernel's.
        """

    def edit_distance_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
    ) -> list[int | None]:
        """Minimum semi-global edit distance per pair (None above ``k``)."""
        scans = self.scan_batch(pairs, k, alphabet=alphabet)
        return [
            min((match.distance for match in matches), default=None)
            for matches in scans
        ]


_REGISTRY: dict[str, type[AlignmentEngine]] = {}
_INSTANCES: dict[str, AlignmentEngine] = {}
#: Memoized ``REPRO_ENGINE`` resolutions: env value -> backend name. The
#: fallback RuntimeWarning for a bogus value fires once per value, not once
#: per call — default_engine_name() sits on every engine-less construction
#: path (aligners, filters, servers), and a per-call warning floods logs.
_ENV_RESOLUTIONS: dict[str, str] = {}


def register_engine(
    engine_cls: type[AlignmentEngine], *, overwrite: bool = False
) -> type[AlignmentEngine]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    name = engine_cls.name
    if not name or name == AlignmentEngine.name:
        raise ValueError(f"{engine_cls.__name__} must define a concrete name")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"engine {name!r} is already registered")
    _REGISTRY[name] = engine_cls
    _INSTANCES.pop(name, None)
    # A new registration can change what an env value resolves to (the
    # value may now name a real backend); drop the memoized resolutions.
    _ENV_RESOLUTIONS.clear()
    return engine_cls


def registered_engines() -> list[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_engines(
    *, detailed: bool = False
) -> list[str] | list[EngineInfo]:
    """Backends whose dependencies are satisfied right now.

    Returns sorted names by default; with ``detailed=True``, returns one
    :class:`EngineInfo` per available backend (worker count included) so
    callers can pick by capability rather than by name.
    """
    if not detailed:
        return [
            name for name in sorted(_REGISTRY) if _REGISTRY[name].is_available()
        ]
    return [info for info in engine_info() if info.available]


def engine_info() -> list[EngineInfo]:
    """Capability metadata for every registered backend, available or not."""
    infos = []
    for name in sorted(_REGISTRY):
        cls = _REGISTRY[name]
        available = cls.is_available()
        infos.append(
            EngineInfo(
                name=name,
                available=available,
                reason=None if available else cls.unavailable_reason(),
                workers=cls.default_worker_count() if available else 0,
            )
        )
    return infos


def _best_available_name() -> str:
    """Best backend by preference order, then any available one."""
    for name in _DEFAULT_PREFERENCE:
        cls = _REGISTRY.get(name)
        if cls is not None and cls.is_available():
            return name
    for name in sorted(_REGISTRY):
        if _REGISTRY[name].is_available():
            return name
    reasons = "; ".join(
        f"{info.name}: {info.reason or 'unavailable'}"
        for info in engine_info()
    )
    raise UnknownEngineError(
        "no alignment engine is available"
        + (f" ({reasons})" if reasons else " (none registered)")
    )


def default_engine_name() -> str:
    """Resolve the default backend: validated env override, then best available.

    A ``REPRO_ENGINE`` value that names an unregistered or unavailable
    backend is diagnosed here — at resolution time — with a
    :class:`RuntimeWarning` naming the registered engines, and the best
    available backend is used instead. (Explicitly passing a bogus name to
    :func:`get_engine` still raises; only the ambient env default degrades.)
    The validated resolution is memoized per env value, so the warning
    fires once rather than on every call; registering a new backend
    invalidates the memo.
    """
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        cls = _REGISTRY.get(env)
        if cls is not None and cls.is_available():
            return env
        cached = _ENV_RESOLUTIONS.get(env)
        if cached is not None and _is_usable(cached):
            return cached
        fallback = _best_available_name()
        if cls is None:
            problem = (
                f"does not name a registered engine "
                f"(registered: {', '.join(registered_engines())})"
            )
        else:
            problem = (
                f"is registered but unavailable "
                f"({cls.unavailable_reason() or 'missing optional dependency'})"
            )
        warnings.warn(
            f"{ENGINE_ENV_VAR}={env!r} {problem}; "
            f"falling back to {fallback!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        _ENV_RESOLUTIONS[env] = fallback
        return fallback
    return _best_available_name()


def _is_usable(name: str) -> bool:
    """Whether ``name`` is registered and available right now."""
    cls = _REGISTRY.get(name)
    return cls is not None and cls.is_available()


def _resolve_available_class(name: str) -> type[AlignmentEngine]:
    """``name`` -> registered, available backend class (or raise)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise UnknownEngineError(
            f"unknown engine {name!r}; registered engines: {registered_engines()}"
        )
    if not cls.is_available():
        raise UnknownEngineError(
            f"engine {name!r} is registered but unavailable "
            f"({cls.unavailable_reason() or 'missing optional dependency'})"
        )
    return cls


def get_engine(
    spec: AlignmentEngine | str | None = None,
) -> AlignmentEngine:
    """Resolve ``spec`` to a live backend instance.

    ``spec`` may be an engine instance (returned as-is), a registered name,
    or None — meaning the ``REPRO_ENGINE`` environment variable if set, else
    the best available backend. Instances are cached per name, so repeated
    lookups share state-free singletons.
    """
    if isinstance(spec, AlignmentEngine):
        return spec
    name = spec if spec is not None else default_engine_name()
    cls = _resolve_available_class(name)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance


def create_engine(
    spec: AlignmentEngine | str | None = None, **kwargs: object
) -> AlignmentEngine:
    """Construct a **fresh** backend instance — never the shared singleton.

    Replicated servers need one engine *instance* per replica (a sharded
    backend's process pool, a batched backend's scratch arrays, and any
    future device handle must not be shared across replicas that flush
    concurrently from different worker threads), but :func:`get_engine`
    deliberately memoizes one instance per name. This is the per-replica
    construction hook: ``spec`` resolves exactly like :func:`get_engine`
    (instance / registered name / None for the environment default), but
    a name resolves through :meth:`AlignmentEngine.create` to a brand-new
    instance, with ``kwargs`` forwarded to the constructor. An engine
    *instance* passed as ``spec`` is returned as-is — the caller already
    chose its sharing.
    """
    if isinstance(spec, AlignmentEngine):
        if kwargs:
            raise ValueError(
                "pass constructor kwargs only with an engine name, "
                "not a ready instance"
            )
        return spec
    name = spec if spec is not None else default_engine_name()
    return _resolve_available_class(name).create(**kwargs)
