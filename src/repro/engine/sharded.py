"""Process-pool sharded backend: the batch interface across many cores.

Python's per-process GIL caps the pure and NumPy-batched backends at one
core. This backend shards the *batch* dimension instead: ``scan_batch`` and
``run_dc_windows`` split their job lists into contiguous chunks, submit the
chunks to a persistent ``multiprocessing`` pool whose workers each host an
ordinary in-process engine (``"batched"`` when NumPy is importable, else
``"pure"``), and concatenate the per-chunk results back in submission order
— so output stays bit-identical to the reference backend, just computed on
several cores at once.

The economics mirror the GenASM batching story one level up: IPC costs
(pickling jobs and results, pool scheduling) are paid per *chunk*, so the
backend only wins when each chunk carries real work. That makes it the
right tool for the long-read workloads (10 kbp patterns, large error
budgets) where single-core NumPy stays near parity with Python big-ints,
and the wrong tool for tiny batches — which is why batches below
``min_batch`` jobs short-circuit to the in-process engine, paying zero IPC.

The pool is created lazily on the first sharded call and lives for the
engine instance's lifetime (the registry caches instances, so the spawn
cost is paid once per process). ``close()`` — or using the engine as a
context manager — tears it down early; the interpreter's multiprocessing
finalizers clean up whatever remains at exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Sequence, TypeVar

from repro.core.bitap import BitapMatch
from repro.core.genasm_dc import WindowData
from repro.engine.registry import AlignmentEngine, register_engine
from repro.sequences.alphabet import DNA, Alphabet

T = TypeVar("T")

#: Hard cap on the default pool size; past this, chunk scheduling and
#: result pickling dominate for every workload we serve.
_MAX_DEFAULT_WORKERS = 8


def _default_workers() -> int:
    return max(1, min(os.cpu_count() or 1, _MAX_DEFAULT_WORKERS))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Pick a start method that is safe *right now*.

    Fork is cheapest (workers inherit imports), but forking a process with
    live threads is unsound — a child can inherit a lock held by another
    thread and deadlock, and Python 3.12+ warns about it. The serving layer
    creates pools lazily from its flush worker thread while the event loop
    thread runs, which is exactly that case, so fork is only used when this
    process is still single-threaded; otherwise forkserver (or spawn)
    starts workers from a clean process.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    for method in ("forkserver", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context("fork")  # pragma: no cover


# ----------------------------------------------------------------------
# Worker-side code. These must be module-level (picklable by reference);
# each worker process hosts one in-process engine resolved once by the
# pool initializer.
# ----------------------------------------------------------------------
_WORKER_ENGINE: AlignmentEngine | None = None
_WORKER_MAPPER: Any = None

#: Worker-side cache of mappers rebuilt from IPC-cheap specs, keyed by the
#: mapper token. Bounded so a worker serving many references (one shard per
#: chromosome) keeps the hot few k-mer indexes without hoarding all of them.
_WORKER_MAPPERS: dict[str, Any] = {}
_WORKER_MAPPER_CAP = 4


def _init_worker(inner_name: str) -> None:
    global _WORKER_ENGINE
    from repro.engine.registry import get_engine

    _WORKER_ENGINE = get_engine(inner_name)


def _init_map_worker(inner_name: str, spec: Any) -> None:
    """Pool initializer for mapper sharding: pin one mapper per worker.

    The reference genome and k-mer index cross the IPC boundary exactly once
    — here, inside ``spec`` at pool start — so per-call chunks carry only
    the reads themselves.
    """
    global _WORKER_MAPPER
    _init_worker(inner_name)
    _WORKER_MAPPER = spec.build(_WORKER_ENGINE)


def _map_chunk(
    reads: list[tuple[str, str]],
) -> tuple[list[Any], Any, float]:
    """Run the full mapping pipeline for one chunk of reads.

    Returns the chunk's results, the stats *delta* it generated (so the
    parent can fold worker counters into the caller's mapper), and the
    worker-side compute seconds — the only per-shard timing that can
    cross the IPC boundary, since a parent-side clock would fold pool
    queueing into every chunk.
    """
    from repro.mapping.pipeline import PipelineStats

    started = time.perf_counter()
    _WORKER_MAPPER.stats = PipelineStats()
    results = _WORKER_MAPPER.map_reads(reads)
    return results, _WORKER_MAPPER.stats, time.perf_counter() - started


def _map_chunk_spec(
    args: tuple[str, Any, list[tuple[str, str]]],
) -> tuple[list[Any], Any, float]:
    """Map one chunk from an IPC-cheap spec through the *shared* pool.

    A spec over a mmap-backed :class:`GenomeShard` pickles as paths, so it
    rides along with every chunk instead of requiring a dedicated pinned
    pool per mapper. The worker rebuilds the mapper (mmap open + k-mer
    index) on first sight of a token and caches it, so alternating between
    references — one mapper per chromosome — stops tearing pools down.
    """
    from repro.mapping.pipeline import PipelineStats

    token, spec, reads = args
    started = time.perf_counter()
    mapper = _WORKER_MAPPERS.get(token)
    if mapper is None:
        mapper = spec.build(_WORKER_ENGINE)
        while len(_WORKER_MAPPERS) >= _WORKER_MAPPER_CAP:
            _WORKER_MAPPERS.pop(next(iter(_WORKER_MAPPERS)))
        _WORKER_MAPPERS[token] = mapper
    else:
        # Re-insert to keep eviction order ~LRU.
        _WORKER_MAPPERS.pop(token)
        _WORKER_MAPPERS[token] = mapper
    mapper.stats = PipelineStats()
    results = mapper.map_reads(reads)
    return results, mapper.stats, time.perf_counter() - started


def _scan_chunk(
    args: tuple[list[tuple[str, str]], int, Alphabet, bool],
) -> tuple[list[list[BitapMatch]], float]:
    pairs, k, alphabet, first_match_only = args
    started = time.perf_counter()
    results = _WORKER_ENGINE.scan_batch(
        pairs, k, alphabet=alphabet, first_match_only=first_match_only
    )
    return results, time.perf_counter() - started


def _dc_chunk(
    args: tuple[list[tuple[str, str]], Alphabet, int, str],
) -> tuple[list[WindowData], float]:
    jobs, alphabet, initial_budget, representation = args
    started = time.perf_counter()
    results = _WORKER_ENGINE.run_dc_windows(
        jobs,
        alphabet=alphabet,
        initial_budget=initial_budget,
        representation=representation,
    )
    return results, time.perf_counter() - started


def _align_chunk(
    args: tuple[list[tuple[str, str]], Alphabet, int, int, Any, str],
) -> tuple[list[Any], float]:
    pairs, alphabet, window_size, overlap, config, window_representation = args
    from repro.core.aligner import GenAsmAligner

    started = time.perf_counter()
    aligner = GenAsmAligner(
        window_size=window_size,
        overlap=overlap,
        config=config,
        alphabet=alphabet,
        engine=_WORKER_ENGINE,
        window_representation=window_representation,
    )
    results = aligner.align_batch(pairs)
    return results, time.perf_counter() - started


@register_engine
class ShardedEngine(AlignmentEngine):
    """Chunked fan-out of the batch interface over a process pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``min(cpu_count, 8)``.
    inner:
        Name of the in-process backend each worker hosts. Defaults to the
        best single-process backend (``"batched"`` if NumPy is available,
        else ``"pure"``). Must not itself be ``"sharded"``.
    min_batch:
        Batches smaller than this run on an in-process copy of ``inner``
        instead of crossing the IPC boundary (identical results, no pool
        spin-up for small jobs). Defaults to ``4 * workers``.
    chunks_per_worker:
        How many chunks to cut each batch into per worker. Values above 1
        smooth out load imbalance from uneven job sizes at a slightly
        higher per-chunk IPC cost.
    """

    name = "sharded"

    def __init__(
        self,
        *,
        workers: int | None = None,
        inner: str | None = None,
        min_batch: int | None = None,
        chunks_per_worker: int = 2,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if inner == self.name:
            raise ValueError("inner engine must be an in-process backend")
        self.workers = workers if workers is not None else _default_workers()
        self.inner_name = inner if inner is not None else _best_inner_name()
        self.min_batch = (
            min_batch if min_batch is not None else 4 * self.workers
        )
        self.chunks_per_worker = chunks_per_worker
        from repro.engine.registry import get_engine

        self._local = get_engine(self.inner_name)
        self._pool: multiprocessing.pool.Pool | None = None
        self._map_pool: multiprocessing.pool.Pool | None = None
        self._map_pool_token: str | None = None
        self._atexit_registered = False
        self._shard_timings: list[dict[str, Any]] | None = None

    # ------------------------------------------------------------------
    # Availability / capability metadata
    # ------------------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        try:
            # Platforms without a working semaphore implementation (some
            # sandboxes) raise on this import; a pool cannot start there.
            import multiprocessing.synchronize  # noqa: F401
        except ImportError:  # pragma: no cover - platform-specific
            return False
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        if cls.is_available():
            return None
        return "multiprocessing semaphores are unsupported on this platform"

    @classmethod
    def default_worker_count(cls) -> int:
        return _default_workers()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = _pool_context().Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.inner_name,),
            )
            # Terminate before interpreter teardown; a pool collected during
            # shutdown spews "Exception ignored in Pool.__del__" noise.
            if not self._atexit_registered:
                self._atexit_registered = True
                atexit.register(self.close)
        return self._pool

    def warm_up(self) -> None:
        """Spawn the worker pool now instead of on the first sharded call.

        Call this at service startup, while the process is still
        single-threaded: the pool then uses the cheap fork start method and
        the spawn cost is off the request path. The serving layer warms any
        engine exposing this method when the server is constructed.
        """
        self._ensure_pool()

    def _ensure_map_pool(
        self, spec: Any, token: str
    ) -> multiprocessing.pool.Pool:
        """A pool whose workers each hold a mapper built from ``spec``.

        The pool is keyed by the mapper's ``token``: repeated calls for the
        same mapper reuse the pinned workers (reads are the only per-call
        IPC payload), while a different mapper tears the old pool down and
        pays the genome/index pickle once for the new one.
        """
        if self._map_pool is not None and self._map_pool_token != token:
            self._map_pool.terminate()
            self._map_pool.join()
            self._map_pool = None
        if self._map_pool is None:
            self._map_pool = _pool_context().Pool(
                processes=self.workers,
                initializer=_init_map_worker,
                initargs=(self.inner_name, spec),
            )
            self._map_pool_token = token
            if not self._atexit_registered:
                self._atexit_registered = True
                atexit.register(self.close)
        return self._map_pool

    def close(self) -> None:
        """Tear down the worker pools (recreated lazily if used again)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._map_pool is not None:
            self._map_pool.terminate()
            self._map_pool.join()
            self._map_pool = None
            self._map_pool_token = None
        if self._atexit_registered:
            self._atexit_registered = False
            atexit.unregister(self.close)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Sharded batch interface
    # ------------------------------------------------------------------
    def _shard(self, jobs: list[T]) -> list[list[T]]:
        """Contiguous chunks; concatenating them restores input order."""
        target = self.workers * self.chunks_per_worker
        chunk_size = max(1, -(-len(jobs) // target))
        return [
            jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)
        ]

    def _run_sharded(
        self,
        jobs: list[T],
        worker_fn: Callable[..., tuple[list[Any], float]],
        extra: tuple,
        local_fn: Callable[[list[T]], list[Any]],
    ) -> list[Any]:
        chunks = self._shard(jobs)
        if len(chunks) == 1:
            # One chunk would serialize through one worker anyway; skip IPC.
            return local_fn(jobs)
        pool = self._ensure_pool()
        outputs = pool.map(worker_fn, [(chunk, *extra) for chunk in chunks])
        self._shard_timings = [
            {"jobs": len(chunk), "seconds": seconds}
            for chunk, (_, seconds) in zip(chunks, outputs)
        ]
        return [item for chunk_result, _ in outputs for item in chunk_result]

    def pop_shard_timings(self) -> list[dict[str, Any]] | None:
        """Per-shard worker timings of the last fan-out, then clear them.

        Each entry is ``{"jobs": <chunk size>, "seconds": <worker-side
        compute seconds>}``, in chunk submission order. Returns ``None``
        when the last call took the in-process path (below ``min_batch``
        or a single chunk). Return-and-clear semantics keep a stale
        fan-out from being attributed to a later small-batch call; the
        serving layer attaches the popped list to the request's
        ``engine`` span.
        """
        timings, self._shard_timings = self._shard_timings, None
        return timings

    def scan_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        k: int,
        *,
        alphabet: Alphabet = DNA,
        first_match_only: bool = False,
    ) -> list[list[BitapMatch]]:
        if k < 0:
            raise ValueError("edit distance threshold k must be non-negative")
        pairs = list(pairs)
        if not pairs:
            return []
        def local(chunk: list[tuple[str, str]]) -> list[list[BitapMatch]]:
            return self._local.scan_batch(
                chunk, k, alphabet=alphabet, first_match_only=first_match_only
            )

        if len(pairs) < self.min_batch:
            return local(pairs)
        return self._run_sharded(
            pairs, _scan_chunk, (k, alphabet, first_match_only), local
        )

    def run_dc_windows(
        self,
        jobs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        initial_budget: int = 8,
        representation: str = "sene",
    ) -> list[WindowData]:
        """Sharded window DC; results come home as compact SENE payloads.

        With the default ``"sene"`` representation the per-chunk IPC result
        is the packed ``(n + 1, k + 1, W)`` uint64 history array per window
        (batched workers) or the big-int ``R`` history (pure workers) — a
        ~3x smaller pickle than the old three edge stores, on top of the
        big-int-to-words saving.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        def local(chunk: list[tuple[str, str]]) -> list[WindowData]:
            return self._local.run_dc_windows(
                chunk,
                alphabet=alphabet,
                initial_budget=initial_budget,
                representation=representation,
            )

        if len(jobs) < self.min_batch:
            return local(jobs)
        return self._run_sharded(
            jobs, _dc_chunk, (alphabet, initial_budget, representation), local
        )

    def align_batch(
        self,
        pairs: Sequence[tuple[str, str]],
        *,
        alphabet: Alphabet = DNA,
        window_size: int | None = None,
        overlap: int | None = None,
        config: Any = None,
        window_representation: str = "sene",
    ) -> list[Any]:
        """Shard whole windowed alignments across the pool.

        For full GenASM alignments the right fan-out unit is the *pair*,
        not the window round: each worker runs the entire windowed DC + TB
        loop for its chunk, so one IPC round trip covers hundreds of window
        rounds and only sequences go out / compact CIGARs come back. The
        serving layer prefers this entry point for ``align`` traffic when
        the engine provides it. Output order and bits match
        :meth:`GenAsmAligner.align_batch` on any in-process backend.
        """
        from repro.core.aligner import (
            DEFAULT_OVERLAP,
            DEFAULT_WINDOW_SIZE,
            GenAsmAligner,
        )

        window_size = (
            DEFAULT_WINDOW_SIZE if window_size is None else window_size
        )
        overlap = DEFAULT_OVERLAP if overlap is None else overlap
        pairs = list(pairs)
        if not pairs:
            return []

        def local(chunk: list[tuple[str, str]]) -> list[Any]:
            aligner = GenAsmAligner(
                window_size=window_size,
                overlap=overlap,
                config=config,
                alphabet=alphabet,
                engine=self._local,
                window_representation=window_representation,
            )
            return aligner.align_batch(chunk)

        if len(pairs) < min(self.min_batch, 2 * self.workers):
            return local(pairs)
        return self._run_sharded(
            pairs,
            _align_chunk,
            (alphabet, window_size, overlap, config, window_representation),
            local,
        )

    # ------------------------------------------------------------------
    # Mapper-level sharding
    # ------------------------------------------------------------------
    @property
    def min_map_batch(self) -> float:
        """Smallest read batch worth fanning out to the mapper pool.

        With a single worker there is no parallelism to buy, only IPC and
        a second pool to pay for — the infinite threshold steers
        :meth:`ReadMapper.map_reads_batch` to its in-process path.
        """
        if self.workers < 2:
            return float("inf")
        return max(2, self.workers)

    def shard_map(
        self,
        spec: Any,
        token: str,
        reads: Sequence[tuple[str, str]],
    ) -> tuple[list[Any], Any]:
        """Fan whole-read mapping across the pool.

        Each chunk of ``reads`` runs the complete pipeline — seeding,
        pre-alignment filtering, and alignment — inside one worker whose
        :class:`~repro.mapping.pipeline.ReadMapper` was rebuilt from
        ``spec`` at pool start (see :meth:`_ensure_map_pool`), so the
        per-call IPC payload is just read sequences out and
        :class:`~repro.mapping.pipeline.MappingResult` lists back. Because
        reads are mapped independently, concatenating the per-chunk results
        is bit-identical to an in-process
        :meth:`~repro.mapping.pipeline.ReadMapper.map_reads` call.

        Returns ``(results, stats)`` where ``stats`` is the summed
        :class:`~repro.mapping.pipeline.PipelineStats` delta across workers.
        """
        from repro.mapping.pipeline import PipelineStats

        reads = list(reads)
        total = PipelineStats()
        if not reads:
            return [], total
        chunks = self._shard(reads)
        if getattr(spec, "ipc_cheap", False):
            # Cheap specs ship per chunk through the shared pool; the
            # worker-side cache keyed by token amortizes mapper rebuilds
            # without pinning a dedicated pool to one reference.
            pool = self._ensure_pool()
            outputs = pool.map(
                _map_chunk_spec, [(token, spec, chunk) for chunk in chunks]
            )
        else:
            pool = self._ensure_map_pool(spec, token)
            outputs = pool.map(_map_chunk, chunks)
        results = [
            result
            for chunk_results, _, _ in outputs
            for result in chunk_results
        ]
        for _, chunk_stats, _ in outputs:
            total.merge(chunk_stats)
        self._shard_timings = [
            {"jobs": len(chunk), "seconds": seconds}
            for chunk, (_, _, seconds) in zip(chunks, outputs)
        ]
        return results, total


def _best_inner_name() -> str:
    """Best single-process backend for workers to host."""
    from repro.engine.batched import BatchedEngine

    return "batched" if BatchedEngine.is_available() else "pure"
