"""Pluggable alignment compute backends (the batched multi-backend engine).

The registry (:mod:`repro.engine.registry`) maps backend names to
:class:`AlignmentEngine` implementations:

* ``"pure"`` — :class:`PurePythonEngine`, the scalar reference kernels;
* ``"batched"`` — :class:`BatchedEngine`, NumPy uint64 arrays running the
  Bitap / GenASM-DC recurrence across a whole batch per operation;
* ``"native"`` — :class:`NativeEngine`, the compiled C kernels (Bitap scan,
  GenASM-DC, traceback, and the whole per-pair window loop) behind the
  optional ``repro.core._native`` extension, pure fallback per job;
* ``"sharded"`` — :class:`ShardedEngine`, the batch interface chunked over a
  ``multiprocessing`` pool of in-process workers (multi-core throughput for
  large batches / long reads).

Pick a backend per call site (``GenAsmAligner(engine="batched")``), per
process (``REPRO_ENGINE=pure``), or let :func:`get_engine` choose the best
available one. :func:`engine_info` / ``available_engines(detailed=True)``
surface capability metadata (worker count, availability reason) per backend.
Future backends (CuPy/GPU) plug in via :func:`register_engine` without
touching the call sites.
"""

from repro.engine.batched import BatchedEngine
from repro.engine.native import NativeEngine
from repro.engine.packing import PackedWindowBitvectors
from repro.engine.pure import PurePythonEngine
from repro.engine.registry import (
    ENGINE_ENV_VAR,
    AlignmentEngine,
    EngineInfo,
    UnknownEngineError,
    available_engines,
    create_engine,
    default_engine_name,
    engine_info,
    get_engine,
    register_engine,
    registered_engines,
)
from repro.engine.sharded import ShardedEngine

__all__ = [
    "ENGINE_ENV_VAR",
    "AlignmentEngine",
    "BatchedEngine",
    "EngineInfo",
    "NativeEngine",
    "PackedWindowBitvectors",
    "PurePythonEngine",
    "ShardedEngine",
    "UnknownEngineError",
    "available_engines",
    "create_engine",
    "default_engine_name",
    "engine_info",
    "get_engine",
    "register_engine",
    "registered_engines",
]
