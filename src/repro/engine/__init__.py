"""Pluggable alignment compute backends (the batched multi-backend engine).

The registry (:mod:`repro.engine.registry`) maps backend names to
:class:`AlignmentEngine` implementations:

* ``"pure"`` — :class:`PurePythonEngine`, the scalar reference kernels;
* ``"batched"`` — :class:`BatchedEngine`, NumPy uint64 arrays running the
  Bitap / GenASM-DC recurrence across a whole batch per operation.

Pick a backend per call site (``GenAsmAligner(engine="batched")``), per
process (``REPRO_ENGINE=pure``), or let :func:`get_engine` choose the best
available one. Future backends (process-pool sharding, CuPy/GPU) plug in via
:func:`register_engine` without touching the call sites.
"""

from repro.engine.batched import BatchedEngine
from repro.engine.pure import PurePythonEngine
from repro.engine.registry import (
    ENGINE_ENV_VAR,
    AlignmentEngine,
    UnknownEngineError,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
    registered_engines,
)

__all__ = [
    "ENGINE_ENV_VAR",
    "AlignmentEngine",
    "BatchedEngine",
    "PurePythonEngine",
    "UnknownEngineError",
    "available_engines",
    "default_engine_name",
    "get_engine",
    "register_engine",
    "registered_engines",
]
