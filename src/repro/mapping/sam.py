"""Minimal SAM-format output for mapped reads.

Read alignment's product is "the optimal alignment ... defined using a CIGAR
string" (Section 2.1); SAM is how the ecosystem exchanges it. Only the core
eleven columns are produced — enough for downstream tooling and for the
examples to emit inspectable output.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.core.cigar import Cigar

FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10


@dataclass(frozen=True)
class SamRecord:
    """One alignment line (1-based position, per the SAM spec)."""

    query_name: str
    flag: int
    reference_name: str
    position: int
    mapping_quality: int
    cigar: Cigar | None
    sequence: str

    def to_line(self) -> str:
        cigar_text = self.cigar.to_sam() if self.cigar is not None else "*"
        return "\t".join(
            (
                self.query_name,
                str(self.flag),
                self.reference_name,
                str(self.position),
                str(self.mapping_quality),
                cigar_text if cigar_text else "*",
                "*",  # RNEXT
                "0",  # PNEXT
                "0",  # TLEN
                self.sequence if self.sequence else "*",
                "*",  # QUAL
            )
        )

    @property
    def is_mapped(self) -> bool:
        return not self.flag & FLAG_UNMAPPED


def unmapped_record(query_name: str, sequence: str) -> SamRecord:
    """The record emitted when no candidate location survives."""
    return SamRecord(
        query_name=query_name,
        flag=FLAG_UNMAPPED,
        reference_name="*",
        position=0,
        mapping_quality=0,
        cigar=None,
        sequence=sequence,
    )


def sam_header(reference_sequences: Sequence[tuple[str, int]]) -> str:
    """Render the ``@HD``/``@SQ``/``@PG`` header for the given contigs."""
    lines = ["@HD\tVN:1.6\tSO:unknown"]
    for name, length in reference_sequences:
        if not name:
            raise ValueError("@SQ reference name must be non-empty")
        if length <= 0:
            raise ValueError(
                f"@SQ reference {name!r} length must be positive, got {length}"
            )
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append("@PG\tID:repro-genasm\tPN:repro-genasm")
    return "\n".join(lines) + "\n"


def write_sam(
    records: Iterable[SamRecord],
    destination: str | Path | TextIO,
    *,
    reference_sequences: Sequence[tuple[str, int]] | None = None,
    reference_name: str | None = None,
    reference_length: int | None = None,
) -> None:
    """Write a header plus all records.

    Pass ``reference_sequences`` as ``(name, length)`` pairs — one ``@SQ``
    line per contig. The legacy single-contig ``reference_name`` /
    ``reference_length`` pair is still accepted as a shorthand.
    """
    if reference_sequences is None:
        if reference_name is None or reference_length is None:
            raise ValueError(
                "write_sam requires reference_sequences or both "
                "reference_name and reference_length"
            )
        reference_sequences = [(reference_name, reference_length)]
    elif reference_name is not None or reference_length is not None:
        raise ValueError(
            "pass either reference_sequences or the legacy "
            "reference_name/reference_length pair, not both"
        )
    own = isinstance(destination, (str, Path))
    handle: TextIO = (
        open(destination, "w", encoding="ascii") if own else destination
    )
    try:
        handle.write(sam_header(reference_sequences))
        for record in records:
            handle.write(record.to_line() + "\n")
    finally:
        if own:
            handle.close()
