"""Minimal SAM-format output for mapped reads.

Read alignment's product is "the optimal alignment ... defined using a CIGAR
string" (Section 2.1); SAM is how the ecosystem exchanges it. Only the core
eleven columns are produced — enough for downstream tooling and for the
examples to emit inspectable output.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

from repro.core.cigar import Cigar

FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10


@dataclass(frozen=True)
class SamRecord:
    """One alignment line (1-based position, per the SAM spec)."""

    query_name: str
    flag: int
    reference_name: str
    position: int
    mapping_quality: int
    cigar: Cigar | None
    sequence: str

    def to_line(self) -> str:
        cigar_text = self.cigar.to_sam() if self.cigar is not None else "*"
        return "\t".join(
            (
                self.query_name,
                str(self.flag),
                self.reference_name,
                str(self.position),
                str(self.mapping_quality),
                cigar_text if cigar_text else "*",
                "*",  # RNEXT
                "0",  # PNEXT
                "0",  # TLEN
                self.sequence,
                "*",  # QUAL
            )
        )

    @property
    def is_mapped(self) -> bool:
        return not self.flag & FLAG_UNMAPPED


def unmapped_record(query_name: str, sequence: str) -> SamRecord:
    """The record emitted when no candidate location survives."""
    return SamRecord(
        query_name=query_name,
        flag=FLAG_UNMAPPED,
        reference_name="*",
        position=0,
        mapping_quality=0,
        cigar=None,
        sequence=sequence,
    )


def write_sam(
    records: Iterable[SamRecord],
    destination: str | Path | TextIO,
    *,
    reference_name: str,
    reference_length: int,
) -> None:
    """Write a header plus all records."""
    own = isinstance(destination, (str, Path))
    handle: TextIO = (
        open(destination, "w", encoding="ascii") if own else destination
    )
    try:
        handle.write("@HD\tVN:1.6\tSO:unknown\n")
        handle.write(f"@SQ\tSN:{reference_name}\tLN:{reference_length}\n")
        handle.write("@PG\tID:repro-genasm\tPN:repro-genasm\n")
        for record in records:
            handle.write(record.to_line() + "\n")
    finally:
        if own:
            handle.close()
