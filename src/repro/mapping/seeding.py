"""Seeding: candidate mapping locations from index queries (Figure 1, step 1).

"The seeding process queries the index structure to determine the candidate
(i.e., potential) mapping locations of each read in the reference genome
using substrings (i.e., seeds) from each read."

Seeds extracted from the read vote for the *diagonal* (reference position
minus read offset) they imply; nearby diagonals are clustered and each
cluster becomes one candidate location, ranked by vote count. Sequencing
errors knock out individual seeds but similar regions still accumulate
multiple votes — the FastHASH-style heuristic real mappers use.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.mapping.index import KmerIndex


@dataclass(frozen=True)
class CandidateLocation:
    """One candidate mapping location for a read.

    ``position`` is where the read would start in the reference; ``votes``
    counts the supporting seeds (more votes = more promising candidate).
    """

    position: int
    votes: int


def extract_seeds(read: str, k: int, stride: int | None = None) -> list[tuple[int, str]]:
    """(offset, seed) pairs sampled along the read.

    The default stride of ``k`` gives non-overlapping seeds — enough for
    voting while keeping index pressure low, as real seeding does.
    """
    if k <= 0:
        raise ValueError("seed length must be positive")
    if stride is None:
        stride = k
    if stride <= 0:
        raise ValueError("stride must be positive")
    return [
        (offset, read[offset : offset + k])
        for offset in range(0, max(0, len(read) - k + 1), stride)
    ]


def candidate_locations(
    read: str,
    index: KmerIndex,
    *,
    max_candidates: int = 16,
    diagonal_tolerance: int = 8,
    stride: int | None = None,
) -> list[CandidateLocation]:
    """Seed the read and cluster diagonal votes into candidate locations.

    Parameters
    ----------
    max_candidates:
        Keep only the best-voted candidates (mappers bound downstream work).
    diagonal_tolerance:
        Diagonals within this distance merge into one cluster, absorbing
        small indel-induced shifts between seeds of the same alignment.
    """
    votes: dict[int, int] = defaultdict(int)
    for offset, seed in extract_seeds(read, index.k, stride):
        for position in index.lookup(seed):
            votes[position - offset] += 1
    if not votes:
        return []

    # Cluster nearby diagonals: scan sorted diagonals and merge runs.
    clusters: list[tuple[int, int]] = []  # (representative diagonal, votes)
    current_diag: int | None = None
    current_votes = 0
    best_diag = 0
    best_count = -1
    for diagonal in sorted(votes):
        if current_diag is not None and diagonal - current_diag <= diagonal_tolerance:
            current_votes += votes[diagonal]
            if votes[diagonal] > best_count:
                best_count = votes[diagonal]
                best_diag = diagonal
        else:
            if current_diag is not None:
                clusters.append((best_diag, current_votes))
            current_votes = votes[diagonal]
            best_diag = diagonal
            best_count = votes[diagonal]
        current_diag = diagonal
    clusters.append((best_diag, current_votes))

    candidates = [
        CandidateLocation(position=max(0, diagonal), votes=count)
        for diagonal, count in clusters
    ]
    candidates.sort(key=lambda c: (-c.votes, c.position))
    return candidates[:max_candidates]
