"""Hash-table based reference index (Figure 1, step 0).

"Read mapping starts with indexing, which is an offline pre-processing step
performed on a known reference genome": the index maps every k-mer (seed) of
the reference to the list of positions where it occurs. This is the
structure the seeding step queries, and — per Section 11 — a structure
GenASM itself could help build; here we build it directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.sequences.genome import Genome

#: Positions lists longer than this are dropped, as real mappers do for
#: ultra-frequent seeds (repeat regions would otherwise flood seeding).
DEFAULT_MAX_OCCURRENCES = 128


@dataclass
class KmerIndex:
    """K-mer -> sorted reference positions, with frequency capping.

    Parameters
    ----------
    k:
        Seed length. Mappers use 11-21 for short reads; tests use smaller
        genomes and proportionally smaller seeds.
    max_occurrences:
        Seeds occurring more often than this are masked out (treated as
        uninformative repeats).
    """

    k: int
    max_occurrences: int = DEFAULT_MAX_OCCURRENCES
    _table: dict[str, list[int]] = field(default_factory=dict, repr=False)
    genome_length: int = 0
    masked_seeds: int = 0

    @classmethod
    def build(
        cls,
        genome: Genome,
        k: int = 15,
        *,
        max_occurrences: int = DEFAULT_MAX_OCCURRENCES,
    ) -> "KmerIndex":
        """Index every k-mer of ``genome`` (the offline step 0)."""
        if k <= 0:
            raise ValueError("seed length k must be positive")
        if len(genome) < k:
            raise ValueError("genome shorter than the seed length")
        table: dict[str, list[int]] = defaultdict(list)
        sequence = genome.sequence
        for pos in range(len(sequence) - k + 1):
            table[sequence[pos : pos + k]].append(pos)
        index = cls(k=k, max_occurrences=max_occurrences)
        index.genome_length = len(genome)
        for seed, positions in table.items():
            if len(positions) > max_occurrences:
                index.masked_seeds += 1
                continue
            index._table[seed] = positions
        return index

    def lookup(self, seed: str) -> list[int]:
        """Reference positions of ``seed`` (empty if absent or masked)."""
        if len(seed) != self.k:
            raise ValueError(f"seed length {len(seed)} != index k {self.k}")
        return self._table.get(seed, [])

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, seed: str) -> bool:
        return seed in self._table
