"""Read-mapping pipeline: indexing, seeding, filtering, alignment, SAM.

The four steps of Figure 1, with GenASM pluggable into the filtering and
alignment slots. This is the substrate the end-to-end pipeline experiment
(Figure 11) runs on.
"""

from repro.mapping.index import KmerIndex
from repro.mapping.pipeline import (
    MappingResult,
    PipelineStats,
    ReadMapper,
    make_genasm_mapper,
)
from repro.mapping.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    SamRecord,
    unmapped_record,
    write_sam,
)
from repro.mapping.seeding import CandidateLocation, candidate_locations, extract_seeds

__all__ = [
    "CandidateLocation",
    "FLAG_REVERSE",
    "FLAG_UNMAPPED",
    "KmerIndex",
    "MappingResult",
    "PipelineStats",
    "ReadMapper",
    "SamRecord",
    "candidate_locations",
    "extract_seeds",
    "make_genasm_mapper",
    "unmapped_record",
    "write_sam",
]
