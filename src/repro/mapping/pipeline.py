"""The four-step read-mapping pipeline (Figure 1) with GenASM inside.

Indexing (offline) -> seeding -> pre-alignment filtering -> read alignment.
The filter and the aligner are pluggable so the Figure 11 experiment can
compare pipeline variants: a DP aligner in the alignment slot (the software
baseline) versus GenASM, with or without a pre-alignment filter.

Both strands are considered: seeding runs on the read and on its reverse
complement, and the better-scoring alignment wins, as in real mappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.aligner import Alignment, GenAsmAligner
from repro.core.prefilter import GenAsmFilter
from repro.core.scoring import ScoringScheme
from repro.mapping.index import KmerIndex
from repro.mapping.sam import FLAG_REVERSE, SamRecord, unmapped_record
from repro.mapping.seeding import candidate_locations
from repro.sequences.genome import Genome


class PairFilter(Protocol):
    """Anything with an ``accepts(reference, read) -> bool`` method."""

    def accepts(self, reference: str, read: str) -> bool: ...


#: An aligner callable: (reference region, read) -> Alignment.
AlignerFn = Callable[[str, str], Alignment]


@dataclass
class PipelineStats:
    """Work counters for each pipeline stage (drives Figure 11's story)."""

    reads: int = 0
    candidates: int = 0
    filtered_out: int = 0
    alignments_run: int = 0
    mapped: int = 0

    @property
    def filter_rate(self) -> float:
        """Fraction of candidates rejected before alignment."""
        if self.candidates == 0:
            return 0.0
        return self.filtered_out / self.candidates


@dataclass(frozen=True)
class MappingResult:
    """Best alignment for one read (or None if unmapped)."""

    record: SamRecord
    alignment: Alignment | None
    candidate_position: int | None
    reverse: bool


@dataclass
class ReadMapper:
    """Configurable mapper hosting GenASM (or a baseline) as its aligner.

    Parameters
    ----------
    genome, index:
        The reference and its k-mer index.
    error_rate:
        Expected divergence; sets the reference-region padding ``k`` (the
        region handed to the aligner spans ``m + k`` characters, Section 6).
    prefilter:
        Optional pre-alignment filter applied to every candidate region.
    aligner:
        Defaults to the paper's GenASM configuration.
    scoring:
        Scheme used to pick the best candidate and report scores.
    """

    genome: Genome
    index: KmerIndex
    error_rate: float = 0.15
    prefilter: PairFilter | None = None
    aligner: AlignerFn | None = None
    scoring: ScoringScheme = field(default_factory=ScoringScheme.bwa_mem)
    max_candidates: int = 8
    stats: PipelineStats = field(default_factory=PipelineStats)

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be within [0, 1)")
        if self.aligner is None:
            genasm = GenAsmAligner()
            self.aligner = genasm.align

    # ------------------------------------------------------------------
    def map_read(self, name: str, read: str) -> MappingResult:
        """Run steps 1-3 for one read and return the best alignment."""
        self.stats.reads += 1
        if len(read) < self.index.k:
            return MappingResult(unmapped_record(name, read), None, None, False)

        best: tuple[int, Alignment, int, bool] | None = None  # score, aln, pos, rev
        for reverse in (False, True):
            oriented = (
                self.genome.alphabet.reverse_complement(read) if reverse else read
            )
            for candidate in candidate_locations(
                oriented, self.index, max_candidates=self.max_candidates
            ):
                region = self._region(candidate.position, len(oriented))
                self.stats.candidates += 1
                if self.prefilter is not None and not self.prefilter.accepts(
                    region, oriented
                ):
                    self.stats.filtered_out += 1
                    continue
                self.stats.alignments_run += 1
                alignment = self.aligner(region, oriented)
                score = alignment.score(self.scoring)
                if best is None or score > best[0]:
                    best = (score, alignment, candidate.position, reverse)

        if best is None:
            return MappingResult(unmapped_record(name, read), None, None, False)

        score, alignment, position, reverse = best
        self.stats.mapped += 1
        record = SamRecord(
            query_name=name,
            flag=FLAG_REVERSE if reverse else 0,
            reference_name=self.genome.name,
            position=position + 1,  # SAM is 1-based
            mapping_quality=min(60, max(0, score)),
            cigar=alignment.cigar,
            sequence=read,
        )
        return MappingResult(record, alignment, position, reverse)

    def map_reads(self, reads: list[tuple[str, str]]) -> list[MappingResult]:
        """Map a batch of (name, sequence) reads."""
        return [self.map_read(name, sequence) for name, sequence in reads]

    # ------------------------------------------------------------------
    def _region(self, position: int, read_length: int) -> str:
        """Reference region of length ``m + k`` at a candidate location."""
        k = max(8, int(read_length * self.error_rate))
        return self.genome.region(position, read_length + k)


def make_genasm_mapper(
    genome: Genome,
    *,
    seed_length: int = 15,
    error_rate: float = 0.15,
    use_prefilter: bool = True,
) -> ReadMapper:
    """Convenience constructor: index the genome, attach GenASM + filter."""
    index = KmerIndex.build(genome, k=seed_length)
    prefilter = None
    if use_prefilter:
        threshold = max(4, int(200 * error_rate))
        prefilter = GenAsmFilter(threshold)
    return ReadMapper(
        genome=genome,
        index=index,
        error_rate=error_rate,
        prefilter=prefilter,
    )
