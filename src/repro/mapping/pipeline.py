"""The four-step read-mapping pipeline (Figure 1) with GenASM inside.

Indexing (offline) -> seeding -> pre-alignment filtering -> read alignment.
The filter and the aligner are pluggable so the Figure 11 experiment can
compare pipeline variants: a DP aligner in the alignment slot (the software
baseline) versus GenASM, with or without a pre-alignment filter.

Both strands are considered: seeding runs on the read and on its reverse
complement, and the better-scoring alignment wins, as in real mappers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from repro.core.aligner import Alignment, GenAsmAligner
from repro.core.prefilter import GenAsmFilter
from repro.core.scoring import ScoringScheme
from repro.mapping.index import KmerIndex
from repro.mapping.sam import FLAG_REVERSE, SamRecord, unmapped_record
from repro.mapping.seeding import candidate_locations
from repro.sequences.alphabet import Alphabet
from repro.sequences.genome import Genome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.registry import AlignmentEngine


class PairFilter(Protocol):
    """Anything with an ``accepts(reference, read) -> bool`` method.

    Filters may additionally expose ``accepts_batch(pairs) -> list[bool]``
    (as :class:`GenAsmFilter` does); the mapper detects and prefers it so a
    read's candidates are filtered in one batched scan.
    """

    def accepts(self, reference: str, read: str) -> bool: ...


#: An aligner callable: (reference region, read) -> Alignment.
AlignerFn = Callable[[str, str], Alignment]

#: A batch aligner callable: [(region, read), ...] -> [Alignment, ...].
BatchAlignerFn = Callable[[Sequence[tuple[str, str]]], "list[Alignment]"]


@dataclass
class PipelineStats:
    """Work counters for each pipeline stage (drives Figure 11's story)."""

    reads: int = 0
    candidates: int = 0
    filtered_out: int = 0
    alignments_run: int = 0
    mapped: int = 0

    @property
    def filter_rate(self) -> float:
        """Fraction of candidates rejected before alignment."""
        if self.candidates == 0:
            return 0.0
        return self.filtered_out / self.candidates

    def merge(self, other: "PipelineStats") -> None:
        """Fold another counter set into this one (sharded-chunk deltas)."""
        self.reads += other.reads
        self.candidates += other.candidates
        self.filtered_out += other.filtered_out
        self.alignments_run += other.alignments_run
        self.mapped += other.mapped


#: Tokens distinguishing mapper generations across sharded pool reuse.
_SPEC_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class MapperSpec:
    """Picklable recipe rebuilding an equivalent :class:`ReadMapper`.

    Mapper-level sharding sends whole reads — seeding, filtering, and
    alignment — to pool workers, so each worker needs its own mapper over
    the same reference. Shipping the live mapper per call would re-pickle
    the genome and k-mer index every time (and drag along unpicklable state
    like a sharded engine's pool); the spec instead carries just the
    construction ingredients and is pinned into each worker once, at pool
    start. Only the default GenASM aligner and filter are representable —
    mappers with custom callables fall back to in-process mapping.
    """

    genome: Genome
    index: KmerIndex | None
    error_rate: float
    filter_threshold: int | None
    filter_alphabet: Alphabet | None
    scoring: ScoringScheme
    max_candidates: int
    seed_length: int | None = None
    index_max_occurrences: int = 128

    @property
    def ipc_cheap(self) -> bool:
        """True when pickling this spec ships paths, not sequence data.

        Holds for specs over a mmap-backed :class:`GenomeShard` whose index
        was elided (``index=None`` + ``seed_length``): the worker rebuilds
        the k-mer index deterministically from the shard, so the spec can be
        shipped per chunk through a shared pool instead of being pinned into
        a dedicated one.
        """
        return self.index is None and getattr(self.genome, "ipc_cheap", False)

    def build(self, engine: "AlignmentEngine | str | None") -> "ReadMapper":
        """Construct the worker-side mapper over ``engine``."""
        index = self.index
        if index is None:
            if self.seed_length is None:
                raise ValueError("MapperSpec without index needs seed_length")
            index = KmerIndex.build(
                self.genome,
                k=self.seed_length,
                max_occurrences=self.index_max_occurrences,
            )
        prefilter = None
        if self.filter_threshold is not None:
            prefilter = GenAsmFilter(
                self.filter_threshold,
                alphabet=self.filter_alphabet,
                engine=engine,
            )
        return ReadMapper(
            genome=self.genome,
            index=index,
            error_rate=self.error_rate,
            prefilter=prefilter,
            scoring=self.scoring,
            max_candidates=self.max_candidates,
            engine=engine,
        )


@dataclass(frozen=True)
class MappingResult:
    """Best alignment for one read (or None if unmapped)."""

    record: SamRecord
    alignment: Alignment | None
    candidate_position: int | None
    reverse: bool


@dataclass
class ReadMapper:
    """Configurable mapper hosting GenASM (or a baseline) as its aligner.

    Parameters
    ----------
    genome, index:
        The reference and its k-mer index.
    error_rate:
        Expected divergence; sets the reference-region padding ``k`` (the
        region handed to the aligner spans ``m + k`` characters, Section 6).
    prefilter:
        Optional pre-alignment filter applied to every candidate region.
    aligner:
        Defaults to the paper's GenASM configuration.
    batch_aligner:
        Optional batch entry point matching ``aligner``; filled in
        automatically when ``aligner`` defaults to GenASM, so a read's
        surviving candidates are aligned as one batch.
    scoring:
        Scheme used to pick the best candidate and report scores.
    engine:
        Compute backend handed to the default GenASM aligner (ignored when
        a custom ``aligner`` is supplied).
    """

    genome: Genome
    index: KmerIndex
    error_rate: float = 0.15
    prefilter: PairFilter | None = None
    aligner: AlignerFn | None = None
    batch_aligner: BatchAlignerFn | None = None
    scoring: ScoringScheme = field(default_factory=ScoringScheme.bwa_mem)
    max_candidates: int = 8
    stats: PipelineStats = field(default_factory=PipelineStats)
    engine: "AlignmentEngine | str | None" = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be within [0, 1)")
        # Shardable only when BOTH aligner slots are the defaults a worker
        # can rebuild; a custom batch_aligner alone would be silently
        # replaced worker-side otherwise.
        self._default_aligner = (
            self.aligner is None and self.batch_aligner is None
        )
        self._shard_token: str | None = None
        if self.aligner is None:
            genasm = GenAsmAligner(engine=self.engine)
            self.aligner = genasm.align
            if self.batch_aligner is None:
                self.batch_aligner = genasm.align_batch

    # ------------------------------------------------------------------
    def reference_sequences(self) -> list[tuple[str, int]]:
        """``(name, length)`` pairs this mapper can place reads on."""
        return [(self.genome.name, len(self.genome))]

    def map_read(self, name: str, read: str) -> MappingResult:
        """Run steps 1-3 for one read and return the best alignment."""
        return self.map_reads([(name, read)])[0]

    def map_reads(self, reads: Sequence[tuple[str, str]]) -> list[MappingResult]:
        """Map a batch of (name, sequence) reads with cross-read batching.

        Candidate regions from both strands of *every* read are collected
        first, then filtered and aligned as single cross-read batches — the
        same amortization the serving layer performs across concurrent
        clients, applied to one standalone call. Results are identical to
        mapping each read alone (candidates are independent pairs), in
        input order.
        """
        self.stats.reads += len(reads)

        # Per read: (reverse, oriented read, candidate position, region).
        per_read: list[list[tuple[bool, str, int, str]]] = []
        for _, read in reads:
            if len(read) < self.index.k:
                per_read.append([])
                continue
            candidates: list[tuple[bool, str, int, str]] = []
            for reverse in (False, True):
                oriented = (
                    self.genome.alphabet.reverse_complement(read)
                    if reverse
                    else read
                )
                for candidate in candidate_locations(
                    oriented, self.index, max_candidates=self.max_candidates
                ):
                    region = self._region(candidate.position, len(oriented))
                    candidates.append(
                        (reverse, oriented, candidate.position, region)
                    )
            self.stats.candidates += len(candidates)
            per_read.append(candidates)

        flat = [candidate for candidates in per_read for candidate in candidates]
        if self.prefilter is not None and flat:
            verdicts = iter(
                self._filter_batch(
                    [(region, oriented) for _, oriented, _, region in flat]
                )
            )
            per_read_survivors = [
                [c for c in candidates if next(verdicts)]
                for candidates in per_read
            ]
            survivors = [
                candidate
                for candidates in per_read_survivors
                for candidate in candidates
            ]
            self.stats.filtered_out += len(flat) - len(survivors)
        else:
            survivors = flat
            per_read_survivors = per_read

        self.stats.alignments_run += len(survivors)
        alignments = iter(
            self._align_batch(
                [(region, oriented) for _, oriented, _, region in survivors]
            )
        )

        results: list[MappingResult] = []
        for (name, read), read_survivors in zip(reads, per_read_survivors):
            # score, alignment, position, reverse
            best: tuple[int, Alignment, int, bool] | None = None
            for reverse, _, position, _ in read_survivors:
                alignment = next(alignments)
                score = alignment.score(self.scoring)
                if best is None or score > best[0]:
                    best = (score, alignment, position, reverse)
            if best is None:
                results.append(
                    MappingResult(unmapped_record(name, read), None, None, False)
                )
                continue
            score, alignment, position, reverse = best
            self.stats.mapped += 1
            record = SamRecord(
                query_name=name,
                flag=FLAG_REVERSE if reverse else 0,
                reference_name=self.genome.name,
                position=position + 1,  # SAM is 1-based
                mapping_quality=min(60, max(0, score)),
                cigar=alignment.cigar,
                sequence=read,
            )
            results.append(MappingResult(record, alignment, position, reverse))
        return results

    def shard_spec(self) -> MapperSpec | None:
        """The :class:`MapperSpec` for this mapper, or None if unshardable.

        Only the default GenASM aligner configuration and a
        :class:`GenAsmFilter` (or no filter) can be rebuilt in a worker;
        mappers carrying custom callables return None and map in-process.
        """
        if not self._default_aligner:
            return None
        if self.prefilter is not None and type(self.prefilter) is not GenAsmFilter:
            return None
        # A mmap-backed genome makes the spec cheap to pickle; elide the
        # index and let each worker rebuild it (deterministic) rather than
        # shipping the k-mer table across IPC.
        elide_index = getattr(self.genome, "ipc_cheap", False)
        return MapperSpec(
            genome=self.genome,
            index=None if elide_index else self.index,
            seed_length=self.index.k if elide_index else None,
            index_max_occurrences=self.index.max_occurrences,
            error_rate=self.error_rate,
            filter_threshold=(
                self.prefilter.threshold if self.prefilter is not None else None
            ),
            filter_alphabet=(
                self.prefilter.alphabet if self.prefilter is not None else None
            ),
            scoring=self.scoring,
            max_candidates=self.max_candidates,
        )

    def map_reads_batch(
        self, reads: Sequence[tuple[str, str]]
    ) -> list[MappingResult]:
        """Map reads, sharding whole-read work across a process pool.

        When this mapper's engine exposes ``shard_map`` (the ``"sharded"``
        backend), the read list is chunked and each chunk runs the *entire*
        pipeline — seeding, filtering, alignment — inside a pool worker
        whose mapper was pinned at pool start, so mapping throughput scales
        with workers instead of only the per-call engine work. Falls back
        to the in-process :meth:`map_reads` for small batches, unshardable
        mappers (custom aligner/filter callables), or in-process engines.
        Results and :attr:`stats` deltas are identical either way, in input
        order.
        """
        reads = list(reads)
        from repro.engine.registry import get_engine

        engine = get_engine(self.engine)
        shard_map = getattr(engine, "shard_map", None)
        if shard_map is None or len(reads) < getattr(engine, "min_map_batch", 2):
            return self.map_reads(reads)
        spec = self.shard_spec()
        if spec is None:
            return self.map_reads(reads)
        if self._shard_token is None:
            self._shard_token = f"mapper-{next(_SPEC_TOKENS)}"
        results, stats = shard_map(spec, self._shard_token, reads)
        self.stats.merge(stats)
        return results

    async def map_reads_concurrent(
        self,
        reads: Sequence[tuple[str, str]],
        *,
        batch_size: int = 32,
        flush_interval: float = 0.002,
        max_pending: int = 256,
    ) -> list[MappingResult]:
        """Map reads as concurrent requests through an alignment server.

        Each read becomes an independent client coroutine against a
        temporary :class:`~repro.serving.server.AlignmentServer` bound to
        this mapper; the server re-batches whatever arrives within one
        flush window through :meth:`map_reads`, so engine dispatch is
        amortized across however many reads are in flight — the same path
        a long-lived service shares between unrelated clients. Results
        come back in input order.
        """
        import asyncio

        from repro.serving.server import AlignmentServer

        async with AlignmentServer(
            mapper=self,
            batch_size=batch_size,
            flush_interval=flush_interval,
            max_pending=max_pending,
        ) as server:
            return list(
                await asyncio.gather(
                    *(server.map_read(name, read) for name, read in reads)
                )
            )

    # ------------------------------------------------------------------
    def _filter_batch(self, pairs: list[tuple[str, str]]) -> list[bool]:
        """Filter candidate pairs, batching when the filter supports it."""
        accepts_batch = getattr(self.prefilter, "accepts_batch", None)
        if accepts_batch is not None:
            return accepts_batch(pairs)
        return [self.prefilter.accepts(region, read) for region, read in pairs]

    def _align_batch(self, pairs: list[tuple[str, str]]) -> list[Alignment]:
        """Align surviving pairs, batching when a batch aligner exists."""
        if self.batch_aligner is not None and len(pairs) > 1:
            return self.batch_aligner(pairs)
        return [self.aligner(region, read) for region, read in pairs]

    def _region(self, position: int, read_length: int) -> str:
        """Reference region of length ``m + k`` at a candidate location."""
        k = max(8, int(read_length * self.error_rate))
        return self.genome.region(position, read_length + k)


def make_genasm_mapper(
    genome: Genome,
    *,
    seed_length: int = 15,
    error_rate: float = 0.15,
    use_prefilter: bool = True,
    engine: "AlignmentEngine | str | None" = None,
) -> ReadMapper:
    """Convenience constructor: index the genome, attach GenASM + filter."""
    index = KmerIndex.build(genome, k=seed_length)
    prefilter = None
    if use_prefilter:
        threshold = max(4, int(200 * error_rate))
        prefilter = GenAsmFilter(threshold, engine=engine)
    return ReadMapper(
        genome=genome,
        index=index,
        error_rate=error_rate,
        prefilter=prefilter,
        engine=engine,
    )
