"""Shouji pre-alignment filter (Alser et al. 2019) — the Section 10.3 baseline.

Shouji *estimates* the edit distance between a read and a candidate
reference region using a "sliding search window" over the neighborhood map:

1. Build 2E+1 Hamming masks, one per diagonal shift in [-E, +E]; bit i of
   mask_e is 0 when ``read[i] == reference[i+e]``.
2. Slide a 4-bit window across the bit positions; in each window, take the
   diagonal whose 4 bits contain the most zeros (the best local run of
   matches) and copy its zeros into the common subsequence vector.
3. The number of remaining 1s estimates the edit count; the pair passes if
   the estimate is at most the threshold.

Because step 2 greedily accepts matches from *any* diagonal without charging
for diagonal switches, Shouji systematically underestimates the distance —
the source of its 4%/17% false-accept rates versus GenASM's near-zero
(Section 10.3). Underestimation also guarantees its 0% false-reject rate.
"""

from __future__ import annotations

from dataclasses import dataclass

_WINDOW = 4  # Shouji's published sliding-window width


@dataclass(frozen=True)
class ShoujiDecision:
    """Filter outcome: the estimate and the accept decision."""

    accepted: bool
    estimated_edits: int


class ShoujiFilter:
    """Sliding-window pre-alignment filter with threshold ``E``."""

    def __init__(self, threshold: int) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def decide(self, reference: str, read: str) -> ShoujiDecision:
        """Estimate the edit count and decide accept/reject."""
        estimate = self.estimate_edits(reference, read)
        return ShoujiDecision(
            accepted=estimate <= self.threshold, estimated_edits=estimate
        )

    def accepts(self, reference: str, read: str) -> bool:
        return self.decide(reference, read).accepted

    def estimate_edits(self, reference: str, read: str) -> int:
        """The sliding-window edit estimate (step 2 above).

        The window slides one position at a time (overlapping windows), as
        in the published design: at each offset the diagonal with the most
        zeros in the window donates its zeros to the common subsequence
        vector. Overlap is what lets the estimate absorb diagonal switches
        and keeps the false-reject rate at zero.
        """
        m = len(read)
        if m == 0:
            return 0
        masks = self._hamming_masks(reference, read)

        common = [1] * m  # 1 = unexplained position
        last_start = max(0, m - _WINDOW)
        for start in range(last_start + 1):
            end = min(start + _WINDOW, m)
            best_zeros = -1
            best_mask: list[int] | None = None
            for mask in masks:
                zeros = sum(1 for i in range(start, end) if mask[i] == 0)
                if zeros > best_zeros:
                    best_zeros = zeros
                    best_mask = mask
            if best_mask is not None:
                for i in range(start, end):
                    if best_mask[i] == 0:
                        common[i] = 0
        return sum(common)

    def _hamming_masks(self, reference: str, read: str) -> list[list[int]]:
        """One mask per diagonal shift in [-E, +E]; 0 marks a base match."""
        m = len(read)
        n = len(reference)
        masks: list[list[int]] = []
        for shift in range(-self.threshold, self.threshold + 1):
            mask = [1] * m
            for i in range(m):
                j = i + shift
                if 0 <= j < n and read[i] == reference[j]:
                    mask[i] = 0
            masks.append(mask)
        return masks
