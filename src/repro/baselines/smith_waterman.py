"""Smith-Waterman local alignment (Smith & Waterman 1981).

The expensive DP kernel that GenASM replaces (Section 2.2) and the algorithm
underlying the GACT accelerator the paper compares against (Section 10.2).
Linear gap penalties; see :mod:`repro.baselines.gotoh` for the affine-gap
variant used in the accuracy analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cigar import Cigar


@dataclass(frozen=True)
class SwScoring:
    """Linear-gap local alignment scores."""

    match: int = 2
    mismatch: int = -1
    gap: int = -2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch >= 0 or self.gap >= 0:
            raise ValueError("mismatch and gap penalties must be negative")


@dataclass(frozen=True)
class SwAlignment:
    """A local alignment: transcript plus its anchor coordinates."""

    cigar: Cigar
    score: int
    text_start: int
    text_end: int
    query_start: int
    query_end: int


def smith_waterman(
    text: str, query: str, scoring: SwScoring | None = None
) -> SwAlignment:
    """Best-scoring local alignment of ``query`` within ``text``.

    Returns a zero-length alignment when every cell scores <= 0 (completely
    dissimilar sequences).
    """
    if scoring is None:
        scoring = SwScoring()
    n, m = len(text), len(query)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    best = 0
    best_pos = (0, 0)
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        ct = text[i - 1]
        for j in range(1, m + 1):
            diag = prev[j - 1] + (
                scoring.match if ct == query[j - 1] else scoring.mismatch
            )
            up = prev[j] + scoring.gap
            left = row[j - 1] + scoring.gap
            score = max(0, diag, up, left)
            row[j] = score
            if score > best:
                best = score
                best_pos = (i, j)

    ops: list[str] = []
    i, j = best_pos
    end_i, end_j = i, j
    while i > 0 and j > 0 and dp[i][j] > 0:
        here = dp[i][j]
        is_match = text[i - 1] == query[j - 1]
        diag = dp[i - 1][j - 1] + (scoring.match if is_match else scoring.mismatch)
        if here == diag:
            ops.append("M" if is_match else "S")
            i, j = i - 1, j - 1
        elif here == dp[i - 1][j] + scoring.gap:
            ops.append("D")
            i -= 1
        else:
            ops.append("I")
            j -= 1
    return SwAlignment(
        cigar=Cigar("".join(reversed(ops))),
        score=best,
        text_start=i,
        text_end=end_i,
        query_start=j,
        query_end=end_j,
    )
