"""Baseline algorithms the paper compares GenASM against.

* Dynamic-programming aligners: Needleman-Wunsch (global), Smith-Waterman
  (local), Gotoh (affine-gap — the kernel inside BWA-MEM/Minimap2).
* Myers' bit-vector algorithm — the engine of the Edlib baseline.
* Ukkonen's banded algorithm — fast exact ground truth.
* Pre-alignment filters: Shouji (the Section 10.3 baseline) and SHD.
* GACT — Darwin's tiled aligner (the Figures 12-13 baseline).
"""

from repro.baselines.gact import GactAlignment, gact_align
from repro.baselines.gotoh import GotohAlignment, gotoh_global, gotoh_score
from repro.baselines.myers import (
    myers_global,
    myers_global_bounded,
    myers_semiglobal,
)
from repro.baselines.needleman_wunsch import (
    NwAlignment,
    edit_distance_dp,
    needleman_wunsch,
    semiglobal_distance_dp,
)
from repro.baselines.shd import ShdDecision, ShdFilter
from repro.baselines.shouji import ShoujiDecision, ShoujiFilter
from repro.baselines.smith_waterman import SwAlignment, SwScoring, smith_waterman
from repro.baselines.ukkonen import banded_edit_distance, edit_distance_doubling

__all__ = [
    "GactAlignment",
    "GotohAlignment",
    "NwAlignment",
    "ShdDecision",
    "ShdFilter",
    "ShoujiDecision",
    "ShoujiFilter",
    "SwAlignment",
    "SwScoring",
    "banded_edit_distance",
    "edit_distance_doubling",
    "edit_distance_dp",
    "gact_align",
    "gotoh_global",
    "gotoh_score",
    "myers_global",
    "myers_global_bounded",
    "myers_semiglobal",
    "needleman_wunsch",
    "semiglobal_distance_dp",
    "smith_waterman",
]
