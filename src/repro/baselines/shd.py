"""Shifted Hamming Distance pre-alignment filter (Xin et al. 2015).

SHD is the SIMD-based filter the paper lists among prior pre-alignment
approaches (Section 12). It ANDs the Hamming masks of all diagonal shifts in
[-E, +E] after *amending* each mask — flipping short runs of 0s (shorter
than 3) to 1s, since isolated 1-2 base matches between mismatches are almost
never part of a real alignment. The count of 1s in the ANDed vector, divided
among edits, estimates whether the pair can align within the threshold.

Like Shouji, SHD underestimates (0% false rejects, non-zero false accepts);
its estimates are cruder, which is why later filters superseded it.
"""

from __future__ import annotations

from dataclasses import dataclass

_MIN_RUN = 3  # zero-runs shorter than this are amended away


@dataclass(frozen=True)
class ShdDecision:
    """Filter outcome: the mismatch estimate and the accept decision."""

    accepted: bool
    estimated_edits: int


class ShdFilter:
    """Shifted Hamming Distance filter with threshold ``E``."""

    def __init__(self, threshold: int) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def decide(self, reference: str, read: str) -> ShdDecision:
        estimate = self.estimate_edits(reference, read)
        return ShdDecision(
            accepted=estimate <= self.threshold, estimated_edits=estimate
        )

    def accepts(self, reference: str, read: str) -> bool:
        return self.decide(reference, read).accepted

    def estimate_edits(self, reference: str, read: str) -> int:
        """1s remaining after amending and ANDing all shift masks.

        Each maximal run of 1s is counted once: a single edit (especially an
        indel) smears into a run of mismatches on any fixed diagonal, so
        counting runs rather than bits keeps the estimate a lower bound.
        """
        m = len(read)
        if m == 0:
            return 0
        combined = [1] * m
        for shift in range(-self.threshold, self.threshold + 1):
            mask = self._amend(self._hamming_mask(reference, read, shift))
            for i in range(m):
                combined[i] &= mask[i]
        # Count maximal 1-runs.
        runs = 0
        in_run = False
        for bit in combined:
            if bit and not in_run:
                runs += 1
            in_run = bool(bit)
        return runs

    @staticmethod
    def _hamming_mask(reference: str, read: str, shift: int) -> list[int]:
        n = len(reference)
        mask = [1] * len(read)
        for i in range(len(read)):
            j = i + shift
            if 0 <= j < n and read[i] == reference[j]:
                mask[i] = 0
        return mask

    @staticmethod
    def _amend(mask: list[int]) -> list[int]:
        """Flip interior zero-runs shorter than ``_MIN_RUN`` to ones."""
        amended = list(mask)
        i = 0
        m = len(mask)
        while i < m:
            if amended[i] == 0:
                j = i
                while j < m and amended[j] == 0:
                    j += 1
                interior = i > 0 and j < m
                if interior and (j - i) < _MIN_RUN:
                    for t in range(i, j):
                        amended[t] = 1
                i = j
            else:
                i += 1
        return amended
