"""Ukkonen's banded edit-distance algorithm (Ukkonen 1985).

O(k · min(n, m)) exact global edit distance, computed over a diagonal band
of half-width k with budget doubling. The paper cites Ukkonen among the
classic ASM algorithms (Section 2.2 references); here it serves as the fast
exact ground truth for filter-accuracy experiments and as an independent
check on both the DP and Myers implementations.
"""

from __future__ import annotations

_INF = float("inf")


def banded_edit_distance(a: str, b: str, k: int) -> int | None:
    """Global edit distance if <= ``k``, else None.

    Computes only the cells within ``k`` of the main diagonal: any alignment
    with distance <= k stays inside that band.
    """
    if k < 0:
        raise ValueError("band half-width k must be non-negative")
    n, m = len(a), len(b)
    if abs(n - m) > k:
        return None  # length difference alone exceeds the budget
    if n == 0:
        return m if m <= k else None
    if m == 0:
        return n if n <= k else None

    # previous[j] = distance between a[:i] and b[:j], for j in the band.
    previous: dict[int, float] = {}
    for j in range(0, min(m, k) + 1):
        previous[j] = j
    for i in range(1, n + 1):
        low = max(0, i - k)
        high = min(m, i + k)
        current: dict[int, float] = {}
        for j in range(low, high + 1):
            if j == 0:
                current[j] = i
                continue
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = previous.get(j - 1, _INF) + cost
            up = previous.get(j, _INF) + 1
            left = current.get(j - 1, _INF) + 1
            best = min(best, up, left)
            current[j] = best
        previous = current
    result = previous.get(m, _INF)
    return int(result) if result <= k else None


def edit_distance_doubling(a: str, b: str, *, initial: int = 4) -> int:
    """Exact global edit distance via band doubling.

    Runs :func:`banded_edit_distance` with k = initial, 2*initial, ... until
    the band admits the true distance. Total work is within a small constant
    factor of the final band's.
    """
    if initial <= 0:
        raise ValueError("initial band must be positive")
    upper = max(len(a), len(b))
    k = min(initial, upper)
    while True:
        result = banded_edit_distance(a, b, k)
        if result is not None:
            return result
        if k >= upper:
            # The distance can never exceed max(n, m); reaching this point
            # with no result indicates a logic error.
            raise AssertionError("band covers worst case but found no distance")
        k = min(k * 2, upper)
