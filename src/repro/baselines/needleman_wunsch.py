"""Needleman-Wunsch global alignment (Needleman & Wunsch 1970).

The paper cites NW as the classic quadratic dynamic-programming ASM
formulation (Section 2.2) and uses Edlib's "default global Needleman-Wunsch
mode" as the edit-distance baseline (Section 9). This implementation provides
both the unit-cost edit-distance DP (ground truth for every property test in
the suite) and a linear-gap scored variant with traceback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cigar import Cigar


def edit_distance_dp(a: str, b: str) -> int:
    """Exact global (Levenshtein) edit distance, O(|a|·|b|) time, O(|b|) space."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,  # deletion (consume a)
                current[j - 1] + 1,  # insertion (consume b)
                previous[j - 1] + cost,  # match/substitution
            )
        previous = current
    return previous[-1]


def semiglobal_distance_dp(text: str, pattern: str) -> int:
    """Minimum edit distance of ``pattern`` against any infix of ``text``.

    This is the quantity Bitap computes (free leading and trailing text);
    used to validate :func:`repro.core.bitap.bitap_edit_distance`.
    """
    if not pattern:
        return 0
    # Rows: pattern; columns: text. Top row 0 (free leading text).
    previous = [0] * (len(text) + 1)
    best = len(pattern)
    for i, cp in enumerate(pattern, start=1):
        current = [i] + [0] * len(text)
        for j, ct in enumerate(text, start=1):
            cost = 0 if cp == ct else 1
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
        previous = current
    best = min(previous)  # free trailing text
    return best


@dataclass(frozen=True)
class NwAlignment:
    """Global alignment result with a full transcript."""

    cigar: Cigar
    distance: int


def needleman_wunsch(a: str, b: str) -> NwAlignment:
    """Unit-cost global alignment with traceback.

    ``a`` plays the reference/text role and ``b`` the query/pattern role, so
    the transcript's D consumes ``a`` and I consumes ``b`` — the same
    convention as GenASM's CIGAR.
    """
    n, m = len(a), len(b)
    # dp[i][j]: distance between a[:i] and b[:j].
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        row = dp[i]
        prev = dp[i - 1]
        ca = a[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ca == b[j - 1] else 1
            row[j] = min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost)

    ops: list[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        here = dp[i][j]
        if i > 0 and j > 0:
            diag_cost = 0 if a[i - 1] == b[j - 1] else 1
            if here == dp[i - 1][j - 1] + diag_cost:
                ops.append("M" if diag_cost == 0 else "S")
                i, j = i - 1, j - 1
                continue
        if i > 0 and here == dp[i - 1][j] + 1:
            ops.append("D")
            i -= 1
            continue
        ops.append("I")
        j -= 1
    cigar = Cigar("".join(reversed(ops)))
    return NwAlignment(cigar=cigar, distance=dp[n][m])
