"""GACT tiled alignment (Turakhia et al., Darwin, ASPLOS 2018).

GACT is the hardware alignment baseline of Section 10.2 (Figures 12-13).
Its key idea — shared with GenASM's divide-and-conquer — is tiling: run the
quadratic DP only on a T x T tile, trace back within the tile, commit all
but an overlap O of the traced prefix, and slide the tile forward. The
difference, which the paper credits for GenASM's 3.9x/7.4x advantage, is the
per-tile kernel: GACT fills a DP score matrix with traceback pointers, while
GenASM performs bitwise Bitap steps.

This functional model reproduces GACT's algorithmic behaviour so the two
tiled schemes can be compared for accuracy and (via the device models in
:mod:`repro.hardware.baseline_devices`) throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cigar import Cigar
from repro.baselines.smith_waterman import SwScoring

#: Darwin's published configuration for its long-read aligner.
DEFAULT_TILE = 320
DEFAULT_TILE_OVERLAP = 128


@dataclass(frozen=True)
class GactAlignment:
    """Tiled alignment result."""

    cigar: Cigar
    score: int
    text_consumed: int


def gact_align(
    text: str,
    query: str,
    *,
    tile_size: int = DEFAULT_TILE,
    overlap: int = DEFAULT_TILE_OVERLAP,
    scoring: SwScoring | None = None,
) -> GactAlignment:
    """Align ``query`` against ``text`` with GACT tiling.

    Both sequences are consumed greedily from their starts, committing
    ``tile_size - overlap`` characters per tile, mirroring GACT's forward
    pass with left-anchored tiles.
    """
    if tile_size <= 0:
        raise ValueError("tile_size must be positive")
    if not 0 <= overlap < tile_size:
        raise ValueError("overlap must satisfy 0 <= O < T")
    if scoring is None:
        scoring = SwScoring()

    cur_text = 0
    cur_query = 0
    total_score = 0
    parts: list[str] = []
    commit_limit = tile_size - overlap

    while cur_query < len(query):
        tile_text = text[cur_text : cur_text + tile_size]
        tile_query = query[cur_query : cur_query + tile_size]
        if not tile_text:
            parts.append("I" * (len(query) - cur_query))
            cur_query = len(query)
            break
        ops, score = _tile_global(tile_text, tile_query, scoring)
        committed, t_used, q_used = _commit(ops, commit_limit)
        if t_used == 0 and q_used == 0:
            raise RuntimeError("GACT tile made no progress")
        parts.append(committed)
        total_score += score  # tile-local score; approximate, as in hardware
        cur_text += t_used
        cur_query += q_used

    cigar = Cigar("".join(parts))
    return GactAlignment(cigar=cigar, score=total_score, text_consumed=cur_text)


def _tile_global(text: str, query: str, scoring: SwScoring) -> tuple[str, int]:
    """Left-anchored global DP on one tile; returns (ops, score).

    Semi-global at the far edge: the alignment ends wherever the query tile
    ends, taking the best-scoring end column, so the tile boundary does not
    force spurious end gaps.
    """
    n, m = len(text), len(query)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        dp[i][0] = dp[i - 1][0] + scoring.gap
    for j in range(1, m + 1):
        dp[0][j] = dp[0][j - 1] + scoring.gap
    for i in range(1, n + 1):
        ct = text[i - 1]
        row, prev = dp[i], dp[i - 1]
        for j in range(1, m + 1):
            diag = prev[j - 1] + (
                scoring.match if ct == query[j - 1] else scoring.mismatch
            )
            row[j] = max(diag, prev[j] + scoring.gap, row[j - 1] + scoring.gap)

    # Best end cell in the last query column (query tile fully consumed).
    best_i = max(range(n + 1), key=lambda i: dp[i][m])
    ops: list[str] = []
    i, j = best_i, m
    while i > 0 or j > 0:
        here = dp[i][j]
        if i > 0 and j > 0:
            is_match = text[i - 1] == query[j - 1]
            diag = dp[i - 1][j - 1] + (
                scoring.match if is_match else scoring.mismatch
            )
            if here == diag:
                ops.append("M" if is_match else "S")
                i, j = i - 1, j - 1
                continue
        if i > 0 and here == dp[i - 1][j] + scoring.gap:
            ops.append("D")
            i -= 1
            continue
        ops.append("I")
        j -= 1
    return "".join(reversed(ops)), dp[best_i][m]


def _commit(ops: str, limit: int) -> tuple[str, int, int]:
    """Commit leading ops until ``limit`` of either sequence is consumed.

    Returns (committed ops, text consumed, query consumed). If the tile's
    ops run out first (short tail tiles), everything is committed.
    """
    t_used = q_used = 0
    committed: list[str] = []
    for op in ops:
        if t_used >= limit or q_used >= limit:
            break
        committed.append(op)
        if op in "MSD":
            t_used += 1
        if op in "MSI":
            q_used += 1
    return "".join(committed), t_used, q_used
