"""Myers' bit-vector edit distance (Myers 1999) — the Edlib substitute.

Edlib, the software baseline of Section 10.4, "uses the Myers' bit-vector
algorithm to find the edit distance between two sequences"; the paper runs
its default global Needleman-Wunsch mode. This module implements that
algorithm in the Hyyrö/Edlib difference-encoded formulation on Python's
arbitrary-precision integers (one "block" spanning the whole pattern), with
both the global (NW) and the infix/semi-global (HW) modes.

Being the same algorithm Edlib implements, it preserves the baseline's
defining property for Figure 14: runtime quadratic in sequence length,
versus GenASM's windowed linear scaling.
"""

from __future__ import annotations

from repro.sequences.alphabet import DNA, Alphabet


def _peq(pattern: str, alphabet: Alphabet) -> dict[str, int]:
    """Per-symbol match masks: bit i set iff ``pattern[i] == symbol``."""
    masks = {symbol: 0 for symbol in alphabet.symbols}
    for i, ch in enumerate(pattern):
        if ch in masks:
            masks[ch] |= 1 << i
        elif ch != alphabet.wildcard:
            raise ValueError(f"pattern symbol {ch!r} not in alphabet")
    if alphabet.wildcard is not None:
        masks[alphabet.wildcard] = 0
    return masks


def myers_global(text: str, pattern: str, *, alphabet: Alphabet = DNA) -> int:
    """Global (NW) edit distance via Myers' algorithm.

    The horizontal input to the top row is +1 per text character (the
    boundary condition DP[0][j] = j), delivered by ORing 1 into the shifted
    Ph word exactly as Edlib's ``calculateBlock`` does for positive hin.
    """
    if not pattern:
        return len(text)
    if not text:
        return len(pattern)
    m = len(pattern)
    mask = (1 << m) - 1
    msb = 1 << (m - 1)
    peq = _peq(pattern, alphabet)

    pv = mask  # vertical positive deltas: all +1 initially (DP[i][0] = i)
    mv = 0
    score = m
    for ch in text:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & msb:
            score += 1
        elif mh & msb:
            score -= 1
        ph = ((ph << 1) | 1) & mask  # hin = +1 enters the top row
        mh = (mh << 1) & mask
        pv = (mh | (~(xv | ph) & mask)) & mask
        mv = ph & xv
    return score


def myers_semiglobal(text: str, pattern: str, *, alphabet: Alphabet = DNA) -> int:
    """Infix (HW) edit distance: best match of ``pattern`` anywhere in ``text``.

    The top row stays 0 (hin = 0), and the minimum end-column score is
    returned. Matches Bitap's semantics and is used to cross-validate
    :func:`repro.core.bitap.bitap_edit_distance` at scale.
    """
    if not pattern:
        return 0
    if not text:
        return len(pattern)
    m = len(pattern)
    mask = (1 << m) - 1
    msb = 1 << (m - 1)
    peq = _peq(pattern, alphabet)

    pv = mask
    mv = 0
    score = m
    best = score
    for ch in text:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & msb:
            score += 1
        elif mh & msb:
            score -= 1
        ph = (ph << 1) & mask  # hin = 0: top row is free
        mh = (mh << 1) & mask
        pv = (mh | (~(xv | ph) & mask)) & mask
        mv = ph & xv
        if score < best:
            best = score
    return best


def myers_global_bounded(
    text: str, pattern: str, k: int, *, alphabet: Alphabet = DNA
) -> int | None:
    """Global distance if it is <= ``k``, else None.

    Convenience for filter ground-truth computation where only the
    thresholded decision matters.
    """
    distance = myers_global(text, pattern, alphabet=alphabet)
    return distance if distance <= k else None
