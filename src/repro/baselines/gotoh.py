"""Gotoh affine-gap global alignment (Gotoh 1982).

The alignment kernels of BWA-MEM and Minimap2 — the software baselines of
Section 10.2 — are affine-gap dynamic programming. This implementation is
the optimal-score reference the accuracy analysis compares GenASM's
traceback output against: "For 96.6% of the short reads, GenASM finds an
alignment whose score is equal to the score of the alignment reported by
BWA-MEM."

Scores follow :class:`repro.core.scoring.ScoringScheme`: a gap of length L
contributes ``gap_open + L * gap_extend`` (both non-positive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cigar import Cigar
from repro.core.scoring import ScoringScheme

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class GotohAlignment:
    """Affine-gap global alignment with transcript and optimal score."""

    cigar: Cigar
    score: int


def gotoh_global(
    text: str, query: str, scheme: ScoringScheme | None = None
) -> GotohAlignment:
    """Optimal global alignment of ``query`` against ``text``.

    Uses the three-state Gotoh recurrence: H (match/substitute), E (gap in
    the query — deletion from the text's perspective), F (gap in the text —
    insertion). Traceback follows explicit state provenance, so ties are
    broken deterministically (H over E over F).
    """
    if scheme is None:
        scheme = ScoringScheme.bwa_mem()
    n, m = len(text), len(query)
    open_cost = scheme.gap_open + scheme.gap_extend  # first gap character
    extend = scheme.gap_extend

    # h/e/f[i][j]: best score of aligning text[:i] with query[:j] ending in
    # that state. e = gap consuming text (D ops); f = gap consuming query (I).
    h = [[_NEG_INF] * (m + 1) for _ in range(n + 1)]
    e = [[_NEG_INF] * (m + 1) for _ in range(n + 1)]
    f = [[_NEG_INF] * (m + 1) for _ in range(n + 1)]
    h[0][0] = 0
    for i in range(1, n + 1):
        e[i][0] = scheme.gap_cost(i)
        h[i][0] = e[i][0]
    for j in range(1, m + 1):
        f[0][j] = scheme.gap_cost(j)
        h[0][j] = f[0][j]

    for i in range(1, n + 1):
        ct = text[i - 1]
        h_prev, h_row = h[i - 1], h[i]
        e_prev, e_row = e[i - 1], e[i]
        f_row = f[i]
        for j in range(1, m + 1):
            e_row[j] = max(h_prev[j] + open_cost, e_prev[j] + extend)
            f_row[j] = max(h_row[j - 1] + open_cost, f_row[j - 1] + extend)
            sub = scheme.match if ct == query[j - 1] else scheme.substitution
            h_row[j] = max(h_prev[j - 1] + sub, e_row[j], f_row[j])

    ops: list[str] = []
    i, j = n, m
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if i > 0 and j > 0:
                sub = scheme.match if text[i - 1] == query[j - 1] else scheme.substitution
                if h[i][j] == h[i - 1][j - 1] + sub:
                    ops.append("M" if sub == scheme.match else "S")
                    i, j = i - 1, j - 1
                    continue
            if i > 0 and h[i][j] == e[i][j]:
                state = "E"
                continue
            state = "F"
        elif state == "E":
            ops.append("D")
            if i > 1 and e[i][j] == e[i - 1][j] + extend:
                i -= 1
                continue
            i -= 1
            state = "H"
        else:  # state == "F"
            ops.append("I")
            if j > 1 and f[i][j] == f[i][j - 1] + extend:
                j -= 1
                continue
            j -= 1
            state = "H"

    return GotohAlignment(cigar=Cigar("".join(reversed(ops))), score=int(h[n][m]))


def gotoh_score(text: str, query: str, scheme: ScoringScheme | None = None) -> int:
    """Optimal global affine-gap score without materializing the traceback.

    Linear-memory variant used when only the score matters (the accuracy
    analysis compares scores, not transcripts).
    """
    if scheme is None:
        scheme = ScoringScheme.bwa_mem()
    n, m = len(text), len(query)
    open_cost = scheme.gap_open + scheme.gap_extend
    extend = scheme.gap_extend

    h_prev = [0.0] * (m + 1)
    e_prev = [_NEG_INF] * (m + 1)
    for j in range(1, m + 1):
        h_prev[j] = scheme.gap_cost(j)
    for i in range(1, n + 1):
        ct = text[i - 1]
        h_row = [float(scheme.gap_cost(i))] + [0.0] * m
        e_row = [_NEG_INF] * (m + 1)
        f_here = _NEG_INF
        for j in range(1, m + 1):
            e_row[j] = max(h_prev[j] + open_cost, e_prev[j] + extend)
            f_here = max(h_row[j - 1] + open_cost, f_here + extend)
            sub = scheme.match if ct == query[j - 1] else scheme.substitution
            h_row[j] = max(h_prev[j - 1] + sub, e_row[j], f_here)
        h_prev, e_prev = h_row, e_row
    return int(h_prev[m])
