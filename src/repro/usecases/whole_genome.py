"""Whole genome alignment (Section 11).

"In whole genome alignment, we need to align two very long sequences.
Since GenASM can operate on arbitrary-length sequences as a result of our
divide-and-conquer approach, whole genome alignment can be accelerated
using the GenASM framework."

The windowed aligner needs no modification for genome-length inputs — that
is the point. This module wraps it with the reporting WGA tools produce:
overall identity, aligned span, and per-edit-type counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aligner import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    Alignment,
    GenAsmAligner,
)
from repro.core.cigar import Cigar
from repro.sequences.alphabet import DNA, Alphabet
from repro.sequences.genome import Genome


@dataclass(frozen=True)
class WholeGenomeAlignment:
    """Genome-vs-genome alignment summary."""

    cigar: Cigar
    edit_distance: int
    matches: int
    substitutions: int
    insertions: int
    deletions: int
    reference_span: int
    query_span: int

    @property
    def identity(self) -> float:
        """Matching positions over alignment columns (the ANI-style metric)."""
        columns = len(self.cigar)
        return self.matches / columns if columns else 1.0


def align_genomes(
    reference: Genome | str,
    query: Genome | str,
    *,
    window_size: int = DEFAULT_WINDOW_SIZE,
    overlap: int = DEFAULT_OVERLAP,
    alphabet: Alphabet = DNA,
) -> WholeGenomeAlignment:
    """Globally align two genomes with the windowed GenASM pipeline.

    Trailing unaligned reference is charged as deletions and trailing
    unconsumed query as insertions, so the summary reflects the full
    genome-to-genome transformation, as WGA tools report.
    """
    ref_seq = reference.sequence if isinstance(reference, Genome) else reference
    qry_seq = query.sequence if isinstance(query, Genome) else query
    if not ref_seq or not qry_seq:
        raise ValueError("both genomes must be non-empty")

    aligner = GenAsmAligner(
        window_size=window_size, overlap=overlap, alphabet=alphabet
    )
    alignment = aligner.align(ref_seq, qry_seq)
    return complete_alignment(alignment, len(ref_seq), len(qry_seq))


def complete_alignment(
    alignment: Alignment,
    reference_length: int,
    query_length: int,
) -> WholeGenomeAlignment:
    """Summarize a global alignment, charging unaligned tails.

    Trailing reference the aligner never consumed becomes deletions;
    trailing query it never consumed becomes insertions — symmetric, so
    neither tail silently deflates ``edit_distance`` or ``identity``.
    """
    trailing_ref = reference_length - alignment.text_consumed
    trailing_qry = query_length - alignment.cigar.query_length
    cigar = Cigar(
        alignment.cigar.ops + "D" * trailing_ref + "I" * trailing_qry
    )

    ops = cigar.ops
    return WholeGenomeAlignment(
        cigar=cigar,
        edit_distance=cigar.edit_distance,
        matches=ops.count("M"),
        substitutions=ops.count("S"),
        insertions=ops.count("I"),
        deletions=ops.count("D"),
        reference_span=cigar.reference_length,
        query_span=cigar.query_length,
    )
