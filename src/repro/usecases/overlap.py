"""Read-to-read overlap finding (Section 11, de novo assembly).

"The first step of de novo assembly is to find read-to-read overlaps since
the reference genome does not exist ... GenASM can be used for the pairwise
read alignment step of overlap finding."

The implementation mirrors minimap-style overlap: shared k-mers nominate
candidate read pairs and the offset between them; GenASM then performs the
pairwise alignment that verifies (or rejects) each candidate. Suffix of one
read aligned against prefix of the other — the dovetail layout assemblers
consume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.aligner import Alignment, GenAsmAligner
from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class Overlap:
    """A verified dovetail overlap between two reads.

    ``a_start`` is where the overlap begins in read ``a`` (the suffix of
    ``a`` aligns to the prefix of ``b``); ``length`` counts the overlapping
    query characters; ``edit_distance`` is GenASM's alignment cost.
    """

    a_index: int
    b_index: int
    a_start: int
    length: int
    edit_distance: int

    @property
    def identity(self) -> float:
        """Fraction of matching positions within the overlap."""
        if self.length == 0:
            return 0.0
        return 1.0 - self.edit_distance / self.length


@dataclass(frozen=True)
class OverlapCandidate:
    """A voted-for overlap awaiting alignment verification.

    ``region`` (read ``a``'s suffix plus slack) and ``query`` (read ``b``'s
    prefix) are the exact pair GenASM must align — carrying them here lets
    the verification stage run anywhere a ``(text, pattern)`` aligner lives,
    including through the serving cluster as a batch job.
    """

    a_index: int
    b_index: int
    a_start: int
    length: int
    region: str
    query: str


def overlap_candidates(
    reads: list[str],
    *,
    k: int = 15,
    min_overlap: int = 50,
    max_error_rate: float = 0.20,
) -> list[OverlapCandidate]:
    """K-mer voting: nominate overlap candidates without aligning anything.

    K-mers shared between two reads vote for the implied offset; the best
    offset per ordered pair (with at least two votes and a long-enough
    overlap) becomes one candidate. Candidates come out in voting order —
    :func:`select_overlaps` relies on that to replicate the sequential
    dedup of :func:`find_overlaps` exactly.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if min_overlap <= 0:
        raise ValueError("min_overlap must be positive")
    if not 0.0 <= max_error_rate < 1.0:
        raise ValueError("max_error_rate must be within [0, 1)")

    # Index every k-mer position of every read: overlapping reads sample
    # the genome at arbitrary relative phases, so stride-k sampling would
    # miss shared k-mers entirely.
    kmer_hits: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for index, read in enumerate(reads):
        for offset in range(max(0, len(read) - k + 1)):
            kmer_hits[read[offset : offset + k]].append((index, offset))

    # Vote per ordered pair for the relative offset a_start = off_a - off_b.
    votes: dict[tuple[int, int], dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for hits in kmer_hits.values():
        if len(hits) > 16:
            continue  # repetitive k-mer: uninformative
        for a_index, a_offset in hits:
            for b_index, b_offset in hits:
                if a_index == b_index:
                    continue
                shift = a_offset - b_offset
                if shift >= 0:
                    votes[(a_index, b_index)][shift] += 1

    candidates: list[OverlapCandidate] = []
    for (a_index, b_index), shifts in votes.items():
        shift, count = max(shifts.items(), key=lambda item: item[1])
        if count < 2:
            continue
        a, b = reads[a_index], reads[b_index]
        overlap_len = min(len(a) - shift, len(b))
        if overlap_len < min_overlap:
            continue
        # Align read b's prefix against read a's suffix (plus slack).
        slack = max(4, int(overlap_len * max_error_rate))
        candidates.append(
            OverlapCandidate(
                a_index=a_index,
                b_index=b_index,
                a_start=shift,
                length=overlap_len,
                region=a[shift : shift + overlap_len + slack],
                query=b[:overlap_len],
            )
        )
    return candidates


def select_overlaps(
    candidates: Sequence[OverlapCandidate],
    alignments: Sequence[Alignment],
    *,
    max_error_rate: float = 0.20,
) -> list[Overlap]:
    """Threshold verified candidates and dedup reversed pairs.

    ``alignments[i]`` must be the alignment of ``candidates[i].region``
    against ``candidates[i].query``. Dedup keeps the first *verified*
    orientation of each pair in candidate order, matching
    :func:`find_overlaps` output bit for bit regardless of where the
    alignments were computed.
    """
    if len(candidates) != len(alignments):
        raise ValueError("one alignment per candidate required")
    overlaps: list[Overlap] = []
    seen: set[tuple[int, int]] = set()
    for candidate, alignment in zip(candidates, alignments):
        if (candidate.b_index, candidate.a_index) in seen:
            continue
        if alignment.edit_distance / max(1, candidate.length) <= max_error_rate:
            seen.add((candidate.a_index, candidate.b_index))
            overlaps.append(
                Overlap(
                    a_index=candidate.a_index,
                    b_index=candidate.b_index,
                    a_start=candidate.a_start,
                    length=candidate.length,
                    edit_distance=alignment.edit_distance,
                )
            )
    overlaps.sort(key=lambda o: (o.a_index, o.b_index))
    return overlaps


def find_overlaps(
    reads: list[str],
    *,
    k: int = 15,
    min_overlap: int = 50,
    max_error_rate: float = 0.20,
    alphabet: Alphabet = DNA,
) -> list[Overlap]:
    """All-vs-all overlap finding over a read set.

    K-mer voting (:func:`overlap_candidates`) nominates candidate pairs;
    GenASM aligns each candidate's suffix/prefix pair and
    :func:`select_overlaps` thresholds the error rate.
    """
    candidates = overlap_candidates(
        reads, k=k, min_overlap=min_overlap, max_error_rate=max_error_rate
    )
    aligner = GenAsmAligner(alphabet=alphabet)
    alignments = [
        aligner.align(candidate.region, candidate.query)
        for candidate in candidates
    ]
    return select_overlaps(candidates, alignments, max_error_rate=max_error_rate)
