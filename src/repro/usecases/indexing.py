"""Hash-table index construction with GenASM (Section 11).

"As we need to find the locations of each seed in the reference text to
form the index structure, GenASM can be used to generate the hash-table
based index." — i.e. exact matching (Bitap with k = 0) locates every
occurrence of every distinct seed, and those locations populate the table.

This is deliberately the *same* index format the mapping pipeline consumes
(:class:`repro.mapping.index.KmerIndex`), so the GenASM-built index is a
drop-in replacement, which the tests verify against the direct builder.
"""

from __future__ import annotations

from repro.core.bitap import bitap_scan
from repro.mapping.index import DEFAULT_MAX_OCCURRENCES, KmerIndex
from repro.sequences.genome import Genome


def build_index_with_genasm(
    genome: Genome,
    k: int = 15,
    *,
    max_occurrences: int = DEFAULT_MAX_OCCURRENCES,
) -> KmerIndex:
    """Build a :class:`KmerIndex` using Bitap exact search for locations.

    Each distinct k-mer of the genome is searched with the k = 0 (exact)
    Bitap scan; the reported start locations become the table entry. On
    hardware each distinct seed would be one GenASM-DC task; here the scans
    run sequentially.
    """
    if k <= 0:
        raise ValueError("seed length k must be positive")
    if len(genome) < k:
        raise ValueError("genome shorter than the seed length")

    sequence = genome.sequence
    distinct: set[str] = {
        sequence[pos : pos + k] for pos in range(len(sequence) - k + 1)
    }

    index = KmerIndex(k=k, max_occurrences=max_occurrences)
    index.genome_length = len(genome)
    for seed in distinct:
        if genome.alphabet.wildcard and genome.alphabet.wildcard in seed:
            continue
        matches = bitap_scan(sequence, seed, 0, alphabet=genome.alphabet)
        positions = sorted(match.start for match in matches)
        if len(positions) > max_occurrences:
            index.masked_seeds += 1
            continue
        index._table[seed] = positions
    return index
