"""The four additional GenASM use cases of Section 11.

The paper evaluates three use cases and sketches four more, "whose
evaluation we leave for future work". This subpackage implements all four
so downstream users can exercise them:

* :mod:`repro.usecases.overlap` — read-to-read overlap finding, the first
  step of de novo assembly;
* :mod:`repro.usecases.indexing` — hash-table index construction driven by
  GenASM's exact-match machinery;
* :mod:`repro.usecases.whole_genome` — whole genome alignment of two
  arbitrary-length genomes;
* :mod:`repro.usecases.text_search` — generic text search over arbitrary
  alphabets (RNA, protein, ASCII text).
"""

from repro.usecases.indexing import build_index_with_genasm
from repro.usecases.overlap import (
    Overlap,
    OverlapCandidate,
    find_overlaps,
    overlap_candidates,
    select_overlaps,
)
from repro.usecases.text_search import TextMatch, collapse_matches, search_text
from repro.usecases.whole_genome import (
    WholeGenomeAlignment,
    align_genomes,
    complete_alignment,
)

__all__ = [
    "Overlap",
    "OverlapCandidate",
    "TextMatch",
    "WholeGenomeAlignment",
    "align_genomes",
    "build_index_with_genasm",
    "collapse_matches",
    "complete_alignment",
    "find_overlaps",
    "overlap_candidates",
    "search_text",
    "select_overlaps",
]
