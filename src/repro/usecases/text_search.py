"""Generic text search (Section 11).

"GenASM-DC can be extended to support larger alphabets, thus enabling
generic text search. When generating the pattern bitmasks during the
pre-processing step, the only change that is required is to generate
bitmasks for the entire alphabet ... There is no change required to the
edit distance calculation step."

:func:`search_text` builds the alphabet from the inputs (or accepts RNA /
protein / any :class:`Alphabet`), runs the Bitap scan for candidate
locations, and optionally tracebacks each hit for its transcript — fuzzy
grep with alignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.aligner import GenAsmAligner
from repro.core.bitap import BitapMatch, bitap_scan
from repro.core.cigar import Cigar
from repro.sequences.alphabet import Alphabet


@dataclass(frozen=True)
class TextMatch:
    """One approximate occurrence of the pattern in the text."""

    start: int
    distance: int
    cigar: Cigar | None


def alphabet_from_text(*texts: str) -> Alphabet:
    """Derive a minimal alphabet covering every character in ``texts``."""
    symbols = sorted(set("".join(texts)))
    if not symbols:
        raise ValueError("cannot derive an alphabet from empty text")
    return Alphabet("derived", "".join(symbols))


def collapse_matches(
    matches: Sequence[BitapMatch], max_errors: int
) -> list[tuple[int, int]]:
    """Collapse adjacent raw scan hits to ``(start, distance)`` bests.

    Runs of starts within ``max_errors`` of each other are one fuzzy
    occurrence; keep the lowest-distance representative of each run. Shared
    by :func:`search_text` and the job fabric's through-cluster variant, so
    both report identical hits.
    """
    ordered = sorted(matches, key=lambda match: match.start)
    collapsed: list[tuple[int, int]] = []
    for match in ordered:
        if collapsed and match.start - collapsed[-1][0] <= max_errors:
            if match.distance < collapsed[-1][1]:
                collapsed[-1] = (match.start, match.distance)
        else:
            collapsed.append((match.start, match.distance))
    return collapsed


def search_text(
    text: str,
    pattern: str,
    max_errors: int,
    *,
    alphabet: Alphabet | None = None,
    with_traceback: bool = False,
    max_matches: int | None = None,
) -> list[TextMatch]:
    """Find approximate occurrences of ``pattern`` in ``text``.

    Results are sorted by position. Overlapping hits at consecutive
    positions are collapsed to the best (lowest-distance) representative so
    one fuzzy occurrence reports once, like a fuzzy-grep user expects.
    """
    if max_errors < 0:
        raise ValueError("max_errors must be non-negative")
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if alphabet is None:
        alphabet = alphabet_from_text(text, pattern)

    raw = bitap_scan(text, pattern, max_errors, alphabet=alphabet)
    collapsed = collapse_matches(raw, max_errors)

    aligner = (
        GenAsmAligner(alphabet=alphabet) if with_traceback else None
    )
    matches: list[TextMatch] = []
    for start, distance in collapsed:
        cigar = None
        if aligner is not None:
            region = text[start : start + len(pattern) + max_errors]
            cigar = aligner.align(region, pattern).cigar
        matches.append(TextMatch(start=start, distance=distance, cigar=cigar))
        if max_matches is not None and len(matches) >= max_matches:
            break
    return matches
