"""Functional model of one GenASM accelerator (Figure 4).

One accelerator — the contents of one vault's logic layer — couples a
GenASM-DC systolic array, a GenASM-TB unit, the 8 KB DC-SRAM, and 64 per-PE
1.5 KB TB-SRAMs. :meth:`GenAsmAccelerator.align` executes the host-visible
flow: load the reference region and query into DC-SRAM, process windows
(DC writes each window's bitvectors to the TB-SRAMs; TB reads them back and
emits CIGAR characters), and report the alignment together with the cycles
and SRAM traffic the hardware would have spent.

By default the model stores the paper's TB-SRAM layout: three explicit edge
bitvectors per (iteration, distance) cell, the ``W·3·W·W``-bit sizing the
1.5 KB-per-PE design point comes from. ``sene_traceback=True`` switches the
stored window state to the SENE discipline (store entries, not edges, after
Scrooge / Lindegger et al.): only the ``R[d]`` history —
``(W+1)·(W+1)·W`` bits, ~2.9x less TB-SRAM traffic — with the TB unit
re-deriving edges from adjacent entries. Both settings produce identical
alignments; only the SRAM traffic accounting changes.

The *functional result* comes from :mod:`repro.core` (the same algorithms
the hardware implements); the *timing* comes from the wavefront schedule, so
this model is the meeting point the paper's co-design story revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aligner import Alignment, GenAsmAligner
from repro.core.genasm_dc import run_dc_window
from repro.core.genasm_tb import traceback_window
from repro.core.scoring import TracebackConfig
from repro.hardware.performance_model import (
    GenAsmConfig,
    DEFAULT_CONFIG,
    TB_WRITE_BITS_PER_CYCLE,
    wavefront_cycles,
)
from repro.hardware.sram import (
    Sram,
    dc_sram_demand_bytes,
    make_dc_sram,
    make_tb_sram,
)
from repro.sequences.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class AcceleratorResult:
    """Alignment output plus the hardware cost of producing it."""

    alignment: Alignment
    windows: int
    dc_cycles: int
    tb_cycles: int
    tb_sram_bytes_written: int
    tb_sram_bytes_read: int

    @property
    def total_cycles(self) -> int:
        """DC and TB serialized per window (Figure 4 steps 4-6)."""
        return self.dc_cycles + self.tb_cycles

    def time_seconds(self, frequency_hz: float = 1.0e9) -> float:
        return self.total_cycles / frequency_hz


class GenAsmAccelerator:
    """One vault's GenASM-DC + GenASM-TB pair with SRAM bookkeeping."""

    def __init__(
        self,
        config: GenAsmConfig = DEFAULT_CONFIG,
        *,
        tb_config: TracebackConfig | None = None,
        alphabet: Alphabet = DNA,
        sene_traceback: bool = False,
    ) -> None:
        self.config = config
        self.alphabet = alphabet
        self.sene_traceback = sene_traceback
        self.tb_config = tb_config if tb_config is not None else TracebackConfig()
        self.dc_sram: Sram = make_dc_sram()
        self.tb_srams: list[Sram] = [
            make_tb_sram(i) for i in range(config.processing_elements)
        ]
        self._aligner = GenAsmAligner(
            window_size=config.window_size,
            overlap=config.overlap,
            config=self.tb_config,
            alphabet=alphabet,
        )

    def align(self, text: str, pattern: str) -> AcceleratorResult:
        """Run the full DC/TB window loop with cycle and SRAM accounting.

        Functionally identical to :class:`~repro.core.aligner.GenAsmAligner`
        (asserted by tests); additionally checks that the working set fits
        the SRAM design point and accumulates traffic statistics.
        """
        self.dc_sram.reset()
        demand = dc_sram_demand_bytes(
            min(len(pattern), self.config.window_size * 4),
            min(len(text), self.config.window_size * 4),
            pe_count=self.config.processing_elements,
            pe_width_bits=self.config.pe_width_bits,
        )
        self.dc_sram.allocate(demand)

        w = self.config.window_size
        consume_limit = self.config.consumed_per_window
        cur_text = 0
        cur_pattern = 0
        dc_cycles = 0
        tb_cycles = 0
        windows = 0
        tb_written = 0
        tb_read = 0
        parts: list[str] = []

        m = len(pattern)
        while cur_pattern < m:
            sub_pattern = pattern[cur_pattern : cur_pattern + w]
            sub_text = text[cur_text : cur_text + w]
            if not sub_text:
                parts.append("I" * (m - cur_pattern))
                break
            window = run_dc_window(
                sub_text,
                sub_pattern,
                alphabet=self.alphabet,
                representation="sene" if self.sene_traceback else "edges",
            )
            rows = max(1, min(w, window.edit_distance))
            dc_cycles += wavefront_cycles(
                len(sub_text), rows, self.config.processing_elements
            )
            window_bits = window.stored_bits()
            self._spill_window(window_bits)
            tb_written += window_bits // 8

            tb = traceback_window(
                window, consume_limit=consume_limit, config=self.tb_config
            )
            steps = max(1, len(tb.ops))
            tb_cycles += steps
            tb_read += steps * (TB_WRITE_BITS_PER_CYCLE // 8)

            parts.append(tb.ops)
            cur_pattern += tb.pattern_consumed
            cur_text += tb.text_consumed
            windows += 1

        from repro.core.cigar import Cigar

        cigar = Cigar("".join(parts))
        alignment = Alignment(
            cigar=cigar,
            edit_distance=cigar.edit_distance,
            text_start=0,
            text_consumed=cur_text,
        )
        self.dc_sram.release(demand)
        return AcceleratorResult(
            alignment=alignment,
            windows=windows,
            dc_cycles=dc_cycles,
            tb_cycles=tb_cycles,
            tb_sram_bytes_written=tb_written,
            tb_sram_bytes_read=tb_read,
        )

    def _spill_window(self, window_bits: int) -> None:
        """Distribute one window's bitvectors across the per-PE TB-SRAMs.

        Each PE's share must fit its 1.5 KB buffer — the sizing claim of
        Section 7 ("1.5KB TB-SRAM ... fits our 24B/cycle x 64 cycles/window
        output storage requirement").
        """
        share = window_bits // 8 // len(self.tb_srams)
        for sram in self.tb_srams:
            sram.reset()
            sram.allocate(share)
            sram.release(share)
