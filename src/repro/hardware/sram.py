"""SRAM buffer models: DC-SRAM and the per-PE TB-SRAMs (Section 7).

GenASM-DC uses an 8 KB DC-SRAM holding "the reference text, the pattern
bitmasks for the query read, and the intermediate data generated from PEs";
each PE writes its match/insertion/deletion bitvectors (192 bits = 24 B per
cycle) to a dedicated 1.5 KB TB-SRAM with a single R/W port, sized for the
24 B/cycle x 64 cycles/window output of one window.

These models enforce the capacity and port constraints and count traffic, so
the accelerator model can verify the design point actually fits — the
"balance the compute resources with available memory capacity and bandwidth"
claim of the introduction.

Under the SENE storage discipline (store entries, not edges; see
:mod:`repro.core.genasm_dc` and
:func:`repro.hardware.performance_model.memory_footprint_bits_with_windowing_sene`)
each PE writes only its ``R[d]`` row — 64 bits instead of 192 per cycle —
cutting the per-window TB-SRAM footprint from 96 KB to ~33 KB; the
accelerator model exposes this as ``sene_traceback=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SramCapacityError(RuntimeError):
    """Raised when a write would exceed the buffer's capacity."""


class SramPortError(RuntimeError):
    """Raised when per-cycle accesses exceed the configured port count."""


@dataclass
class Sram:
    """A banked on-chip buffer with capacity and port bookkeeping.

    Parameters
    ----------
    name:
        For error messages and reports ("DC-SRAM", "TB-SRAM[3]", ...).
    capacity_bytes:
        Total storage.
    read_ports / write_ports:
        Accesses allowed per cycle; the paper's TB-SRAMs have "a single R/W
        port", modelled as one read and one write port that cannot be used
        in the same cycle (checked by :meth:`end_cycle`).
    shared_rw_port:
        True when reads and writes contend for the same port.
    """

    name: str
    capacity_bytes: int
    read_ports: int = 1
    write_ports: int = 1
    shared_rw_port: bool = False

    occupied_bytes: int = field(default=0, init=False)
    total_reads: int = field(default=0, init=False)
    total_writes: int = field(default=0, init=False)
    total_bytes_read: int = field(default=0, init=False)
    total_bytes_written: int = field(default=0, init=False)
    _cycle_reads: int = field(default=0, init=False)
    _cycle_writes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.read_ports < 0 or self.write_ports < 0:
            raise ValueError("port counts must be non-negative")

    # ------------------------------------------------------------------
    # Data placement
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        """Claim buffer space (e.g. the window's bitvector region)."""
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.occupied_bytes + nbytes > self.capacity_bytes:
            raise SramCapacityError(
                f"{self.name}: allocating {nbytes} B exceeds capacity "
                f"({self.occupied_bytes}/{self.capacity_bytes} B in use)"
            )
        self.occupied_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Free previously allocated space (window retirement)."""
        if nbytes < 0 or nbytes > self.occupied_bytes:
            raise ValueError(f"{self.name}: cannot release {nbytes} B")
        self.occupied_bytes -= nbytes

    def reset(self) -> None:
        """Clear occupancy between alignments; traffic counters persist."""
        self.occupied_bytes = 0
        self._cycle_reads = 0
        self._cycle_writes = 0

    # ------------------------------------------------------------------
    # Per-cycle traffic
    # ------------------------------------------------------------------
    def read(self, nbytes: int) -> None:
        self._cycle_reads += 1
        self.total_reads += 1
        self.total_bytes_read += nbytes
        if self._cycle_reads > self.read_ports:
            raise SramPortError(
                f"{self.name}: {self._cycle_reads} reads in one cycle "
                f"(only {self.read_ports} port(s))"
            )

    def write(self, nbytes: int) -> None:
        self._cycle_writes += 1
        self.total_writes += 1
        self.total_bytes_written += nbytes
        if self._cycle_writes > self.write_ports:
            raise SramPortError(
                f"{self.name}: {self._cycle_writes} writes in one cycle "
                f"(only {self.write_ports} port(s))"
            )

    def end_cycle(self) -> None:
        """Close the accounting window for one cycle."""
        if self.shared_rw_port and self._cycle_reads and self._cycle_writes:
            raise SramPortError(
                f"{self.name}: simultaneous read and write on a shared R/W port"
            )
        self._cycle_reads = 0
        self._cycle_writes = 0


def make_dc_sram() -> Sram:
    """The paper's 8 KB DC-SRAM (one read + one write per cycle, Section 7)."""
    return Sram(name="DC-SRAM", capacity_bytes=8 * 1024)


def make_tb_sram(index: int) -> Sram:
    """One of the 64 per-PE 1.5 KB TB-SRAMs with a single R/W port."""
    return Sram(
        name=f"TB-SRAM[{index}]",
        capacity_bytes=1536,
        shared_rw_port=True,
    )


def dc_sram_demand_bytes(
    pattern_length: int,
    region_length: int,
    bits_per_symbol: int = 2,
    pe_count: int = 64,
    pe_width_bits: int = 64,
) -> int:
    """DC-SRAM footprint of one alignment task.

    Holds the packed reference region and the four pattern bitmasks. The
    per-PE oldR state lives in the PEs' own "flip-flop-based storage logic"
    (Section 7), so it does not occupy DC-SRAM. The paper's example —
    10 Kbp read at 15% error, 11.5 Kbp region — lands at 7,875 bytes,
    inside the 8 KB budget.
    """
    region_bytes = (region_length * bits_per_symbol + 7) // 8
    bitmask_bytes = 4 * ((pattern_length + 7) // 8)
    return region_bytes + bitmask_bytes
