"""Hardware models: the GenASM accelerator and every baseline device.

* :mod:`repro.hardware.performance_model` — the paper's analytical model
  (cycles, throughput, footprints, bandwidth).
* :mod:`repro.hardware.systolic` — cycle-level wavefront simulator that
  validates the analytical model (Figure 5).
* :mod:`repro.hardware.sram` — DC-SRAM / TB-SRAM capacity and port models.
* :mod:`repro.hardware.accelerator` / :mod:`repro.hardware.memory` — a
  functional accelerator and the 32-vault 3D-stacked system.
* :mod:`repro.hardware.area_power` — Table 1.
* :mod:`repro.hardware.baseline_devices` — calibrated models of BWA-MEM,
  Minimap2, GASAL2, GACT, SillaX, Shouji, Edlib, and ASAP.
"""

from repro.hardware.accelerator import AcceleratorResult, GenAsmAccelerator
from repro.hardware.area_power import (
    AreaPowerBreakdown,
    ComponentCost,
    genasm_area_power,
    xeon_core_comparison,
)
from repro.hardware.memory import BatchResult, StackedMemorySystem
from repro.hardware.performance_model import (
    DEFAULT_CONFIG,
    GenAsmConfig,
    alignment_cycles,
    alignment_time_seconds,
    dc_cycles_with_windowing,
    dc_cycles_without_windowing,
    dram_bandwidth_bytes_per_second,
    memory_footprint_bits_with_windowing,
    memory_footprint_bits_with_windowing_sene,
    memory_footprint_bits_without_windowing,
    system_throughput,
    throughput_per_accelerator,
    wavefront_cycles,
    window_count,
)
from repro.hardware.sram import Sram, SramCapacityError, SramPortError
from repro.hardware.systolic import SystolicSchedule, schedule_window

__all__ = [
    "AcceleratorResult",
    "AreaPowerBreakdown",
    "BatchResult",
    "ComponentCost",
    "DEFAULT_CONFIG",
    "GenAsmAccelerator",
    "GenAsmConfig",
    "Sram",
    "SramCapacityError",
    "SramPortError",
    "StackedMemorySystem",
    "SystolicSchedule",
    "alignment_cycles",
    "alignment_time_seconds",
    "dc_cycles_with_windowing",
    "dc_cycles_without_windowing",
    "dram_bandwidth_bytes_per_second",
    "genasm_area_power",
    "memory_footprint_bits_with_windowing",
    "memory_footprint_bits_with_windowing_sene",
    "memory_footprint_bits_without_windowing",
    "schedule_window",
    "system_throughput",
    "throughput_per_accelerator",
    "wavefront_cycles",
    "window_count",
    "xeon_core_comparison",
]
