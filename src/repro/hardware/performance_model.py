"""Analytical performance model of the GenASM accelerator (Section 9).

The paper's performance results come from "a spreadsheet-based analytical
model for GenASM-DC and GenASM-TB, which considers reference genome (i.e.,
text) length, query read (i.e., pattern) length, maximum edit distance,
window size, hardware design parameters (number of PEs, bit width of each
PE) and number of vaults as input parameters and projects compute cycles,
DRAM read/write bandwidth, SRAM read/write bandwidth, and memory footprint",
verified against RTL simulation. This module is that model.

Cycle counts follow the systolic wavefront of Figure 5: with ``R`` distance
rows mapped cyclically onto ``P`` PEs, a window of ``n`` text characters
completes in ``ceil(R / P) * n + min(P, R) - 1`` cycles (steady-state
streaming plus pipeline fill). The closed forms of Section 10.5 are exposed
directly so the ablation benchmark can reproduce the paper's
divide-and-conquer arithmetic, and the cycle-level simulator in
:mod:`repro.hardware.systolic` cross-checks these counts the same way the
paper checked its spreadsheet against RTL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: TB-SRAM write width per PE per cycle: match+insertion+deletion, 64 b each.
TB_WRITE_BITS_PER_CYCLE = 192


@dataclass(frozen=True)
class GenAsmConfig:
    """Hardware configuration of one GenASM accelerator (one vault).

    Defaults are the paper's synthesized design point: 64 PEs x 64 bits at
    1 GHz, window size 64 with overlap 24, one accelerator in each of the
    32 vaults of an HMC-like stack.
    """

    processing_elements: int = 64
    pe_width_bits: int = 64
    window_size: int = 64
    overlap: int = 24
    frequency_hz: float = 1.0e9
    vaults: int = 32

    def __post_init__(self) -> None:
        if self.processing_elements <= 0 or self.pe_width_bits <= 0:
            raise ValueError("PE count and width must be positive")
        if self.window_size <= 0:
            raise ValueError("window size must be positive")
        if not 0 <= self.overlap < self.window_size:
            raise ValueError("overlap must satisfy 0 <= O < W")
        if self.frequency_hz <= 0 or self.vaults <= 0:
            raise ValueError("frequency and vault count must be positive")

    @property
    def consumed_per_window(self) -> int:
        """Characters retired per window: ``W - O``."""
        return self.window_size - self.overlap


DEFAULT_CONFIG = GenAsmConfig()


# ----------------------------------------------------------------------
# Per-window and per-alignment cycle counts
# ----------------------------------------------------------------------
def wavefront_cycles(text_length: int, rows: int, processing_elements: int) -> int:
    """Exact cycle count of the Figure 5 wavefront schedule.

    Row ``r`` can start one cycle after row ``r-1`` (its R[d-1] dependency)
    and only after its PE retired row ``r-P`` (cyclic reuse), giving the
    recurrence ``start[r] = max(start[r-1] + 1, start[r-P] + n)``. The last
    cell finishes at ``start[rows-1] + n - 1``. Figure 5's example (4 PEs,
    8 rows, 4 text characters) lands on 11 cycles, matching the paper.
    """
    if text_length <= 0 or rows <= 0 or processing_elements <= 0:
        raise ValueError("text_length, rows, processing_elements must be positive")
    starts = [1] * rows
    for r in range(1, rows):
        start = starts[r - 1] + 1
        if r >= processing_elements:
            start = max(start, starts[r - processing_elements] + text_length)
        starts[r] = start
    return starts[-1] + text_length - 1


def dc_window_cycles(config: GenAsmConfig, window_edit_distance: int | None = None) -> int:
    """GenASM-DC cycles for one window on the systolic array.

    ``window_edit_distance`` bounds the number of distance rows that must be
    computed (``min(W, k)`` of Section 10.5); None means the worst case of
    ``W`` rows. With 64 rows on 64 PEs over 64 text characters this is
    64 + 63 = 127 cycles per window.
    """
    w = config.window_size
    rows = w if window_edit_distance is None else max(1, min(w, window_edit_distance))
    return wavefront_cycles(w, rows, config.processing_elements)


def tb_window_cycles(config: GenAsmConfig) -> int:
    """GenASM-TB cycles for one window: one CIGAR character per cycle."""
    return config.consumed_per_window


def window_count(pattern_length: int, edit_distance: int, config: GenAsmConfig) -> int:
    """Windows needed to traverse an ``m + k``-character matched region."""
    if pattern_length <= 0:
        raise ValueError("pattern length must be positive")
    if edit_distance < 0:
        raise ValueError("edit distance must be non-negative")
    region = pattern_length + edit_distance
    return math.ceil(region / config.consumed_per_window)


def alignment_cycles(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> int:
    """Total cycles for one read: windows x (DC + TB), DC and TB serialized.

    GenASM-TB for a window begins only after GenASM-DC finishes writing that
    window's bitvectors to the TB-SRAMs (Figure 4 steps 4-6).
    """
    windows = window_count(pattern_length, edit_distance, config)
    per_window_k = min(config.window_size, max(1, edit_distance))
    return windows * (dc_window_cycles(config, per_window_k) + tb_window_cycles(config))


def alignment_time_seconds(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """Latency of one alignment on one accelerator."""
    return alignment_cycles(pattern_length, edit_distance, config) / config.frequency_hz


def throughput_per_accelerator(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """Alignments per second for a single accelerator (one vault)."""
    return 1.0 / alignment_time_seconds(pattern_length, edit_distance, config)


def system_throughput(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """Aggregate alignments/second across all vaults.

    Performance "scales linearly as we increase the number of compute units
    working in parallel" because vaults share nothing but DRAM, whose
    bandwidth demand (Section 7) stays far below the stack's 256 GB/s.
    """
    return throughput_per_accelerator(pattern_length, edit_distance, config) * config.vaults


# ----------------------------------------------------------------------
# Section 10.5 closed forms (used by the ablation benchmark)
# ----------------------------------------------------------------------
def dc_cycles_without_windowing(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """DC cycles with no divide-and-conquer: ``m*(m+k)*k / (P*w)``."""
    m, k = pattern_length, edit_distance
    return m * (m + k) * k / (config.processing_elements * config.pe_width_bits)


def dc_cycles_with_windowing(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """DC cycles with windowing: ``(W*W*min(W,k)/(P*w)) * (m+k)/(W-O)``."""
    m, k = pattern_length, edit_distance
    w = config.window_size
    per_window = w * w * min(w, k) / (config.processing_elements * config.pe_width_bits)
    return per_window * (m + k) / config.consumed_per_window


def memory_footprint_bits_without_windowing(
    pattern_length: int, edit_distance: int
) -> int:
    """Bitvector storage with no windowing: ``(m+k) * 4 * k * m`` bits.

    Section 6's motivating example: ~80 GB for m = 10,000 and k = 1,500.
    """
    m, k = pattern_length, edit_distance
    return (m + k) * 4 * k * m


def memory_footprint_bits_with_windowing(config: GenAsmConfig = DEFAULT_CONFIG) -> int:
    """Bitvector storage with windowing: ``W * 3 * W * W`` bits.

    Three stored vectors (match, insertion, deletion) — substitution is
    derived — for W iterations of W-row, W-bit state. This is the MICRO
    2020 TB-SRAM sizing (96 KB at W = 64); the SENE storage discipline
    (:func:`memory_footprint_bits_with_windowing_sene`) cuts it a further
    ~3x by storing only the ``R`` history.
    """
    w = config.window_size
    return w * 3 * w * w


def memory_footprint_bits_with_windowing_sene(
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> int:
    """SENE bitvector storage with windowing: ``(W+1) * (W+1) * W`` bits.

    Store-entries-not-edges (Scrooge, Lindegger et al.): only the ``R[d]``
    status rows are kept — ``W + 1`` iterations (including the initial
    state) of ``W + 1`` distance rows, ``W`` bits each — and the traceback
    re-derives the match/substitution/insertion/deletion edges from
    adjacent entries. At W = 64 this is ~33 KB against the paper layout's
    96 KB, a ~2.9x TB-SRAM reduction, and it removes two of the three
    per-cycle TB-SRAM stores from the DC pipeline. The software kernels
    default to this discipline (``representation="sene"``).
    """
    w = config.window_size
    return (w + 1) * (w + 1) * w


# ----------------------------------------------------------------------
# Bandwidth projections
# ----------------------------------------------------------------------
def dram_bandwidth_bytes_per_second(
    pattern_length: int,
    edit_distance: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
    bits_per_symbol: int = 2,
    include_cigar_writeback: bool = False,
) -> float:
    """Main-memory traffic of one accelerator.

    Section 7: GenASM "accesses the memory and utilizes the memory bandwidth
    only to read the reference and the query sequences" — everything else
    lives in the SRAMs. With that accounting the model lands at ~112 MB/s
    for 10 Kbp reads at 15% error, inside the paper's 105-142 MB/s band.
    ``include_cigar_writeback`` adds the traceback output stream for
    completeness.
    """
    m, k = pattern_length, edit_distance
    bits = (m + k) * bits_per_symbol + m * bits_per_symbol
    if include_cigar_writeback:
        bits += (m + k) * 2  # ~2 bits per traceback operation
    return (bits / 8) * throughput_per_accelerator(m, k, config)


def tb_sram_write_bandwidth_bytes_per_second(
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """Aggregate TB-SRAM write traffic while DC streams (24 B/cycle/PE)."""
    per_pe_bytes = TB_WRITE_BITS_PER_CYCLE / 8
    return per_pe_bytes * config.processing_elements * config.frequency_hz
