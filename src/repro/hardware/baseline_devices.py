"""Calibrated performance/power models of the paper's baseline systems.

We cannot run BWA-MEM, Minimap2, GASAL2, Darwin's GACT RTL, GenAx's SillaX,
Shouji's FPGA build, Edlib's C build, or ASAP. The paper itself uses several
of these only through their published numbers (SillaX, ASAP, Shouji
accuracy). Following DESIGN.md's substitution policy, each baseline becomes
an explicit analytical model:

* its *scaling law* comes from the algorithm (DP cells for CPU/GPU aligners,
  tiles for GACT, band area for Edlib, mask count for Shouji), and
* its *absolute rate* is calibrated to anchor points the paper reports,
  each documented next to the constant.

Every bench built on these models distinguishes "reproduced by construction"
(the anchor itself) from "model prediction" (every other point), and the
pure-algorithm shape claims are additionally cross-checked by measuring our
Python re-implementations in the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.performance_model import (
    DEFAULT_CONFIG,
    GenAsmConfig,
    system_throughput,
    throughput_per_accelerator,
)

# ----------------------------------------------------------------------
# GenASM power (Table 1), used for every "power reduction" ratio
# ----------------------------------------------------------------------
GENASM_SYSTEM_POWER_W = 3.23  # 32 accelerators
GENASM_ACCELERATOR_POWER_W = 0.101  # one vault


# ----------------------------------------------------------------------
# CPU software aligners (alignment step only): BWA-MEM and Minimap2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoftwareAlignerModel:
    """Banded affine-gap DP cost model for a CPU read aligner.

    ``time = overhead + cells / cell_rate`` per alignment per thread, with
    ``cells = m * (2 * k + 1)`` (banded extension around the seed diagonal).
    ``thread_efficiency`` captures the sub-linear 1->12 thread scaling the
    paper measures (BWA-MEM 11.1x, Minimap2 9.7x over 12 threads).
    """

    name: str
    cell_rate: float  # DP cells per second per thread
    overhead_s: float  # fixed per-alignment software overhead
    thread_efficiency: float
    power_1t_w: float
    power_12t_w: float

    def cells(self, read_length: int, error_rate: float) -> float:
        k = max(1.0, read_length * error_rate)
        return read_length * (2.0 * k + 1.0)

    def alignment_time_s(
        self, read_length: int, error_rate: float, threads: int = 12
    ) -> float:
        per_thread = self.overhead_s + self.cells(read_length, error_rate) / self.cell_rate
        effective_threads = 1 + (threads - 1) * self.thread_efficiency
        return per_thread / effective_threads

    def throughput(
        self, read_length: int, error_rate: float, threads: int = 12
    ) -> float:
        return 1.0 / self.alignment_time_s(read_length, error_rate, threads)

    def power_w(self, threads: int = 12) -> float:
        return self.power_12t_w if threads > 1 else self.power_1t_w


def _calibrate_software_aligner(
    name: str,
    *,
    long_read_speedup_12t: float,
    short_read_speedup_12t: float,
    threads_scaling_12t: float,
    power_1t_w: float,
    power_12t_w: float,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> SoftwareAlignerModel:
    """Solve (cell_rate, overhead) from the paper's two speedup anchors.

    Anchors: GenASM-over-tool speedups for the representative long-read
    (10 Kbp @ 15%) and short-read (150 bp @ 5%) workloads of Figures 9-10.
    """
    efficiency = (threads_scaling_12t - 1) / 11.0
    effective_threads = 1 + 11 * efficiency

    long_m, long_e = 10_000, 0.15
    short_m, short_e = 150, 0.05
    genasm_long = system_throughput(long_m, int(long_m * long_e), config)
    genasm_short = system_throughput(short_m, int(short_m * short_e), config)

    # tool per-thread time = overhead + cells / rate, at each anchor:
    long_time = effective_threads * long_read_speedup_12t / genasm_long
    short_time = effective_threads * short_read_speedup_12t / genasm_short

    long_cells = long_m * (2 * long_m * long_e + 1)
    short_cells = short_m * (2 * short_m * short_e + 1)
    # Two equations: t = o + c / r. Solve for rate first.
    cell_rate = (long_cells - short_cells) / (long_time - short_time)
    overhead = short_time - short_cells / cell_rate
    overhead = max(0.0, overhead)
    return SoftwareAlignerModel(
        name=name,
        cell_rate=cell_rate,
        overhead_s=overhead,
        thread_efficiency=efficiency,
        power_1t_w=power_1t_w,
        power_12t_w=power_12t_w,
    )


def bwa_mem_model(config: GenAsmConfig = DEFAULT_CONFIG) -> SoftwareAlignerModel:
    """BWA-MEM alignment step.

    Anchors (Section 10.2): 648x (long, 12t), 111x (short, 12t), 1t->12t
    scaling 7173/648 = 11.07x; power 58.6 W (1t) / 109.5 W (12t).
    """
    return _calibrate_software_aligner(
        "BWA-MEM",
        long_read_speedup_12t=648.0,
        short_read_speedup_12t=111.0,
        threads_scaling_12t=7173.0 / 648.0,
        power_1t_w=58.6,
        power_12t_w=109.5,
        config=config,
    )


def minimap2_model(config: GenAsmConfig = DEFAULT_CONFIG) -> SoftwareAlignerModel:
    """Minimap2 alignment step.

    Anchors (Section 10.2): 116x (long, 12t), 158x (short, 12t), 1t->12t
    scaling 1126/116 = 9.71x; power 59.8 W (1t) / 118.9 W (12t).
    """
    return _calibrate_software_aligner(
        "Minimap2",
        long_read_speedup_12t=116.0,
        short_read_speedup_12t=158.0,
        threads_scaling_12t=1126.0 / 116.0,
        power_1t_w=59.8,
        power_12t_w=118.9,
        config=config,
    )


# ----------------------------------------------------------------------
# GASAL2 (GPU, short reads)
# ----------------------------------------------------------------------
#: Paper-reported GenASM-over-GASAL2 speedups / power reductions by
#: (read length, dataset size in pairs). Section 10.2, "Software Baselines
#: (GPU)".
GASAL2_SPEEDUP = {
    (100, 100_000): 9.9,
    (100, 1_000_000): 9.2,
    (100, 10_000_000): 8.5,
    (150, 100_000): 15.8,
    (150, 1_000_000): 13.1,
    (150, 10_000_000): 13.4,
    (250, 100_000): 21.5,
    (250, 1_000_000): 20.6,
    (250, 10_000_000): 21.1,
}
GASAL2_POWER_REDUCTION = {
    (100, 100_000): 15.6,
    (100, 1_000_000): 17.3,
    (100, 10_000_000): 17.6,
    (150, 100_000): 15.4,
    (150, 1_000_000): 18.0,
    (150, 10_000_000): 18.7,
    (250, 100_000): 16.8,
    (250, 1_000_000): 20.2,
    (250, 10_000_000): 20.6,
}


def gasal2_throughput(
    read_length: int, pairs: int, config: GenAsmConfig = DEFAULT_CONFIG
) -> float:
    """GASAL2 kernel throughput derived from the published speedup anchors."""
    key = (read_length, pairs)
    if key not in GASAL2_SPEEDUP:
        raise KeyError(f"no GASAL2 anchor for {key}")
    k = max(1, int(read_length * 0.05))
    return system_throughput(read_length, k, config) / GASAL2_SPEEDUP[key]


def gasal2_power_w(read_length: int, pairs: int) -> float:
    """GASAL2 (Titan V) power derived from the published reduction ratios."""
    return GENASM_SYSTEM_POWER_W * GASAL2_POWER_REDUCTION[(read_length, pairs)]


# ----------------------------------------------------------------------
# GACT (Darwin) — single array, iso-bandwidth comparison of Figures 12-13
# ----------------------------------------------------------------------
GACT_POWER_W = 0.2777  # Section 10.2: 277.7 mW for a 64-PE array + SRAM
GACT_TILE = 320
GACT_TILE_OVERLAP = 128
#: Cycles one 64-PE GACT array spends per 320x320 tile (DP fill + traceback).
#: Calibrated so a 1 Kbp alignment at 15% error (6 tiles) hits the paper's
#: 55,556 alignments/second: 1e9 / 55,556 / 6 = 3,000 cycles/tile.
GACT_CYCLES_PER_TILE = 3_000
GACT_FREQUENCY_HZ = 1.0e9
#: Section 10.2: GenASM requires 1.7x less area than GACT logic + 128 KB SRAM.
GACT_AREA_MM2 = 0.334 * 1.7


def gact_tiles(read_length: int, error_rate: float = 0.15) -> int:
    """Forward-pass tiles over the ``m + k`` region (T=320, O=128).

    The first tile covers up to ``T`` characters; every further tile
    advances ``T - O``. Reads that fit inside one tile (all of Figure 13's
    short reads) always cost exactly one tile — the RTL fills its fixed
    320x320 block regardless of how short the read is.
    """
    region = read_length * (1.0 + error_rate)
    if region <= GACT_TILE:
        return 1
    return 1 + math.ceil((region - GACT_TILE) / (GACT_TILE - GACT_TILE_OVERLAP))


def gact_throughput(read_length: int, error_rate: float = 0.15) -> float:
    """Alignments/second for a single GACT array.

    The tile count is 1 for short reads (the RTL always fills its fixed
    320x320 tile), reproducing Figure 13's flat-ish GACT curve, and grows
    linearly with long-read length, reproducing Figure 12's 1/L decay
    (55,556 aln/s at 1 Kbp down to ~6 Kaln/s at 10 Kbp).
    """
    tiles = gact_tiles(read_length, error_rate)
    return GACT_FREQUENCY_HZ / (tiles * GACT_CYCLES_PER_TILE)


# ----------------------------------------------------------------------
# SillaX (GenAx) — short-read accelerator
# ----------------------------------------------------------------------
SILLAX_THROUGHPUT = 50.0e6  # aln/s at 2 GHz for 101 bp reads (Section 10.2)
SILLAX_LOGIC_AREA_MM2 = 5.64
SILLAX_LOGIC_POWER_W = 6.6
SILLAX_SRAM_MB = 2.02
SILLAX_SRAM_AREA_MM2 = 3.47  # paper's CACTI analysis
SILLAX_TOTAL_AREA_MM2 = SILLAX_LOGIC_AREA_MM2 + SILLAX_SRAM_AREA_MM2  # 9.11


# ----------------------------------------------------------------------
# Shouji (FPGA pre-alignment filter)
# ----------------------------------------------------------------------
#: Shouji work scales with m*k (mask bits); GenASM-DC filtering with n*m*k
#: (Section 10.3's complexity discussion). Calibrated at the 100 bp / E=5
#: dataset where GenASM is 3.7x faster.
SHOUJI_POWER_100BP_W = GENASM_SYSTEM_POWER_W * 1.7  # paper: 1.7x reduction
SHOUJI_POWER_250BP_W = GENASM_SYSTEM_POWER_W * 1.6  # paper: 1.6x reduction


def genasm_filter_time_s(
    read_length: int,
    threshold: int,
    config: GenAsmConfig = DEFAULT_CONFIG,
) -> float:
    """DC-only filtering time for one pair on one accelerator.

    Follows the paper's complexity statement for this use case — O(n*m*k)
    bit operations (Section 10.3) — executed at P*w bit-ops per cycle, plus
    the wavefront fill. Using n ~ m for the Shouji-style equal-length pairs.
    """
    rows = threshold + 1
    bit_ops = read_length * read_length * rows
    cell_cycles = bit_ops / (config.processing_elements * config.pe_width_bits)
    fill = min(config.processing_elements, rows) - 1
    return (cell_cycles + fill) / config.frequency_hz


def shouji_time_s(read_length: int, threshold: int) -> float:
    """Shouji filtering time per pair, O(m*k), anchored at 100 bp/E=5.

    Anchor: 3.7x slower than GenASM's filter on that dataset. At
    250 bp/E=15 the model then predicts ~1.0x, matching the paper's "GenASM
    does not provide speedup over Shouji" for the longer dataset.
    """
    anchor_time = 3.7 * genasm_filter_time_s(100, 5)
    scale = (read_length * threshold) / (100.0 * 5.0)
    return anchor_time * scale


# ----------------------------------------------------------------------
# Edlib (CPU edit-distance library)
# ----------------------------------------------------------------------
EDLIB_POWER_100KBP_W = 55.3
EDLIB_POWER_1MBP_W = 58.8
#: Seconds per banded Myers word-op (m * 2k / 64 words). Calibrated from the
#: paper's 716x speedup at 100 Kbp / 60% similarity: GenASM's model takes
#: 0.58 ms there, so Edlib takes ~0.42 s over 1.25e8 word-ops ~ 3.3 ns each.
EDLIB_SECONDS_PER_WORD_OP = 3.3e-9
EDLIB_TRACEBACK_FACTOR = 2.0  # paper: with-traceback roughly doubles time


def edlib_time_s(
    length: int, similarity: float, *, traceback: bool = False
) -> float:
    """Edlib NW-mode runtime model: banded Myers with band 2k ~ divergence.

    Quadratic in length at fixed similarity (the band grows with k = (1 -
    similarity) * length), which is the property Figure 14's crossover
    rests on.
    """
    if not 0.0 < similarity <= 1.0:
        raise ValueError("similarity must be in (0, 1]")
    k = max(1.0, (1.0 - similarity) * length)
    word_ops = length * 2.0 * k / 64.0
    time = word_ops * EDLIB_SECONDS_PER_WORD_OP
    if traceback:
        time *= EDLIB_TRACEBACK_FACTOR
    return time


def genasm_edit_distance_time_s(
    length: int, similarity: float, config: GenAsmConfig = DEFAULT_CONFIG
) -> float:
    """GenASM edit-distance latency (one accelerator), from the cycle model."""
    k = max(1, int((1.0 - similarity) * length))
    return 1.0 / throughput_per_accelerator(length, k, config)


# ----------------------------------------------------------------------
# ASAP (FPGA edit-distance accelerator)
# ----------------------------------------------------------------------
ASAP_POWER_W = 6.8
#: Section 10.4: ASAP runtime grows from 6.8 us at 64 bp to 18.8 us at
#: 320 bp; modelled as linear interpolation between the published endpoints.
_ASAP_T64_S = 6.8e-6
_ASAP_T320_S = 18.8e-6


def asap_time_s(length: int) -> float:
    """ASAP edit-distance latency for 64-320 bp sequences."""
    if not 64 <= length <= 320:
        raise ValueError("ASAP model is anchored for 64-320 bp only")
    frac = (length - 64) / (320 - 64)
    return _ASAP_T64_S + frac * (_ASAP_T320_S - _ASAP_T64_S)
