"""HMC-like 3D-stacked memory hosting 32 GenASM accelerators (Section 7).

The paper places one accelerator in the logic layer of each of a 16 GB HMC's
32 vaults: "we can exploit the natural subdivision within 3D-stacked memory
... to efficiently enable parallelism across multiple GenASM accelerators.
This subdivision allows accelerators to work in parallel without interfering
with each other."

:class:`StackedMemorySystem` models that: a batch of alignment tasks is
distributed over the vaults, per-vault busy time accumulates independently,
batch latency is the slowest vault, and the aggregate DRAM traffic is
checked against the stack's 256 GB/s internal bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scoring import TracebackConfig
from repro.hardware.accelerator import AcceleratorResult, GenAsmAccelerator
from repro.hardware.performance_model import DEFAULT_CONFIG, GenAsmConfig
from repro.sequences.alphabet import DNA, Alphabet

#: Internal bandwidth of the modelled HMC stack (Section 9).
STACK_BANDWIDTH_BYTES_PER_S = 256.0e9
STACK_CAPACITY_BYTES = 16 * 2**30


@dataclass
class VaultState:
    """One vault: its accelerator plus accumulated busy time."""

    index: int
    accelerator: GenAsmAccelerator
    busy_cycles: int = 0
    completed: int = 0
    dram_bytes: int = 0


@dataclass(frozen=True)
class BatchResult:
    """Outcome of running a batch of alignment tasks across the vaults."""

    results: list[AcceleratorResult]
    makespan_seconds: float
    throughput_per_second: float
    dram_bandwidth_bytes_per_s: float
    vault_utilization: float

    @property
    def within_stack_bandwidth(self) -> bool:
        """Section 7's claim: total demand stays far below 256 GB/s."""
        return self.dram_bandwidth_bytes_per_s <= STACK_BANDWIDTH_BYTES_PER_S


class StackedMemorySystem:
    """32 vaults, each with an independent GenASM accelerator."""

    def __init__(
        self,
        config: GenAsmConfig = DEFAULT_CONFIG,
        *,
        tb_config: TracebackConfig | None = None,
        alphabet: Alphabet = DNA,
    ) -> None:
        self.config = config
        self.vaults: list[VaultState] = [
            VaultState(
                index=i,
                accelerator=GenAsmAccelerator(
                    config, tb_config=tb_config, alphabet=alphabet
                ),
            )
            for i in range(config.vaults)
        ]

    def run_batch(self, tasks: list[tuple[str, str]]) -> BatchResult:
        """Align every (reference region, read) pair, greedily load-balanced.

        Each task goes to the currently least-busy vault — the natural
        behaviour of a host dispatching to whichever vault drains first.
        """
        if not tasks:
            raise ValueError("batch must contain at least one task")
        for vault in self.vaults:
            vault.busy_cycles = 0
            vault.completed = 0
            vault.dram_bytes = 0

        results: list[AcceleratorResult] = []
        for text, pattern in tasks:
            vault = min(self.vaults, key=lambda v: v.busy_cycles)
            result = vault.accelerator.align(text, pattern)
            vault.busy_cycles += result.total_cycles
            vault.completed += 1
            # DRAM traffic: 2-bit packed reference region + query (Section 7).
            vault.dram_bytes += (len(text) + len(pattern)) * 2 // 8
            results.append(result)

        makespan_cycles = max(vault.busy_cycles for vault in self.vaults)
        makespan_seconds = makespan_cycles / self.config.frequency_hz
        total_busy = sum(vault.busy_cycles for vault in self.vaults)
        utilization = total_busy / (makespan_cycles * len(self.vaults))
        total_dram = sum(vault.dram_bytes for vault in self.vaults)
        return BatchResult(
            results=results,
            makespan_seconds=makespan_seconds,
            throughput_per_second=len(tasks) / makespan_seconds,
            dram_bandwidth_bytes_per_s=total_dram / makespan_seconds,
            vault_utilization=utilization,
        )
