"""Cycle-level model of the GenASM-DC linear cyclic systolic array (Section 7).

GenASM-DC removes Bitap's two-level loop dependency by scheduling bitvector
computations on a wavefront (Figure 5): the cell for text character ``Ti``
and distance row ``Rd`` depends on ``Ti-1/Rd`` (oldR[d]), ``Ti/Rd-1``
(R[d-1]) and ``Ti-1/Rd-1`` (oldR[d-1]) — but not on its diagonal neighbours,
so PE ``x`` can compute ``Ti-Rd`` in the cycle after PE ``x-1`` computed
``Ti-Rd-1``. With more rows than PEs the array operates *cyclically*: rows
are striped over PEs in passes (thread 1 computes R0 then R4, as in the
figure).

This simulator builds the exact schedule, checks every dependency, counts
DC-SRAM/TB-SRAM traffic, and reports the cycle count that the closed-form
model of :mod:`repro.hardware.performance_model` must match — our version of
the paper's "verify the analytically-estimated cycle counts ... with the
cycle counts collected from our RTL simulations".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.performance_model import TB_WRITE_BITS_PER_CYCLE


@dataclass(frozen=True)
class ScheduledCell:
    """One (text iteration, distance row) cell placed on the schedule."""

    cycle: int
    pe: int
    text_index: int
    row: int


@dataclass
class SystolicSchedule:
    """The complete wavefront schedule for one window.

    Attributes
    ----------
    cells:
        Every scheduled cell, in issue order.
    total_cycles:
        Number of cycles until the last cell completes (1-based).
    dc_sram_reads, dc_sram_writes:
        Per-cycle DC-SRAM accesses for spilling/reloading row state between
        passes; the cyclic feedback keeps this at one read and one write per
        cycle per processing block, as Section 7 claims.
    tb_sram_write_bits:
        Total bits streamed to the TB-SRAMs (192 per cell: the three stored
        bitvectors at 64 bits each).
    """

    text_length: int
    rows: int
    processing_elements: int
    cells: list[ScheduledCell] = field(default_factory=list)
    total_cycles: int = 0
    dc_sram_reads: int = 0
    dc_sram_writes: int = 0
    tb_sram_write_bits: int = 0


def schedule_window(
    text_length: int,
    rows: int,
    processing_elements: int,
) -> SystolicSchedule:
    """Schedule one window's ``text_length x rows`` cells onto the PEs.

    Rows are striped over PEs in passes (row ``r`` runs on PE ``r % P`` in
    pass ``r // P``); within a pass, PE ``x`` starts one cycle after PE
    ``x-1`` and processes one text character per cycle. A pass begins after
    its PE finished the previous pass *and* its dependencies from the prior
    row (held by the neighbouring PE or spilled to DC-SRAM) are available.
    """
    if text_length <= 0 or rows <= 0 or processing_elements <= 0:
        raise ValueError("text_length, rows, processing_elements must be positive")

    p = processing_elements
    schedule = SystolicSchedule(
        text_length=text_length, rows=rows, processing_elements=p
    )
    finish: dict[tuple[int, int], int] = {}  # (text_index, row) -> cycle done

    for row in range(rows):
        pe = row % p
        for t in range(text_length):
            # Dependencies (Figure 5): oldR[d] = (t-1, row);
            # R[d-1] = (t, row-1); oldR[d-1] = (t-1, row-1).
            ready = 0
            for dep in ((t - 1, row), (t, row - 1), (t - 1, row - 1)):
                if dep[0] >= 0 and dep[1] >= 0:
                    ready = max(ready, finish.get(dep, 0))
            # PE serialization: one cell per PE per cycle.
            prev_self = finish.get((t - 1, row), 0)
            if t == 0 and row >= p:
                # Cyclic pass: the PE must have retired its previous row.
                prev_self = finish.get((text_length - 1, row - p), 0)
            start = max(ready, prev_self)
            cycle = start + 1
            finish[(t, row)] = cycle
            schedule.cells.append(
                ScheduledCell(cycle=cycle, pe=pe, text_index=t, row=row)
            )
            schedule.tb_sram_write_bits += TB_WRITE_BITS_PER_CYCLE
            if row >= p:
                schedule.dc_sram_reads += 1  # reload spilled oldR state
            if rows > p and rows - row <= p:
                schedule.dc_sram_writes += 1  # spill for a later pass

    schedule.total_cycles = max(cell.cycle for cell in schedule.cells)
    _validate(schedule, finish)
    return schedule


def _validate(schedule: SystolicSchedule, finish: dict[tuple[int, int], int]) -> None:
    """Assert no cell ran before its dependencies or overlapped on its PE."""
    by_pe_cycle: set[tuple[int, int]] = set()
    for cell in schedule.cells:
        key = (cell.pe, cell.cycle)
        if key in by_pe_cycle:
            raise AssertionError(f"PE {cell.pe} double-booked at cycle {cell.cycle}")
        by_pe_cycle.add(key)
        for dep in (
            (cell.text_index - 1, cell.row),
            (cell.text_index, cell.row - 1),
            (cell.text_index - 1, cell.row - 1),
        ):
            if dep[0] >= 0 and dep[1] >= 0 and finish[dep] >= cell.cycle:
                raise AssertionError(
                    f"dependency violation: cell {cell} needs {dep} "
                    f"finishing at {finish[dep]}"
                )


def expected_cycles(text_length: int, rows: int, processing_elements: int) -> int:
    """The analytical model's count for the same schedule.

    Re-exported from :mod:`repro.hardware.performance_model` so tests can
    assert simulator == model, mirroring the paper's RTL-vs-spreadsheet
    verification.
    """
    from repro.hardware.performance_model import wavefront_cycles

    return wavefront_cycles(text_length, rows, processing_elements)
