"""Area and power model (Table 1 of the paper).

The paper synthesizes GenASM-DC and GenASM-TB with Synopsys Design Compiler
at a typical 28 nm low-power node, 1 GHz, SRAMs from an industry compiler.
We cannot run synthesis, so — per the substitution policy in DESIGN.md —
this module encodes Table 1's component results and scales them with the
design parameters (PE count, SRAM kilobytes), preserving every derived claim
the evaluation makes: per-vault and 32-vault totals, the comparison against
a Xeon core, and the fit within the 3D-stacked logic layer's area/power
budget per vault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.performance_model import GenAsmConfig, DEFAULT_CONFIG

#: Logic-layer budget per vault (Section 9): ~3.5-4.4 mm^2, 312 mW.
VAULT_AREA_BUDGET_MM2 = 3.5
VAULT_POWER_BUDGET_W = 0.312

#: Conservative Xeon Gold 6126 per-core figures used in Section 10.1.
XEON_CORE_AREA_MM2 = 32.2
XEON_CORE_POWER_W = 10.4

# Table 1 anchors (the synthesized 64-PE, 8 KB + 64x1.5 KB design @ 28 nm).
_DC_AREA_MM2_64PE = 0.049
_DC_POWER_W_64PE = 0.033
_TB_AREA_MM2 = 0.016
_TB_POWER_W = 0.004
_DC_SRAM_AREA_MM2_8KB = 0.013
_DC_SRAM_POWER_W_8KB = 0.009
_TB_SRAM_AREA_MM2_96KB = 0.256
_TB_SRAM_POWER_W_96KB = 0.055


@dataclass(frozen=True)
class ComponentCost:
    """Area and power of one accelerator component."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class AreaPowerBreakdown:
    """Table 1 reconstructed for a given configuration."""

    components: tuple[ComponentCost, ...]
    vaults: int

    @property
    def accelerator_area_mm2(self) -> float:
        """One accelerator (one vault) — 0.334 mm^2 at the paper's point."""
        return sum(component.area_mm2 for component in self.components)

    @property
    def accelerator_power_w(self) -> float:
        """One accelerator including SRAM power — 0.101 W in the paper."""
        return sum(component.power_w for component in self.components)

    @property
    def total_area_mm2(self) -> float:
        """All vaults — 10.69 mm^2 for 32 vaults in the paper."""
        return self.accelerator_area_mm2 * self.vaults

    @property
    def total_power_w(self) -> float:
        """All vaults — 3.23 W for 32 vaults in the paper."""
        return self.accelerator_power_w * self.vaults

    def fits_logic_layer(self) -> bool:
        """Check the per-vault budget of the 3D-stacked logic layer."""
        return (
            self.accelerator_area_mm2 <= VAULT_AREA_BUDGET_MM2
            and self.accelerator_power_w <= VAULT_POWER_BUDGET_W
        )


def genasm_area_power(
    config: GenAsmConfig = DEFAULT_CONFIG,
    *,
    dc_sram_kb: float = 8.0,
    tb_sram_kb_per_pe: float = 1.5,
) -> AreaPowerBreakdown:
    """Reconstruct Table 1, scaling the anchors with the configuration.

    Logic scales with PE count; SRAM scales with kilobytes. At the default
    configuration this returns Table 1's numbers exactly.
    """
    pe_scale = config.processing_elements / 64.0
    width_scale = config.pe_width_bits / 64.0
    dc_scale = pe_scale * width_scale
    dc_sram_scale = dc_sram_kb / 8.0
    tb_sram_total_kb = tb_sram_kb_per_pe * config.processing_elements
    tb_sram_scale = tb_sram_total_kb / 96.0

    components = (
        ComponentCost(
            name=f"GenASM-DC ({config.processing_elements} PEs)",
            area_mm2=_DC_AREA_MM2_64PE * dc_scale,
            power_w=_DC_POWER_W_64PE * dc_scale,
        ),
        ComponentCost(
            name="GenASM-TB",
            area_mm2=_TB_AREA_MM2,
            power_w=_TB_POWER_W,
        ),
        ComponentCost(
            name=f"DC-SRAM ({dc_sram_kb:g} KB)",
            area_mm2=_DC_SRAM_AREA_MM2_8KB * dc_sram_scale,
            power_w=_DC_SRAM_POWER_W_8KB * dc_sram_scale,
        ),
        ComponentCost(
            name=(
                f"TB-SRAMs ({config.processing_elements} x "
                f"{tb_sram_kb_per_pe:g} KB)"
            ),
            area_mm2=_TB_SRAM_AREA_MM2_96KB * tb_sram_scale,
            power_w=_TB_SRAM_POWER_W_96KB * tb_sram_scale,
        ),
    )
    return AreaPowerBreakdown(components=components, vaults=config.vaults)


def xeon_core_comparison(
    breakdown: AreaPowerBreakdown,
) -> tuple[float, float]:
    """(area ratio, power ratio) of one Xeon core to one GenASM accelerator.

    Section 10.1's efficiency claim: a single CPU core is ~96x larger and
    ~103x more power-hungry than one GenASM accelerator.
    """
    return (
        XEON_CORE_AREA_MM2 / breakdown.accelerator_area_mm2,
        XEON_CORE_POWER_W / breakdown.accelerator_power_w,
    )
