"""Unit tests for the ``"native"`` engine and its kernel ABI shim.

Parity against the pure reference is owned by the conformance matrix and
the Hypothesis suite in ``tests/conformance/``; this file covers the
engine's *mechanics*: registration and availability gating, the per-job
pure fallback, exception parity on invalid inputs, and the picklability of
the packed-history windows (the sharded engine ships windows between
processes).
"""

import pickle

import pytest

from repro.core import kernels
from repro.core.aligner import GenAsmAligner
from repro.core.genasm_dc import WindowUnalignableError, run_dc_window
from repro.core.genasm_tb import traceback_window
from repro.engine import (
    NativeEngine,
    available_engines,
    engine_info,
    get_engine,
    registered_engines,
)

BUILT = kernels.native_available()
needs_build = pytest.mark.skipif(
    not BUILT, reason="repro.core._native is not built"
)


class TestRegistration:
    def test_native_is_registered(self):
        assert "native" in registered_engines()

    def test_availability_tracks_the_extension(self):
        assert NativeEngine.is_available() == BUILT
        assert ("native" in available_engines()) == BUILT

    def test_unavailable_reason_names_the_build(self, monkeypatch):
        monkeypatch.setattr(kernels, "_native", None)
        monkeypatch.setattr(
            kernels, "_IMPORT_ERROR", "No module named 'repro.core._native'"
        )
        assert not NativeEngine.is_available()
        reason = NativeEngine.unavailable_reason()
        assert "not built" in reason
        assert "build_ext" in reason
        assert "native" not in available_engines()
        info = {i.name: i for i in engine_info()}["native"]
        assert not info.available
        assert "build_ext" in info.reason

    def test_native_is_opt_in_not_the_default_preference(self):
        from repro.engine.registry import _DEFAULT_PREFERENCE

        assert "native" not in _DEFAULT_PREFERENCE

    @needs_build
    def test_selected_by_name(self):
        assert get_engine("native").name == "native"


@needs_build
class TestErrorParity:
    """Invalid inputs raise the same types/messages as the pure kernels."""

    def test_scan_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            get_engine("native").scan_batch([("ACGT", "AC")], -1)

    def test_scan_rejects_empty_pattern(self):
        with pytest.raises(ValueError, match="non-empty"):
            get_engine("native").scan_batch([("ACGT", "")], 2)

    def test_scan_rejects_foreign_pattern_symbol(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            get_engine("native").scan_batch([("ACGT", "AZ")], 2)

    def test_dc_rejects_empty_pattern(self):
        with pytest.raises(ValueError, match="non-empty"):
            get_engine("native").run_dc_windows([("ACGT", "")])

    def test_dc_rejects_empty_text(self):
        with pytest.raises(WindowUnalignableError, match="empty"):
            get_engine("native").run_dc_windows([("", "ACGT")])

    def test_dc_rejects_unknown_representation(self):
        with pytest.raises(ValueError, match="unknown window representation"):
            get_engine("native").run_dc_windows(
                [("ACGT", "AC")], representation="bogus"
            )

    def test_align_rejects_unknown_representation(self):
        with pytest.raises(ValueError, match="unknown window representation"):
            get_engine("native").align_batch(
                [("ACGT", "AC")], window_representation="bogus"
            )

    def test_align_rejects_bad_window_geometry(self):
        engine = get_engine("native")
        with pytest.raises(ValueError, match="window_size"):
            engine.align_batch([("ACGT", "AC")], window_size=0)
        with pytest.raises(ValueError, match="overlap"):
            engine.align_batch([("ACGT", "AC")], window_size=8, overlap=8)


@needs_build
class TestFallbacks:
    def test_edges_representation_falls_back_to_reference_windows(self):
        from repro.core.genasm_dc import WindowBitvectors

        windows = get_engine("native").run_dc_windows(
            [("ACGT", "ACGT")], representation="edges"
        )
        assert isinstance(windows[0], WindowBitvectors)

    def test_sene_windows_are_native(self):
        windows = get_engine("native").run_dc_windows([("ACGT", "ACGT")])
        assert isinstance(windows[0], kernels.NativeWindow)

    def test_oversize_window_pattern_falls_back(self):
        from repro.core.genasm_dc import SeneWindowBitvectors

        windows = get_engine("native").run_dc_windows([("A" * 80, "A" * 80)])
        assert isinstance(windows[0], SeneWindowBitvectors)

    def test_empty_pattern_aligns_to_empty_cigar(self):
        alignment = get_engine("native").align_batch([("ACGT", "")])[0]
        assert str(alignment.cigar) == ""
        assert alignment.text_consumed == 0

    def test_empty_text_aligns_pattern_as_insertions(self):
        pure = GenAsmAligner(engine="pure").align("", "ACGT")
        native = GenAsmAligner(engine="native").align("", "ACGT")
        assert str(native.cigar) == str(pure.cigar)
        assert "I" in str(native.cigar)

    def test_non_latin1_text_falls_back_to_pure_scan(self):
        pure = get_engine("pure").scan_batch([("ACΔGT", "ACGT")], 3)
        native = get_engine("native").scan_batch([("ACΔGT", "ACGT")], 3)
        assert native == pure

    def test_mixed_batch_keeps_input_order(self):
        pairs = [
            ("ACGTACGT", "ACGT"),
            ("ACGT", ""),  # empty pattern: handled without the C loop
            ("ACΔGT" * 10, "ACGT"),  # non-latin-1: generic loop
            ("", "GGGG"),  # text exhausted immediately
        ]
        pure = GenAsmAligner(engine="pure").align_batch(pairs)
        native = GenAsmAligner(engine="native").align_batch(pairs)
        assert [str(a.cigar) for a in native] == [
            str(a.cigar) for a in pure
        ]
        assert [a.text_consumed for a in native] == [
            a.text_consumed for a in pure
        ]


@needs_build
class TestNativeWindow:
    def test_window_pickles_and_traces_after_round_trip(self):
        window = kernels.native_dc_window("ACGTACGT", "ACGAACGT")
        clone = pickle.loads(pickle.dumps(window))
        original = traceback_window(window, consume_limit=8)
        restored = traceback_window(clone, consume_limit=8)
        assert restored == original

    def test_generic_walk_matches_native_walk_on_same_window(self):
        """Force the pure opcode loop over the packed history."""
        window = kernels.native_dc_window("ACGTTACG", "AGGTTACG")
        native = traceback_window(window, consume_limit=6)
        window.native_traceback = lambda *args: None  # disable the C walk
        generic = traceback_window(window, consume_limit=6)
        assert generic == native

    def test_stored_bits_matches_sene_accounting(self):
        pure = run_dc_window("ACGTACG", "ACGTAAG")
        native = kernels.native_dc_window("ACGTACG", "ACGTAAG")
        assert native.stored_bits() == pure.stored_bits()
