"""Property tests: the batched backend is bit-identical to the pure one.

These tests are the contract every backend must honor — distances, match
lists, stored DC bitvectors, CIGARs, and filter decisions must all match
the pure-Python reference exactly, across wildcard symbols, ``k = 0``,
ragged batch shapes, and multi-word (> 64 bp) patterns.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

pytest.importorskip("numpy")

from repro.core.aligner import GenAsmAligner
from repro.core.bitap import bitap_scan
from repro.core.genasm_dc import run_dc_window
from repro.core.prefilter import GenAsmFilter
from repro.engine import BatchedEngine, PurePythonEngine

# min_batch=1 forces the NumPy path even for singleton batches, so the
# vectorized kernel itself is what gets exercised.
PURE = PurePythonEngine()
BATCHED = BatchedEngine(min_batch=1)

dna_text = st.text(alphabet="ACGTN", min_size=0, max_size=48)
dna_pattern = st.text(alphabet="ACGTN", min_size=1, max_size=72)
batches = st.lists(
    st.tuples(dna_text, dna_pattern), min_size=1, max_size=10
)


def assert_windows_equal(expected, actual):
    """Semantic window parity, representation-agnostic.

    The pure backend returns SENE windows holding big-int ``R`` rows; the
    batched backend returns packed uint64 windows. Both must expose the
    same ``R`` history and derive identical traceback edge vectors at
    every (iteration, distance) cell.
    """
    assert expected.text == actual.text
    assert expected.pattern == actual.pattern
    assert expected.k == actual.k
    assert expected.edit_distance == actual.edit_distance
    assert expected.r_rows() == actual.r_rows()
    for i in range(expected.text_length):
        for d in range(expected.k + 1):
            assert expected.edge_vectors(i, d) == actual.edge_vectors(i, d)


class TestScanParity:
    @settings(max_examples=120, deadline=None)
    @given(pairs=batches, k=st.integers(min_value=0, max_value=6))
    def test_full_scan_matches_pure(self, pairs, k):
        assert BATCHED.scan_batch(pairs, k) == PURE.scan_batch(pairs, k)

    @settings(max_examples=80, deadline=None)
    @given(pairs=batches, k=st.integers(min_value=0, max_value=6))
    def test_first_match_only_matches_pure(self, pairs, k):
        batched = BATCHED.scan_batch(pairs, k, first_match_only=True)
        pure = PURE.scan_batch(pairs, k, first_match_only=True)
        assert batched == pure

    @settings(max_examples=80, deadline=None)
    @given(pairs=batches, k=st.integers(min_value=0, max_value=8))
    def test_edit_distance_matches_pure(self, pairs, k):
        batched = BATCHED.edit_distance_batch(pairs, k)
        pure = PURE.edit_distance_batch(pairs, k)
        assert batched == pure

    def test_scan_matches_scalar_kernel_directly(self):
        rng = random.Random(0xBEEF)
        pairs = [
            (
                "".join(rng.choice("ACGTN") for _ in range(rng.randint(0, 60))),
                "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 80))),
            )
            for _ in range(32)
        ]
        k = 4
        batched = BATCHED.scan_batch(pairs, k)
        for (text, pattern), matches in zip(pairs, batched):
            assert matches == bitap_scan(text, pattern, k)

    def test_k_zero_exact_matches(self):
        pairs = [("AAACGTAAA", "ACGT"), ("TTTT", "ACGT"), ("ACGTACGT", "ACGT")]
        assert BATCHED.scan_batch(pairs, 0) == PURE.scan_batch(pairs, 0)

    def test_multiword_patterns(self):
        """Patterns past 64 bp exercise the cross-word carry chain."""
        rng = random.Random(0xFACADE)
        pairs = [
            (
                "".join(rng.choice("ACGT") for _ in range(rng.randint(80, 220))),
                "".join(rng.choice("ACGT") for _ in range(rng.randint(65, 200))),
            )
            for _ in range(12)
        ]
        for k in (0, 3, 17):
            assert BATCHED.scan_batch(pairs, k) == PURE.scan_batch(pairs, k)

    def test_large_k_crosses_strategy_cutoff(self):
        """Batches big enough to switch the kernel to the sequential chain."""
        rng = random.Random(0xD00D)
        pairs = [
            (
                "".join(rng.choice("ACGT") for _ in range(280)),
                "".join(rng.choice("ACGT") for _ in range(250)),
            )
            for _ in range(48)
        ]
        k = 37
        assert BATCHED.scan_batch(pairs, k) == PURE.scan_batch(pairs, k)

    def test_wildcard_heavy_pairs(self):
        pairs = [("NNNN", "NN"), ("ANGT", "ANGT"), ("NNNNNNN", "ACGT")]
        for k in (0, 1, 2):
            assert BATCHED.scan_batch(pairs, k) == PURE.scan_batch(pairs, k)

    def test_empty_batch(self):
        assert BATCHED.scan_batch([], 3) == []

    def test_empty_texts(self):
        pairs = [("", "ACGT"), ("ACGT", "ACGT"), ("", "GG")]
        assert BATCHED.scan_batch(pairs, 2) == PURE.scan_batch(pairs, 2)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            BATCHED.scan_batch([("ACGT", ""), ("ACGT", "A")], 1)


class TestDcWindowParity:
    @settings(max_examples=80, deadline=None)
    @given(
        jobs=st.lists(
            st.tuples(
                st.text(alphabet="ACGTN", min_size=1, max_size=64),
                st.text(alphabet="ACGTN", min_size=1, max_size=64),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_windows_match_pure(self, jobs):
        for expected, actual in zip(
            PURE.run_dc_windows(jobs), BATCHED.run_dc_windows(jobs)
        ):
            assert_windows_equal(expected, actual)

    def test_budget_doubling_schedule_replayed(self):
        """Dissimilar windows force budget retries; k must match pure's."""
        jobs = [
            ("A" * 40, "T" * 40),  # needs the full budget ladder
            ("ACGT" * 10, "ACGT" * 10),  # solves at the initial budget
            ("AC", "TG"),  # short pattern clamps the initial budget
        ]
        for expected, actual in zip(
            PURE.run_dc_windows(jobs), BATCHED.run_dc_windows(jobs)
        ):
            assert_windows_equal(expected, actual)

    def test_matches_scalar_kernel_directly(self):
        jobs = [("ACGTTGCA", "ACGTGCA"), ("GGGG", "GGG"), ("TTTTT", "TATAT")]
        for (text, pattern), window in zip(jobs, BATCHED.run_dc_windows(jobs)):
            assert_windows_equal(run_dc_window(text, pattern), window)

    def test_empty_text_raises_like_pure(self):
        from repro.core.genasm_dc import WindowUnalignableError

        with pytest.raises(WindowUnalignableError):
            BATCHED.run_dc_windows([("ACGT", "ACGT"), ("", "ACGT")])

    def test_edges_representation_delegates_to_reference(self):
        """The legacy edge-store layout stays available from every backend."""
        from repro.core.genasm_dc import WindowBitvectors

        jobs = [("ACGTTGCA", "ACGTGCA"), ("GGGG", "GGG"), ("TTTTT", "TATAT")]
        pure_windows = PURE.run_dc_windows(jobs, representation="edges")
        batched_windows = BATCHED.run_dc_windows(jobs, representation="edges")
        for expected, actual in zip(pure_windows, batched_windows):
            assert isinstance(actual, WindowBitvectors)
            assert expected == actual

    def test_packed_windows_are_zero_copy_views(self):
        """Batched SENE windows wrap views of the batch history store."""
        np = pytest.importorskip("numpy")
        jobs = [("ACGTTGCA", "ACGTGCA")] * 9
        windows = BATCHED.run_dc_windows(jobs)
        for window in windows:
            assert isinstance(window.r_words, np.ndarray)
            assert window.r_words.base is not None  # a view, not a copy

    def test_packed_window_pickle_roundtrip(self):
        """Sharded IPC ships the word array; unpickled windows re-derive."""
        import pickle

        jobs = [("ACGTTGCA" * 10, "ACGTGCA" * 10)] * 9  # multi-word patterns
        for window in BATCHED.run_dc_windows(jobs):
            clone = pickle.loads(pickle.dumps(window))
            assert clone.r_rows() == window.r_rows()
            assert clone.edit_distance == window.edit_distance
            for d in range(window.k + 1):
                assert clone.edge_vectors(0, d) == window.edge_vectors(0, d)


class TestAlignerParity:
    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.text(alphabet="ACGT", min_size=0, max_size=90),
                st.text(alphabet="ACGT", min_size=1, max_size=80),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_align_batch_cigars_match_pure(self, pairs):
        pure_aligner = GenAsmAligner(engine=PURE)
        batched_aligner = GenAsmAligner(engine=BATCHED)
        expected = [pure_aligner.align(t, p) for t, p in pairs]
        actual = batched_aligner.align_batch(pairs)
        for exp, act in zip(expected, actual):
            assert str(exp.cigar) == str(act.cigar)
            assert exp.edit_distance == act.edit_distance
            assert exp.text_consumed == act.text_consumed


class TestFilterParity:
    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(dna_text, st.text(alphabet="ACGTN", max_size=40)),
            min_size=1,
            max_size=12,
        ),
        threshold=st.integers(min_value=0, max_value=8),
    )
    def test_decisions_match_pure(self, pairs, threshold):
        pure_filter = GenAsmFilter(threshold, engine=PURE)
        batched_filter = GenAsmFilter(threshold, engine=BATCHED)
        assert batched_filter.decide_batch(pairs) == pure_filter.decide_batch(
            pairs
        )

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(dna_text, st.text(alphabet="ACGTN", max_size=40)),
            min_size=1,
            max_size=12,
        ),
        threshold=st.integers(min_value=0, max_value=8),
    )
    def test_accepts_batch_agrees_with_decide_batch(self, pairs, threshold):
        batched_filter = GenAsmFilter(threshold, engine=BATCHED)
        decisions = batched_filter.decide_batch(pairs)
        verdicts = batched_filter.accepts_batch(pairs)
        assert verdicts == [decision.accepted for decision in decisions]
