"""Unit tests for the backend registry and engine resolution."""

import pytest

from repro.engine import (
    ENGINE_ENV_VAR,
    AlignmentEngine,
    BatchedEngine,
    PurePythonEngine,
    UnknownEngineError,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
    registered_engines,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_engines()
        assert "pure" in names
        assert "batched" in names

    def test_pure_always_available(self):
        assert "pure" in available_engines()

    def test_get_engine_by_name(self):
        assert isinstance(get_engine("pure"), PurePythonEngine)

    def test_get_engine_caches_instances(self):
        assert get_engine("pure") is get_engine("pure")

    def test_instance_passes_through(self):
        engine = PurePythonEngine()
        assert get_engine(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownEngineError):
            get_engine("definitely-not-a-backend")

    def test_default_prefers_batched_when_available(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        expected = "batched" if BatchedEngine.is_available() else "pure"
        assert default_engine_name() == expected

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "pure")
        assert default_engine_name() == "pure"
        assert isinstance(get_engine(), PurePythonEngine)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_engine(PurePythonEngine)

    def test_custom_backend_registration(self):
        class NullEngine(PurePythonEngine):
            name = "null-test-backend"

        try:
            register_engine(NullEngine)
            assert "null-test-backend" in registered_engines()
            assert isinstance(get_engine("null-test-backend"), NullEngine)
        finally:
            from repro.engine import registry

            registry._REGISTRY.pop("null-test-backend", None)
            registry._INSTANCES.pop("null-test-backend", None)

    def test_abstract_name_rejected(self):
        class Anonymous(PurePythonEngine):
            name = AlignmentEngine.name

        with pytest.raises(ValueError):
            register_engine(Anonymous)

    def test_unavailable_backend_rejected(self):
        class Ghost(PurePythonEngine):
            name = "ghost-test-backend"

            @classmethod
            def is_available(cls):
                return False

        try:
            register_engine(Ghost)
            assert "ghost-test-backend" not in available_engines()
            with pytest.raises(UnknownEngineError):
                get_engine("ghost-test-backend")
        finally:
            from repro.engine import registry

            registry._REGISTRY.pop("ghost-test-backend", None)


class TestBatchedConstruction:
    def test_min_batch_validated(self):
        pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            BatchedEngine(min_batch=0)

    def test_negative_k_rejected(self):
        pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            BatchedEngine().scan_batch([("ACGT", "ACGT")] * 4, -1)
