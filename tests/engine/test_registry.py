"""Unit tests for the backend registry and engine resolution."""

import random
import warnings

import pytest

from repro.engine import (
    ENGINE_ENV_VAR,
    AlignmentEngine,
    BatchedEngine,
    EngineInfo,
    PurePythonEngine,
    UnknownEngineError,
    available_engines,
    default_engine_name,
    engine_info,
    get_engine,
    register_engine,
    registered_engines,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_engines()
        assert "pure" in names
        assert "batched" in names

    def test_pure_always_available(self):
        assert "pure" in available_engines()

    def test_get_engine_by_name(self):
        assert isinstance(get_engine("pure"), PurePythonEngine)

    def test_get_engine_caches_instances(self):
        assert get_engine("pure") is get_engine("pure")

    def test_instance_passes_through(self):
        engine = PurePythonEngine()
        assert get_engine(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownEngineError):
            get_engine("definitely-not-a-backend")

    def test_default_prefers_batched_when_available(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        expected = "batched" if BatchedEngine.is_available() else "pure"
        assert default_engine_name() == expected

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "pure")
        assert default_engine_name() == "pure"
        assert isinstance(get_engine(), PurePythonEngine)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_engine(PurePythonEngine)

    def test_custom_backend_registration(self):
        class NullEngine(PurePythonEngine):
            name = "null-test-backend"

        try:
            register_engine(NullEngine)
            assert "null-test-backend" in registered_engines()
            assert isinstance(get_engine("null-test-backend"), NullEngine)
        finally:
            from repro.engine import registry

            registry._REGISTRY.pop("null-test-backend", None)
            registry._INSTANCES.pop("null-test-backend", None)

    def test_abstract_name_rejected(self):
        class Anonymous(PurePythonEngine):
            name = AlignmentEngine.name

        with pytest.raises(ValueError):
            register_engine(Anonymous)

    def test_unavailable_backend_rejected(self):
        class Ghost(PurePythonEngine):
            name = "ghost-test-backend"

            @classmethod
            def is_available(cls):
                return False

        try:
            register_engine(Ghost)
            assert "ghost-test-backend" not in available_engines()
            with pytest.raises(UnknownEngineError):
                get_engine("ghost-test-backend")
        finally:
            from repro.engine import registry

            registry._REGISTRY.pop("ghost-test-backend", None)


class TestEnvVarValidation:
    """A bad REPRO_ENGINE degrades with a warning instead of a late error."""

    @pytest.fixture(autouse=True)
    def fresh_env_memo(self):
        """Each test sees an un-memoized env resolution (warn-once memo)."""
        from repro.engine import registry

        registry._ENV_RESOLUTIONS.clear()
        yield
        registry._ENV_RESOLUTIONS.clear()

    def test_bogus_env_value_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "definitely-not-a-backend")
        with pytest.warns(RuntimeWarning, match="registered"):
            name = default_engine_name()
        assert name in available_engines()

    def test_bogus_env_value_get_engine_still_works(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "definitely-not-a-backend")
        with pytest.warns(RuntimeWarning):
            engine = get_engine()
        assert isinstance(engine, AlignmentEngine)

    def test_unavailable_env_value_falls_back_with_reason(self, monkeypatch):
        class Broken(PurePythonEngine):
            name = "broken-test-backend"

            @classmethod
            def is_available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "synthetic test failure"

        from repro.engine import registry

        try:
            register_engine(Broken)
            monkeypatch.setenv(ENGINE_ENV_VAR, "broken-test-backend")
            with pytest.warns(RuntimeWarning, match="synthetic test failure"):
                name = default_engine_name()
            assert name in available_engines()
        finally:
            registry._REGISTRY.pop("broken-test-backend", None)

    def test_valid_env_value_no_warning(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "pure")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_engine_name() == "pure"

    def test_explicit_bogus_name_still_raises(self, monkeypatch):
        # Only the ambient env default degrades; explicit specs stay strict.
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        with pytest.raises(UnknownEngineError):
            get_engine("definitely-not-a-backend")

    def test_fallback_warning_fires_once_per_env_value(self, monkeypatch):
        """Regression: the env-fallback warning is memoized, not per-call."""
        monkeypatch.setenv(ENGINE_ENV_VAR, "definitely-not-a-backend")
        with pytest.warns(RuntimeWarning, match="registered"):
            first = default_engine_name()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Every later resolution (and get_engine) is silent and stable.
            assert default_engine_name() == first
            assert isinstance(get_engine(), AlignmentEngine)

    def test_memo_invalidated_by_new_registration(self, monkeypatch):
        """Registering the named backend revalidates the env value."""
        from repro.engine import registry

        monkeypatch.setenv(ENGINE_ENV_VAR, "late-test-backend")
        with pytest.warns(RuntimeWarning):
            default_engine_name()

        class Late(PurePythonEngine):
            name = "late-test-backend"

        try:
            register_engine(Late)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert default_engine_name() == "late-test-backend"
        finally:
            registry._REGISTRY.pop("late-test-backend", None)
            registry._INSTANCES.pop("late-test-backend", None)


class TestEngineInfo:
    def test_info_covers_all_registered(self):
        infos = {info.name: info for info in engine_info()}
        assert set(infos) == set(registered_engines())

    def test_available_info_has_workers_and_no_reason(self):
        infos = {info.name: info for info in engine_info()}
        pure = infos["pure"]
        assert pure.available and pure.reason is None and pure.workers == 1

    def test_detailed_available_engines(self):
        detailed = available_engines(detailed=True)
        assert all(isinstance(info, EngineInfo) for info in detailed)
        assert [info.name for info in detailed] == available_engines()
        assert all(info.available for info in detailed)

    def test_unavailable_backend_reports_reason(self):
        class Ghost(PurePythonEngine):
            name = "ghost-info-backend"

            @classmethod
            def is_available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "haunted"

        from repro.engine import registry

        try:
            register_engine(Ghost)
            infos = {info.name: info for info in engine_info()}
            ghost = infos["ghost-info-backend"]
            assert not ghost.available
            assert ghost.reason == "haunted"
            assert ghost.workers == 0
            assert "ghost-info-backend" not in [
                info.name for info in available_engines(detailed=True)
            ]
        finally:
            registry._REGISTRY.pop("ghost-info-backend", None)


class TestAllBackendsUnavailable:
    """Registry behavior when nothing can run (satellite coverage)."""

    @pytest.fixture
    def empty_world(self, monkeypatch):
        class Dead(PurePythonEngine):
            name = "dead-test-backend"

            @classmethod
            def is_available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "simulated outage"

        from repro.engine import registry

        monkeypatch.setattr(registry, "_REGISTRY", {"dead-test-backend": Dead})
        monkeypatch.setattr(registry, "_INSTANCES", {})
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)

    def test_default_engine_name_raises_with_reasons(self, empty_world):
        with pytest.raises(UnknownEngineError, match="simulated outage"):
            default_engine_name()

    def test_available_engines_empty(self, empty_world):
        assert available_engines() == []
        assert available_engines(detailed=True) == []

    def test_env_fallback_also_raises(self, empty_world, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "bogus")
        with pytest.raises(UnknownEngineError):
            default_engine_name()


class TestEditDistanceBatchAcrossBackends:
    """Direct coverage of edit_distance_batch for every registered backend."""

    CASES = [
        ("ACGTACGTACGT", "ACGTACGT"),  # clean prefix match
        ("ACGTACGT", "TTTTTTTT"),  # hopeless pair
        ("ACGT", "ACGTACGTACGT"),  # pattern longer than text
        ("A" * 70 + "CGT" * 10, "A" * 68 + "CGT" * 10),  # multi-word
    ]

    @pytest.mark.parametrize("name", available_engines())
    def test_matches_pure_reference(self, name):
        engine = get_engine(name)
        expected = PurePythonEngine().edit_distance_batch(self.CASES, 6)
        assert engine.edit_distance_batch(self.CASES, 6) == expected

    @pytest.mark.parametrize("name", available_engines())
    def test_randomized_batch_matches_pure(self, name):
        rng = random.Random(0xED17)
        pairs = [
            (
                "".join(rng.choice("ACGT") for _ in range(rng.randint(5, 90))),
                "".join(rng.choice("ACGT") for _ in range(rng.randint(1, 80))),
            )
            for _ in range(24)
        ]
        engine = get_engine(name)
        for k in (0, 4, 11):
            assert engine.edit_distance_batch(pairs, k) == (
                PurePythonEngine().edit_distance_batch(pairs, k)
            )

    @pytest.mark.parametrize("name", available_engines())
    def test_none_above_threshold(self, name):
        engine = get_engine(name)
        distances = engine.edit_distance_batch(
            [("AAAAAAAA", "TTTTTTTT")] * 9, 2
        )
        assert distances == [None] * 9

    @pytest.mark.parametrize("name", available_engines())
    def test_empty_batch(self, name):
        assert get_engine(name).edit_distance_batch([], 3) == []


class TestBatchedConstruction:
    def test_min_batch_validated(self):
        pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            BatchedEngine(min_batch=0)

    def test_negative_k_rejected(self):
        pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            BatchedEngine().scan_batch([("ACGT", "ACGT")] * 4, -1)
