"""Hypothesis properties every engine backend must satisfy.

Beyond pairwise parity (covered by the conformance matrix and
``test_engine_parity``), the engines must obey the *semantic* invariants of
semi-global edit distance and of CIGAR transcripts — identity, substring
containment, threshold monotonicity, and the round trip from an alignment
back to the sequences it claims to relate.
"""

from hypothesis import given, settings, strategies as st

from repro.core.aligner import GenAsmAligner
from repro.engine import available_engines, get_engine

#: In-process backends; the sharded backend routes small batches to these
#: same kernels, and its pool path is covered by the conformance suite.
BACKENDS = [name for name in available_engines() if name != "sharded"]

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(sequence=dna, k=st.integers(min_value=0, max_value=4))
def test_identity_distance_is_zero(sequence, k):
    for name in BACKENDS:
        assert get_engine(name).edit_distance_batch(
            [(sequence, sequence)], k
        ) == [0]


@settings(max_examples=60, deadline=None)
@given(
    text=dna,
    start=st.integers(min_value=0, max_value=39),
    length=st.integers(min_value=1, max_value=40),
    k=st.integers(min_value=0, max_value=3),
)
def test_substring_distance_is_zero(text, start, length, k):
    pattern = text[start : start + length]
    if not pattern:
        return
    for name in BACKENDS:
        assert get_engine(name).edit_distance_batch(
            [(text, pattern)], k
        ) == [0]


@settings(max_examples=60, deadline=None)
@given(
    text=dna,
    pattern=dna,
    k_small=st.integers(min_value=0, max_value=4),
    extra=st.integers(min_value=1, max_value=6),
)
def test_distance_monotone_in_threshold(text, pattern, k_small, extra):
    """Raising k may reveal a distance, never change a revealed one."""
    for name in BACKENDS:
        backend = get_engine(name)
        small = backend.edit_distance_batch([(text, pattern)], k_small)[0]
        large = backend.edit_distance_batch(
            [(text, pattern)], k_small + extra
        )[0]
        if small is not None:
            assert large == small
        elif large is not None:
            assert large > k_small


@settings(max_examples=50, deadline=None)
@given(text=dna, pattern=dna)
def test_cigar_reconstructs_the_alignment(text, pattern):
    """The emitted CIGAR must replay ``pattern`` against ``text`` exactly.

    ``is_valid_for`` re-walks the transcript against both sequences: every
    M must match, every S must mismatch, and the query must be consumed in
    full — so passing it *is* the round trip.
    """
    for name in BACKENDS:
        alignment = GenAsmAligner(engine=get_engine(name)).align(
            text, pattern
        )
        assert alignment.cigar.is_valid_for(text, pattern)
        assert alignment.cigar.query_length == len(pattern)
        assert alignment.cigar.reference_length == alignment.text_consumed
        assert alignment.cigar.edit_distance == alignment.edit_distance
        assert alignment.text_consumed <= len(text)


@settings(max_examples=40, deadline=None)
@given(
    text=dna,
    pattern=dna,
    k=st.integers(min_value=0, max_value=5),
)
def test_scan_distances_within_threshold(text, pattern, k):
    """Every reported match respects k; the minimum equals edit_distance."""
    for name in BACKENDS:
        backend = get_engine(name)
        matches = backend.scan_batch([(text, pattern)], k)[0]
        for match in matches:
            assert 0 <= match.distance <= k
            assert 0 <= match.start < max(1, len(text))
        distance = backend.edit_distance_batch([(text, pattern)], k)[0]
        if matches:
            assert distance == min(m.distance for m in matches)
        else:
            assert distance is None
