"""Batch entry points: aligner, filter, and the read-mapping pipeline.

The batch APIs must be drop-in equivalents of their scalar counterparts —
same records, same stats, same decisions — regardless of backend.
"""

import pytest

from repro.core.aligner import GenAsmAligner
from repro.core.prefilter import GenAsmFilter
from repro.engine import PurePythonEngine, available_engines
from repro.mapping.pipeline import ReadMapper, make_genasm_mapper
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads

ENGINES = available_engines()


@pytest.fixture(scope="module")
def genome():
    return synthesize_genome(8_000, seed=11, name="batchref")


@pytest.fixture(scope="module")
def reads(genome):
    return simulate_reads(
        genome,
        count=12,
        read_length=80,
        profile=illumina_profile(0.04),
        seed=23,
    )


class TestAlignerBatchApi:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_align_batch_equals_scalar_align(self, engine, rng):
        from tests.conftest import random_dna

        aligner = GenAsmAligner(engine=engine)
        pairs = [
            (random_dna(rng.randint(20, 120), rng), random_dna(rng.randint(10, 100), rng))
            for _ in range(9)
        ]
        batched = aligner.align_batch(pairs)
        for (text, pattern), alignment in zip(pairs, batched):
            solo = aligner.align(text, pattern)
            assert str(solo.cigar) == str(alignment.cigar)
            assert solo.edit_distance == alignment.edit_distance
            assert solo.text_consumed == alignment.text_consumed
            assert alignment.cigar.is_valid_for(text, pattern)

    def test_align_batch_preserves_input_order(self):
        aligner = GenAsmAligner()
        pairs = [("ACGTACGT", "ACGT"), ("TTTT", "TTTT"), ("ACGT", "AGT")]
        results = aligner.align_batch(pairs)
        assert len(results) == len(pairs)
        for (text, pattern), alignment in zip(pairs, results):
            assert alignment.cigar.query_length == len(pattern)

    def test_align_batch_empty(self):
        assert GenAsmAligner().align_batch([]) == []


class TestFilterBatchApi:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_accepts_batch_equals_scalar(self, engine, rng):
        from tests.conftest import random_dna

        filt = GenAsmFilter(4, engine=engine)
        pairs = [
            (random_dna(rng.randint(0, 60), rng), random_dna(rng.randint(0, 40), rng))
            for _ in range(16)
        ]
        scalar = [
            GenAsmFilter(4, engine=PurePythonEngine()).accepts(ref, read)
            for ref, read in pairs
        ]
        assert filt.accepts_batch(pairs) == scalar

    def test_filter_pairs_is_batched_decide(self):
        filt = GenAsmFilter(2)
        pairs = [("ACGTACGT", "ACGT"), ("AAAA", "TTTT"), ("", "A"), ("A", "")]
        assert filt.filter_pairs(pairs) == filt.decide_batch(pairs)


class TestPipelineBatching:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_mapper_results_identical_across_backends(
        self, genome, reads, engine
    ):
        reference = make_genasm_mapper(genome, engine="pure")
        candidate = make_genasm_mapper(genome, engine=engine)
        for read in reads:
            expected = reference.map_read(read.name, read.sequence)
            actual = candidate.map_read(read.name, read.sequence)
            assert expected.record.to_line() == actual.record.to_line()
            assert expected.candidate_position == actual.candidate_position
            assert expected.reverse == actual.reverse
        assert reference.stats == candidate.stats

    def test_stats_track_batched_stages(self, genome, reads):
        mapper = make_genasm_mapper(genome)
        for read in reads:
            mapper.map_read(read.name, read.sequence)
        stats = mapper.stats
        assert stats.reads == len(reads)
        assert stats.candidates >= stats.alignments_run + stats.filtered_out
        assert stats.mapped > 0

    def test_custom_scalar_filter_still_supported(self, genome, reads):
        class ScalarOnlyFilter:
            """A PairFilter without accepts_batch (legacy duck type)."""

            def __init__(self):
                self.inner = GenAsmFilter(30, engine="pure")

            def accepts(self, reference, read):
                return self.inner.accepts(reference, read)

        batched = make_genasm_mapper(genome)
        scalar = make_genasm_mapper(genome)
        scalar.prefilter = ScalarOnlyFilter()
        read = reads[0]
        expected = batched.map_read(read.name, read.sequence)
        actual = scalar.map_read(read.name, read.sequence)
        assert expected.record.to_line() == actual.record.to_line()

    def test_custom_scalar_aligner_still_supported(self, genome, reads):
        calls = []

        def spy_aligner(region, read):
            calls.append((region, read))
            return GenAsmAligner().align(region, read)

        mapper = ReadMapper(
            genome=genome,
            index=make_genasm_mapper(genome).index,
            aligner=spy_aligner,
        )
        result = mapper.map_read(reads[0].name, reads[0].sequence)
        assert calls, "custom scalar aligner was never invoked"
        assert result.record is not None
