"""Parity and behavior tests for the process-pool sharded backend.

The sharded backend must be bit-identical to the pure reference across
every surface — scan matches, distances, stored DC bitvectors, CIGARs, and
filter decisions — regardless of how the batch is chunked across workers.
One module-scoped 2-worker engine is shared by all tests so the pool spawn
cost is paid once (this is also the configuration CI's serving job runs).
"""

import random

import pytest

from repro.core.aligner import GenAsmAligner
from repro.core.genasm_dc import WindowUnalignableError
from repro.core.prefilter import GenAsmFilter
from repro.engine import PurePythonEngine, ShardedEngine, get_engine

PURE = PurePythonEngine()


@pytest.fixture(scope="module")
def sharded():
    # min_batch=1 forces the chunked path even for small batches, so the
    # IPC fan-out itself is what gets exercised.
    engine = ShardedEngine(workers=2, min_batch=1)
    yield engine
    engine.close()


def random_pairs(count, text_range, pattern_range, seed):
    rng = random.Random(seed)
    return [
        (
            "".join(
                rng.choice("ACGTN") for _ in range(rng.randint(*text_range))
            ),
            "".join(
                rng.choice("ACGT") for _ in range(rng.randint(*pattern_range))
            ),
        )
        for _ in range(count)
    ]


class TestShardedScanParity:
    def test_full_scan_matches_pure(self, sharded):
        pairs = random_pairs(37, (0, 80), (1, 90), seed=0xA1)
        for k in (0, 2, 5):
            assert sharded.scan_batch(pairs, k) == PURE.scan_batch(pairs, k)

    def test_first_match_only_matches_pure(self, sharded):
        pairs = random_pairs(23, (0, 60), (1, 50), seed=0xA2)
        assert sharded.scan_batch(
            pairs, 3, first_match_only=True
        ) == PURE.scan_batch(pairs, 3, first_match_only=True)

    def test_edit_distance_matches_pure(self, sharded):
        pairs = random_pairs(29, (10, 120), (5, 100), seed=0xA3)
        assert sharded.edit_distance_batch(pairs, 9) == (
            PURE.edit_distance_batch(pairs, 9)
        )

    def test_order_preserved_across_chunks(self, sharded):
        # Every pair unique, so any chunk-reassembly mix-up is visible.
        pairs = [("ACGT" * (i % 7 + 1), "ACGT" * (i % 5 + 1)) for i in range(41)]
        expected = PURE.scan_batch(pairs, 2)
        assert sharded.scan_batch(pairs, 2) == expected

    def test_empty_batch(self, sharded):
        assert sharded.scan_batch([], 3) == []

    def test_negative_k_rejected(self, sharded):
        with pytest.raises(ValueError):
            sharded.scan_batch([("ACGT", "ACGT")] * 4, -1)


class TestShardedDcParity:
    def test_windows_match_pure(self, sharded):
        # Windows cross the IPC boundary as compact SENE payloads (packed
        # uint64 words from batched workers); the unpickled windows must
        # reproduce the reference R history and derived edges exactly.
        jobs = random_pairs(21, (1, 64), (1, 64), seed=0xB1)
        for expected, actual in zip(
            PURE.run_dc_windows(jobs), sharded.run_dc_windows(jobs)
        ):
            assert expected.text == actual.text
            assert expected.pattern == actual.pattern
            assert expected.k == actual.k
            assert expected.edit_distance == actual.edit_distance
            assert expected.r_rows() == actual.r_rows()
            for d in range(expected.k + 1):
                assert expected.edge_vectors(0, d) == actual.edge_vectors(0, d)

    def test_worker_exception_propagates(self, sharded):
        jobs = [("ACGT", "ACGT")] * 10 + [("", "ACGT")]
        with pytest.raises(WindowUnalignableError):
            sharded.run_dc_windows(jobs)


class TestShardedAlignParity:
    def test_cigars_match_pure(self, sharded):
        pairs = random_pairs(15, (20, 200), (10, 180), seed=0xC1)
        pure_aligner = GenAsmAligner(engine=PURE)
        sharded_aligner = GenAsmAligner(engine=sharded)
        expected = [pure_aligner.align(t, p) for t, p in pairs]
        actual = sharded_aligner.align_batch(pairs)
        for exp, act in zip(expected, actual):
            assert str(exp.cigar) == str(act.cigar)
            assert exp.edit_distance == act.edit_distance
            assert exp.text_consumed == act.text_consumed

    def test_filter_decisions_match_pure(self, sharded):
        pairs = random_pairs(31, (0, 60), (1, 40), seed=0xC2)
        pure_filter = GenAsmFilter(4, engine=PURE)
        sharded_filter = GenAsmFilter(4, engine=sharded)
        assert sharded_filter.decide_batch(pairs) == (
            pure_filter.decide_batch(pairs)
        )
        assert sharded_filter.accepts_batch(pairs) == (
            pure_filter.accepts_batch(pairs)
        )


class TestShardedConstruction:
    def test_registered_and_available(self):
        from repro.engine import available_engines, registered_engines

        assert "sharded" in registered_engines()
        if ShardedEngine.is_available():
            assert "sharded" in available_engines()
            assert isinstance(get_engine("sharded"), ShardedEngine)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(workers=0)

    def test_invalid_chunks_per_worker_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(chunks_per_worker=0)

    def test_sharded_inner_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(inner="sharded")

    def test_small_batches_stay_in_process(self):
        engine = ShardedEngine(workers=2, min_batch=64)
        try:
            pairs = [("ACGTACGT", "ACGT")] * 8
            assert engine.scan_batch(pairs, 1) == PURE.scan_batch(pairs, 1)
            assert engine._pool is None, "small batch should not spawn a pool"
        finally:
            engine.close()

    def test_close_is_idempotent_and_pool_recreated(self, sharded):
        engine = ShardedEngine(workers=2, min_batch=1)
        pairs = random_pairs(9, (5, 30), (1, 20), seed=0xD1)
        assert engine.scan_batch(pairs, 2) == PURE.scan_batch(pairs, 2)
        engine.close()
        engine.close()
        assert engine.scan_batch(pairs, 2) == PURE.scan_batch(pairs, 2)
        engine.close()

    def test_context_manager_closes_pool(self):
        with ShardedEngine(workers=2, min_batch=1) as engine:
            pairs = random_pairs(9, (5, 30), (1, 20), seed=0xD2)
            engine.scan_batch(pairs, 2)
            assert engine._pool is not None
        assert engine._pool is None

    def test_capability_metadata(self):
        from repro.engine import engine_info

        info = {i.name: i for i in engine_info()}
        assert "sharded" in info
        if ShardedEngine.is_available():
            assert info["sharded"].available
            assert info["sharded"].reason is None
            assert info["sharded"].workers >= 1


class TestShardMap:
    """Mapper-level sharding: whole reads fanned across the pool."""

    @pytest.fixture(scope="class")
    def mapping_world(self):
        from repro.sequences.genome import synthesize_genome
        from repro.sequences.read_simulator import (
            illumina_profile,
            simulate_reads,
        )

        genome = synthesize_genome(20_000, seed=31, name="shardref")
        reads = simulate_reads(
            genome,
            count=18,
            read_length=90,
            profile=illumina_profile(0.05),
            seed=32,
        )
        return genome, [(read.name, read.sequence) for read in reads]

    def test_shard_map_matches_in_process_mapping(self, mapping_world):
        from repro.mapping.pipeline import make_genasm_mapper

        genome, reads = mapping_world
        direct = make_genasm_mapper(genome)
        expected = direct.map_reads(reads)

        with ShardedEngine(workers=2) as engine:
            mapper = make_genasm_mapper(genome, engine=engine)
            got = mapper.map_reads_batch(reads)
            assert mapper.stats == direct.stats
        assert len(got) == len(expected)
        for exp, act in zip(expected, got):
            assert exp.record.to_line() == act.record.to_line()
            assert exp.candidate_position == act.candidate_position
            assert exp.reverse == act.reverse

    def test_map_pool_reused_for_same_mapper(self, mapping_world):
        from repro.mapping.pipeline import make_genasm_mapper

        genome, reads = mapping_world
        with ShardedEngine(workers=2) as engine:
            mapper = make_genasm_mapper(genome, engine=engine)
            mapper.map_reads_batch(reads[:8])
            first_pool = engine._map_pool
            assert first_pool is not None
            mapper.map_reads_batch(reads[8:])
            assert engine._map_pool is first_pool

    def test_map_pool_swapped_for_new_mapper(self, mapping_world):
        from repro.mapping.pipeline import make_genasm_mapper

        genome, reads = mapping_world
        with ShardedEngine(workers=2) as engine:
            first = make_genasm_mapper(genome, engine=engine)
            first.map_reads_batch(reads)
            first_pool = engine._map_pool
            second = make_genasm_mapper(genome, engine=engine, error_rate=0.2)
            second.map_reads_batch(reads)
            assert engine._map_pool is not first_pool

    def test_shard_map_empty_reads(self, mapping_world):
        genome, _ = mapping_world
        from repro.mapping.pipeline import make_genasm_mapper

        with ShardedEngine(workers=2) as engine:
            mapper = make_genasm_mapper(genome, engine=engine)
            spec = mapper.shard_spec()
            results, stats = engine.shard_map(spec, "empty-test", [])
            assert results == []
            assert stats.reads == 0

    def test_single_worker_engine_maps_in_process(self, mapping_world):
        """One worker buys no parallelism: no map pool should be spun up."""
        from repro.mapping.pipeline import make_genasm_mapper

        genome, reads = mapping_world
        with ShardedEngine(workers=1) as engine:
            assert engine.min_map_batch == float("inf")
            mapper = make_genasm_mapper(genome, engine=engine)
            direct = make_genasm_mapper(genome)
            got = mapper.map_reads_batch(reads[:6])
            assert engine._map_pool is None
            expected = direct.map_reads(reads[:6])
            assert [r.record.to_line() for r in got] == [
                r.record.to_line() for r in expected
            ]

    def test_close_tears_down_map_pool(self, mapping_world):
        from repro.mapping.pipeline import make_genasm_mapper

        genome, reads = mapping_world
        engine = ShardedEngine(workers=2)
        mapper = make_genasm_mapper(genome, engine=engine)
        mapper.map_reads_batch(reads[:6])
        assert engine._map_pool is not None
        engine.close()
        assert engine._map_pool is None
