"""Unit tests for the Myers bit-vector algorithm (Edlib substitute)."""

import pytest

from repro.baselines.myers import (
    myers_global,
    myers_global_bounded,
    myers_semiglobal,
)
from repro.baselines.needleman_wunsch import edit_distance_dp, semiglobal_distance_dp
from tests.conftest import random_dna


class TestMyersGlobal:
    def test_known_values(self):
        assert myers_global("ACGT", "ACGT") == 0
        assert myers_global("ACGT", "ACCT") == 1
        assert myers_global("", "ACGT") == 4
        assert myers_global("ACGT", "") == 4

    def test_equals_dp_on_random_pairs(self, rng):
        for _ in range(40):
            a = random_dna(rng.randint(1, 60), rng)
            b = random_dna(rng.randint(1, 60), rng)
            assert myers_global(a, b) == edit_distance_dp(a, b)

    def test_long_patterns_multiword_territory(self, rng):
        # Patterns > 64 chars exercise the big-int (multi-word) regime.
        a = random_dna(300, rng)
        b = random_dna(280, rng)
        assert myers_global(a, b) == edit_distance_dp(a, b)

    def test_bounded_variant(self):
        assert myers_global_bounded("ACGT", "ACCT", 1) == 1
        assert myers_global_bounded("AAAA", "TTTT", 1) is None


class TestMyersSemiglobal:
    def test_free_flanks(self):
        assert myers_semiglobal("TTTACGTT", "ACG") == 0

    def test_equals_infix_dp(self, rng):
        for _ in range(40):
            text = random_dna(rng.randint(1, 50), rng)
            pattern = random_dna(rng.randint(1, 30), rng)
            assert myers_semiglobal(text, pattern) == semiglobal_distance_dp(
                text, pattern
            )

    def test_empty_cases(self):
        assert myers_semiglobal("ACGT", "") == 0
        assert myers_semiglobal("", "ACGT") == 4


class TestValidation:
    def test_foreign_pattern_symbol_rejected(self):
        with pytest.raises(ValueError):
            myers_global("ACGT", "ACXT")

    def test_foreign_text_symbol_mismatches(self):
        # Unknown text characters simply never match (Eq = 0).
        assert myers_global("ACGT", "ACGT") == 0
