"""Unit tests for the Gotoh affine-gap aligner."""

from repro.baselines.gotoh import gotoh_global, gotoh_score
from repro.core.scoring import ScoringScheme
from tests.conftest import random_dna


class TestGotohGlobal:
    def test_perfect_match(self):
        result = gotoh_global("ACGT", "ACGT")
        assert str(result.cigar) == "4M"
        assert result.score == 4  # BWA-MEM match = +1

    def test_affine_prefers_one_long_gap(self):
        # With affine costs, a 2-gap should be contiguous.
        scheme = ScoringScheme(match=1, substitution=-4, gap_open=-6, gap_extend=-1)
        result = gotoh_global("ACGTACGT", "ACACGT", scheme)
        runs = list(result.cigar.runs())
        gap_runs = [run for run in runs if run[0] == "D"]
        assert gap_runs == [("D", 2)]

    def test_transcript_scores_match_dp_score(self, rng):
        scheme = ScoringScheme.bwa_mem()
        for _ in range(20):
            a = random_dna(rng.randint(1, 25), rng)
            b = random_dna(rng.randint(1, 25), rng)
            result = gotoh_global(a, b, scheme)
            assert result.cigar.is_valid_for(a, b)
            assert result.cigar.score(scheme) == result.score

    def test_score_only_variant_agrees(self, rng):
        scheme = ScoringScheme.minimap2()
        for _ in range(20):
            a = random_dna(rng.randint(1, 25), rng)
            b = random_dna(rng.randint(1, 25), rng)
            assert gotoh_score(a, b, scheme) == gotoh_global(a, b, scheme).score

    def test_optimality_vs_unit_distance(self, rng):
        """With unit-ish costs the Gotoh score equals -edit distance."""
        from repro.baselines.needleman_wunsch import edit_distance_dp

        scheme = ScoringScheme(match=0, substitution=-1, gap_open=0, gap_extend=-1)
        for _ in range(20):
            a = random_dna(rng.randint(1, 20), rng)
            b = random_dna(rng.randint(1, 20), rng)
            assert gotoh_score(a, b, scheme) == -edit_distance_dp(a, b)

    def test_empty_inputs(self):
        scheme = ScoringScheme.bwa_mem()
        assert gotoh_global("", "AC", scheme).cigar.ops == "II"
        assert gotoh_global("AC", "", scheme).cigar.ops == "DD"
        assert gotoh_score("", "AC", scheme) == scheme.gap_cost(2)
