"""Unit tests for the Shouji pre-alignment filter baseline."""

import pytest

from repro.baselines.shouji import ShoujiFilter
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestShouji:
    def test_identical_pair_estimates_zero(self):
        assert ShoujiFilter(5).estimate_edits("ACGT" * 25, "ACGT" * 25) == 0

    def test_accepts_similar_pairs(self, rng):
        filt = ShoujiFilter(5)
        for _ in range(15):
            reference = random_dna(100, rng)
            result = mutate(reference, MutationProfile(0.02), rng=rng)
            if result.edit_count <= 5:
                assert filt.accepts(reference, result.sequence)

    def test_underestimates_distance(self, rng):
        """Shouji's estimate never exceeds the injected edit count — the
        property behind its 0% false-reject and non-zero false-accept."""
        filt = ShoujiFilter(5)
        for _ in range(25):
            reference = random_dna(100, rng)
            result = mutate(reference, MutationProfile(0.05), rng=rng)
            assert filt.estimate_edits(reference, result.sequence) <= max(
                result.edit_count, 1
            ) + 2  # window effects allow slight wobble above 0 edits

    def test_rejects_unrelated_sequences(self, rng):
        filt = ShoujiFilter(5)
        rejected = 0
        for _ in range(20):
            a = random_dna(100, rng)
            b = random_dna(100, rng)
            if not filt.accepts(a, b):
                rejected += 1
        assert rejected >= 15  # most random pairs are way past threshold

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ShoujiFilter(-1)

    def test_empty_read(self):
        assert ShoujiFilter(3).estimate_edits("ACGT", "") == 0
