"""Unit tests for the Needleman-Wunsch DP baselines."""

from repro.baselines.needleman_wunsch import (
    edit_distance_dp,
    needleman_wunsch,
    semiglobal_distance_dp,
)
from tests.conftest import random_dna


class TestEditDistanceDp:
    def test_known_values(self):
        assert edit_distance_dp("kitten", "sitting") == 3
        assert edit_distance_dp("", "abc") == 3
        assert edit_distance_dp("abc", "") == 3
        assert edit_distance_dp("ACGT", "ACGT") == 0

    def test_triangle_inequality(self, rng):
        for _ in range(15):
            a = random_dna(rng.randint(1, 20), rng)
            b = random_dna(rng.randint(1, 20), rng)
            c = random_dna(rng.randint(1, 20), rng)
            assert edit_distance_dp(a, c) <= edit_distance_dp(
                a, b
            ) + edit_distance_dp(b, c)

    def test_symmetry(self, rng):
        for _ in range(15):
            a = random_dna(rng.randint(1, 25), rng)
            b = random_dna(rng.randint(1, 25), rng)
            assert edit_distance_dp(a, b) == edit_distance_dp(b, a)


class TestSemiglobal:
    def test_free_flanks(self):
        assert semiglobal_distance_dp("TTTACGTTTT", "ACG") == 0

    def test_at_most_global(self, rng):
        for _ in range(20):
            text = random_dna(rng.randint(1, 25), rng)
            pattern = random_dna(rng.randint(1, 25), rng)
            assert semiglobal_distance_dp(text, pattern) <= edit_distance_dp(
                text, pattern
            )

    def test_empty_pattern(self):
        assert semiglobal_distance_dp("ACGT", "") == 0


class TestTraceback:
    def test_transcript_valid_and_consistent(self, rng):
        for _ in range(25):
            a = random_dna(rng.randint(1, 25), rng)
            b = random_dna(rng.randint(1, 25), rng)
            result = needleman_wunsch(a, b)
            assert result.distance == edit_distance_dp(a, b)
            assert result.cigar.edit_distance == result.distance
            assert result.cigar.is_valid_for(a, b)
            assert result.cigar.reference_length == len(a)
            assert result.cigar.query_length == len(b)
