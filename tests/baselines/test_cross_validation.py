"""Hypothesis cross-validation across independent baseline implementations.

Four independently-written edit distance computations (row DP, full-matrix
NW with traceback, Myers bit-vector, Ukkonen banded) must agree everywhere;
GenASM and GACT, the two tiled heuristics, must upper-bound them.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.gact import gact_align
from repro.baselines.myers import myers_global
from repro.baselines.needleman_wunsch import edit_distance_dp, needleman_wunsch
from repro.baselines.ukkonen import edit_distance_doubling
from repro.core.edit_distance import genasm_edit_distance

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)


@settings(max_examples=100, deadline=None)
@given(a=dna, b=dna)
def test_four_exact_algorithms_agree(a, b):
    expected = edit_distance_dp(a, b)
    assert needleman_wunsch(a, b).distance == expected
    assert myers_global(a, b) == expected
    assert edit_distance_doubling(a, b) == expected


@settings(max_examples=60, deadline=None)
@given(a=dna, b=dna)
def test_tiled_heuristics_upper_bound_exact(a, b):
    expected = edit_distance_dp(a, b)
    assert genasm_edit_distance(a, b).distance >= expected
    gact = gact_align(a, b, tile_size=16, overlap=6)
    # GACT consumes the query fully; its edit count can only exceed optimal.
    trailing = len(a) - gact.text_consumed
    assert gact.cigar.edit_distance + max(0, trailing) >= expected


@settings(max_examples=60, deadline=None)
@given(a=dna)
def test_all_report_zero_on_identity(a):
    assert edit_distance_dp(a, a) == 0
    assert myers_global(a, a) == 0
    assert edit_distance_doubling(a, a) == 0
    assert genasm_edit_distance(a, a).distance == 0
