"""Unit tests for the Smith-Waterman local aligner."""

import pytest

from repro.baselines.smith_waterman import SwScoring, smith_waterman
from tests.conftest import random_dna


class TestScoring:
    def test_validation(self):
        with pytest.raises(ValueError):
            SwScoring(match=0)
        with pytest.raises(ValueError):
            SwScoring(mismatch=1)
        with pytest.raises(ValueError):
            SwScoring(gap=0)


class TestLocalAlignment:
    def test_embedded_exact_match(self):
        result = smith_waterman("TTTTACGTACGTTTTT", "ACGTACGT")
        assert str(result.cigar) == "8M"
        assert result.text_start == 4
        assert result.score == 16  # 8 matches x 2

    def test_dissimilar_yields_empty(self):
        result = smith_waterman("AAAA", "TTTT")
        assert result.score == 0
        assert len(result.cigar) == 0

    def test_local_ignores_flanking_noise(self):
        result = smith_waterman("GGGGACGTACGTGGGG", "TTACGTACGTTT")
        # Core ACGTACGT should align; flanking TT mismatch clipped away.
        assert result.score >= 12

    def test_transcript_valid_for_clipped_regions(self, rng):
        for _ in range(20):
            text = random_dna(rng.randint(10, 40), rng)
            query = random_dna(rng.randint(5, 20), rng)
            result = smith_waterman(text, query)
            clipped_text = text[result.text_start : result.text_end]
            clipped_query = query[result.query_start : result.query_end]
            assert result.cigar.is_valid_for(clipped_text, clipped_query)

    def test_score_consistent_with_ops(self, rng):
        scoring = SwScoring()
        for _ in range(15):
            text = random_dna(30, rng)
            query = random_dna(15, rng)
            result = smith_waterman(text, query, scoring)
            recomputed = 0
            for op in result.cigar.ops:
                if op == "M":
                    recomputed += scoring.match
                elif op == "S":
                    recomputed += scoring.mismatch
                else:
                    recomputed += scoring.gap
            assert recomputed == result.score
