"""Unit tests for the Shifted Hamming Distance filter baseline."""

import pytest

from repro.baselines.shd import ShdFilter
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestShd:
    def test_identical_pair(self):
        assert ShdFilter(5).estimate_edits("ACGT" * 25, "ACGT" * 25) == 0

    def test_single_substitution_counted_once(self):
        reference = "A" * 20 + "C" + "A" * 20
        read = "A" * 41
        estimate = ShdFilter(2).estimate_edits(reference, read)
        assert estimate <= 1

    def test_indel_counts_as_one_run(self):
        reference = "ACGTACGTACGTACGTACGT"
        read = reference[:10] + reference[11:]  # one deletion
        assert ShdFilter(3).estimate_edits(reference, read) <= 3

    def test_underestimates_on_similar_pairs(self, rng):
        filt = ShdFilter(5)
        for _ in range(20):
            reference = random_dna(100, rng)
            result = mutate(reference, MutationProfile(0.03), rng=rng)
            if result.edit_count <= 5:
                assert filt.accepts(reference, result.sequence)

    def test_rejects_most_unrelated_pairs(self, rng):
        filt = ShdFilter(3)
        rejected = sum(
            1
            for _ in range(20)
            if not filt.accepts(random_dna(100, rng), random_dna(100, rng))
        )
        assert rejected >= 12

    def test_amendment_removes_short_zero_runs(self):
        amended = ShdFilter._amend([1, 0, 1, 0, 0, 1, 0, 0, 0, 1])
        # Interior runs shorter than 3 flip to 1; the 3-run survives.
        assert amended == [1, 1, 1, 1, 1, 1, 0, 0, 0, 1]

    def test_edge_zero_runs_kept(self):
        # Leading/trailing short zero-runs are not interior; kept as matches.
        assert ShdFilter._amend([0, 1, 1, 1, 0]) == [0, 1, 1, 1, 0]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ShdFilter(-2)
