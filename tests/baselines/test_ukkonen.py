"""Unit tests for Ukkonen's banded edit distance."""

import pytest

from repro.baselines.needleman_wunsch import edit_distance_dp
from repro.baselines.ukkonen import banded_edit_distance, edit_distance_doubling
from tests.conftest import random_dna


class TestBanded:
    def test_within_band(self):
        assert banded_edit_distance("ACGT", "ACCT", 2) == 1

    def test_outside_band_returns_none(self):
        assert banded_edit_distance("AAAAAAAA", "TTTTTTTT", 2) is None

    def test_length_gap_exceeding_band(self):
        assert banded_edit_distance("A", "AAAAAA", 2) is None

    def test_exact_at_band_boundary(self):
        # distance exactly k must be found
        assert banded_edit_distance("AAAA", "AATA", 1) == 1

    def test_empty_strings(self):
        assert banded_edit_distance("", "", 0) == 0
        assert banded_edit_distance("", "AB".replace("B", "C"), 2) == 2
        assert banded_edit_distance("", "ACG", 2) is None

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance("A", "A", -1)


class TestDoubling:
    def test_equals_dp(self, rng):
        for _ in range(30):
            a = random_dna(rng.randint(0, 40), rng)
            b = random_dna(rng.randint(0, 40), rng)
            if not a and not b:
                continue
            assert edit_distance_doubling(a, b) == edit_distance_dp(a, b)

    def test_identical_long_strings_fast_path(self, rng):
        seq = random_dna(2_000, rng)
        assert edit_distance_doubling(seq, seq) == 0

    def test_invalid_initial_band(self):
        with pytest.raises(ValueError):
            edit_distance_doubling("A", "A", initial=0)
