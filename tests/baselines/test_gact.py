"""Unit tests for the GACT tiled aligner baseline."""

import pytest

from repro.baselines.gact import gact_align
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestGact:
    def test_perfect_match(self):
        result = gact_align("ACGTACGT", "ACGTACGT", tile_size=8, overlap=3)
        assert str(result.cigar) == "8M"

    def test_transcript_valid_across_tiles(self, rng):
        for _ in range(10):
            text = random_dna(300, rng)
            query = mutate(text, MutationProfile(0.08), rng=rng).sequence
            region = text + random_dna(40, rng)
            result = gact_align(region, query, tile_size=64, overlap=24)
            assert result.cigar.is_valid_for(region, query)
            assert result.cigar.query_length == len(query)

    def test_distance_close_to_optimal(self, rng):
        from repro.baselines.needleman_wunsch import edit_distance_dp

        for _ in range(8):
            text = random_dna(200, rng)
            query = mutate(text, MutationProfile(0.05), rng=rng).sequence
            region = text + random_dna(20, rng)
            result = gact_align(region, query, tile_size=64, overlap=24)
            consumed = region[: result.text_consumed]
            optimal = edit_distance_dp(consumed, query)
            assert result.cigar.edit_distance <= optimal + 8  # tiling slack

    def test_text_exhaustion_pads_insertions(self):
        result = gact_align("ACG", "ACGTTT", tile_size=8, overlap=2)
        assert result.cigar.query_length == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            gact_align("ACGT", "ACGT", tile_size=0)
        with pytest.raises(ValueError):
            gact_align("ACGT", "ACGT", tile_size=8, overlap=8)
