"""Unit tests for whole genome alignment (Section 11)."""

import pytest

from repro.sequences.genome import synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate
from repro.usecases.whole_genome import align_genomes


class TestWholeGenomeAlignment:
    def test_identical_genomes(self):
        genome = synthesize_genome(3_000, seed=220)
        result = align_genomes(genome, genome)
        assert result.identity == 1.0
        assert result.edit_distance == 0
        assert result.reference_span == len(genome)

    def test_diverged_genomes_identity_tracks_divergence(self, rng):
        genome = synthesize_genome(4_000, seed=221)
        mutated = mutate(genome.sequence, MutationProfile(0.05), rng=rng).sequence
        result = align_genomes(genome.sequence, mutated)
        assert 0.90 < result.identity < 0.99
        assert result.substitutions + result.insertions + result.deletions == (
            result.edit_distance
        )

    def test_full_spans_consumed(self, rng):
        genome = synthesize_genome(2_000, seed=222)
        mutated = mutate(genome.sequence, MutationProfile(0.08), rng=rng).sequence
        result = align_genomes(genome.sequence, mutated)
        assert result.reference_span == len(genome)
        assert result.query_span == len(mutated)
        assert result.cigar.is_valid_for(genome.sequence, mutated)

    def test_custom_window_parameters(self, rng):
        genome = synthesize_genome(1_000, seed=223)
        mutated = mutate(genome.sequence, MutationProfile(0.05), rng=rng).sequence
        default = align_genomes(genome.sequence, mutated)
        small = align_genomes(genome.sequence, mutated, window_size=32, overlap=8)
        assert abs(default.edit_distance - small.edit_distance) <= max(
            3, default.edit_distance // 5
        )

    def test_empty_rejected(self):
        genome = synthesize_genome(100, seed=224)
        with pytest.raises(ValueError):
            align_genomes(genome, "")
