"""Unit tests for whole genome alignment (Section 11)."""

import pytest

from repro.core.aligner import GenAsmAligner
from repro.sequences.genome import synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate
from repro.usecases.whole_genome import align_genomes, complete_alignment


class TestWholeGenomeAlignment:
    def test_identical_genomes(self):
        genome = synthesize_genome(3_000, seed=220)
        result = align_genomes(genome, genome)
        assert result.identity == 1.0
        assert result.edit_distance == 0
        assert result.reference_span == len(genome)

    def test_diverged_genomes_identity_tracks_divergence(self, rng):
        genome = synthesize_genome(4_000, seed=221)
        mutated = mutate(genome.sequence, MutationProfile(0.05), rng=rng).sequence
        result = align_genomes(genome.sequence, mutated)
        assert 0.90 < result.identity < 0.99
        assert result.substitutions + result.insertions + result.deletions == (
            result.edit_distance
        )

    def test_full_spans_consumed(self, rng):
        genome = synthesize_genome(2_000, seed=222)
        mutated = mutate(genome.sequence, MutationProfile(0.08), rng=rng).sequence
        result = align_genomes(genome.sequence, mutated)
        assert result.reference_span == len(genome)
        assert result.query_span == len(mutated)
        assert result.cigar.is_valid_for(genome.sequence, mutated)

    def test_custom_window_parameters(self, rng):
        genome = synthesize_genome(1_000, seed=223)
        mutated = mutate(genome.sequence, MutationProfile(0.05), rng=rng).sequence
        default = align_genomes(genome.sequence, mutated)
        small = align_genomes(genome.sequence, mutated, window_size=32, overlap=8)
        assert abs(default.edit_distance - small.edit_distance) <= max(
            3, default.edit_distance // 5
        )

    def test_empty_rejected(self):
        genome = synthesize_genome(100, seed=224)
        with pytest.raises(ValueError):
            align_genomes(genome, "")

    def test_trailing_query_charged_as_insertions(self):
        # A query longer than the reference used to have its unconsumed
        # tail silently dropped, deflating edit_distance; the tail must
        # be charged as insertions, symmetric with trailing reference
        # charged as deletions.
        reference = synthesize_genome(500, seed=225).sequence
        query = reference + "ACGT" * 25
        result = align_genomes(reference, query)
        assert result.query_span == len(query)
        assert result.reference_span == len(reference)
        assert result.insertions >= 100
        assert result.edit_distance >= 100
        assert result.cigar.is_valid_for(reference, query)

    def test_trailing_reference_charged_as_deletions(self):
        query = synthesize_genome(500, seed=226).sequence
        reference = query + "TTTT" * 25
        result = align_genomes(reference, query)
        assert result.reference_span == len(reference)
        assert result.query_span == len(query)
        assert result.deletions >= 100
        assert result.cigar.is_valid_for(reference, query)


class TestCompleteAlignment:
    def test_charges_both_tails(self):
        aligner = GenAsmAligner()
        alignment = aligner.align("ACGTACGT", "ACGTACGT")
        summary = complete_alignment(alignment, 8 + 3, 8 + 2)
        assert summary.deletions == 3
        assert summary.insertions == 2
        assert summary.edit_distance == alignment.edit_distance + 5
        assert summary.reference_span == 11
        assert summary.query_span == 10

    def test_no_tails_is_identity(self):
        aligner = GenAsmAligner()
        alignment = aligner.align("ACGTACGT", "ACGTACGT")
        summary = complete_alignment(alignment, 8, 8)
        assert summary.cigar.ops == alignment.cigar.ops
        assert summary.edit_distance == alignment.edit_distance
