"""Unit tests for read-to-read overlap finding (Section 11)."""

import pytest

from repro.sequences.genome import synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate
from repro.usecases.overlap import find_overlaps
from tests.conftest import random_dna


class TestOverlapFinding:
    def test_exact_dovetail_overlap_found(self, rng):
        genome = synthesize_genome(2_000, seed=201, repeat_fraction=0.0)
        a = genome.region(100, 400)
        b = genome.region(300, 400)  # 200 bp overlap with a
        overlaps = find_overlaps([a, b], min_overlap=100)
        assert overlaps
        best = overlaps[0]
        assert {best.a_index, best.b_index} == {0, 1}
        assert best.length >= 150
        assert best.identity > 0.95

    def test_noisy_reads_still_overlap(self, rng):
        genome = synthesize_genome(2_000, seed=202, repeat_fraction=0.0)
        a = mutate(genome.region(0, 500), MutationProfile(0.05), rng=rng).sequence
        b = mutate(genome.region(250, 500), MutationProfile(0.05), rng=rng).sequence
        overlaps = find_overlaps([a, b], min_overlap=100, max_error_rate=0.25)
        assert overlaps
        assert overlaps[0].identity > 0.7

    def test_unrelated_reads_have_no_overlap(self, rng):
        reads = [random_dna(300, rng) for _ in range(3)]
        assert find_overlaps(reads, min_overlap=50) == []

    def test_offset_recorded(self):
        genome = synthesize_genome(1_500, seed=203, repeat_fraction=0.0)
        a = genome.region(0, 600)
        b = genome.region(450, 400)
        overlaps = find_overlaps([a, b], min_overlap=100)
        assert overlaps
        forward = [o for o in overlaps if o.a_index == 0]
        assert forward and abs(forward[0].a_start - 450) <= 15

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            find_overlaps([], k=0)
        with pytest.raises(ValueError):
            find_overlaps([], min_overlap=0)
        with pytest.raises(ValueError):
            find_overlaps([], max_error_rate=1.0)
