"""Unit tests for GenASM-driven index construction (Section 11)."""

import pytest

from repro.mapping.index import KmerIndex
from repro.sequences.genome import Genome, synthesize_genome
from repro.usecases.indexing import build_index_with_genasm


class TestGenAsmIndexing:
    def test_matches_direct_builder_exactly(self):
        genome = synthesize_genome(3_000, seed=210)
        direct = KmerIndex.build(genome, k=11)
        via_genasm = build_index_with_genasm(genome, k=11)
        assert len(direct) == len(via_genasm)
        for pos in range(0, len(genome) - 11, 97):
            seed = genome.sequence[pos : pos + 11]
            assert direct.lookup(seed) == via_genasm.lookup(seed)

    def test_repeat_masking_consistent(self):
        genome = Genome("g", "A" * 200 + "CGTACGTACG")
        direct = KmerIndex.build(genome, k=5, max_occurrences=8)
        via_genasm = build_index_with_genasm(genome, k=5, max_occurrences=8)
        assert via_genasm.lookup("AAAAA") == []
        assert direct.masked_seeds == via_genasm.masked_seeds

    def test_usable_by_seeding(self):
        from repro.mapping.seeding import candidate_locations

        genome = synthesize_genome(4_000, seed=211, repeat_fraction=0.0)
        index = build_index_with_genasm(genome, k=11)
        read = genome.region(1_000, 120)
        candidates = candidate_locations(read, index)
        assert candidates and candidates[0].position == 1_000

    def test_validation(self):
        genome = synthesize_genome(100, seed=212)
        with pytest.raises(ValueError):
            build_index_with_genasm(genome, k=0)
        with pytest.raises(ValueError):
            build_index_with_genasm(Genome("g", "ACG"), k=5)
