"""Unit tests for generic text search (Section 11)."""

import pytest

from repro.sequences.alphabet import AMINO_ACIDS, RNA
from repro.usecases.text_search import alphabet_from_text, search_text


class TestGenericTextSearch:
    def test_exact_english_text(self):
        text = "the quick brown fox jumps over the lazy dog"
        matches = search_text(text, "quick", 0)
        assert len(matches) == 1
        assert matches[0].start == 4
        assert matches[0].distance == 0

    def test_fuzzy_match_one_typo(self):
        text = "approximate string matching accelerates genomics"
        matches = search_text(text, "strng", 1)  # missing 'i'
        assert matches
        assert matches[0].distance == 1

    def test_multiple_occurrences(self):
        text = "abcabcabc"
        matches = search_text(text, "abc", 0)
        assert [m.start for m in matches] == [0, 3, 6]

    def test_traceback_transcripts(self):
        text = "hello wurld"
        matches = search_text(text, "world", 1, with_traceback=True)
        assert matches
        cigar = matches[0].cigar
        assert cigar is not None
        assert cigar.edit_distance <= 1

    def test_rna_alphabet(self):
        matches = search_text("AUGGCUAUG", "AUG", 0, alphabet=RNA)
        assert [m.start for m in matches] == [0, 6]

    def test_protein_alphabet(self):
        matches = search_text("MKVLAARN", "VLA", 0, alphabet=AMINO_ACIDS)
        assert matches and matches[0].start == 2

    def test_max_matches_cap(self):
        matches = search_text("aaaaaaaaaa", "aa", 0, max_matches=2)
        assert len(matches) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            search_text("abc", "", 0)
        with pytest.raises(ValueError):
            search_text("abc", "a", -1)
        with pytest.raises(ValueError):
            alphabet_from_text("")


class TestDerivedAlphabet:
    def test_covers_all_characters(self):
        alphabet = alphabet_from_text("hello", "world")
        for ch in "helowrd":
            assert ch in alphabet

    def test_search_with_spaces_and_punctuation(self):
        text = "to be, or not to be: that is the question"
        matches = search_text(text, "not to", 1)
        assert matches
